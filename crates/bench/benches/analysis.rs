//! Conflict-analysis cost: pigeonhole formulas generate dense conflicts,
//! so conflicts/second here is dominated by the 1-UIP resolution walk and
//! the BerkMin sensitivity bookkeeping (paper §4). The two arms quantify
//! the bookkeeping overhead of crediting every responsible clause.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use berkmin::{Sensitivity, Solver, SolverConfig};
use berkmin_gens::hole;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_analysis");
    group.sample_size(15);
    let inst = hole::pigeonhole(7);
    for (name, sens) in [
        ("berkmin_sensitivity", Sensitivity::Berkmin),
        ("conflict_clause_only", Sensitivity::ConflictClauseOnly),
    ] {
        let mut cfg = SolverConfig::berkmin();
        cfg.sensitivity = sens;
        group.bench_function(name, |b| {
            b.iter_batched(
                || Solver::new(&inst.cnf, cfg.clone()),
                |mut s| {
                    assert!(s.solve().is_unsat());
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
