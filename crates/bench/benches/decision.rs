//! Decision-making cost: the naive most-active-variable scan the paper's
//! experiments used vs. the BerkMin561-style heap index (Remark 1), and
//! the stack-scan overhead of the top-clause rule itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use berkmin::{ActivityIndex, DecisionStrategy, Solver, SolverConfig};
use berkmin_gens::{ksat, parity};

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision");
    group.sample_size(15);
    // Many variables, decision-heavy: planted 3-SAT below the threshold.
    let wide = ksat::planted_ksat(2_000, 6_000, 3, 7);
    for (name, index) in [
        ("most_active_naive_scan", ActivityIndex::NaiveScan),
        ("most_active_heap", ActivityIndex::Heap),
    ] {
        let mut cfg = SolverConfig::berkmin();
        cfg.decision = DecisionStrategy::MostActiveVar;
        cfg.activity_index = index;
        group.bench_function(name, |b| {
            b.iter_batched(
                || Solver::new(&wide.cnf, cfg.clone()),
                |mut s| {
                    assert!(s.solve().is_sat());
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The full BerkMin decision path (stack scan + polarity heuristics) on
    // a conflict-rich instance.
    let par = parity::parity_learning(24, 26, 3);
    for (name, strat) in [
        ("berkmin_top_clause", DecisionStrategy::BerkMin),
        ("vsids", DecisionStrategy::Vsids),
    ] {
        let mut cfg = SolverConfig::berkmin();
        cfg.decision = strat;
        group.bench_function(name, |b| {
            b.iter_batched(
                || Solver::new(&par.cnf, cfg.clone()),
                |mut s| {
                    assert!(s.solve().is_sat());
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
