//! BCP throughput micro-benchmarks: solving propagation-dominated
//! formulas measures the two-watched-literal engine (SATO/Chaff-style fast
//! BCP, paper §2) with almost no search on top.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use berkmin::{Budget, Solver, SolverConfig};
use berkmin_cnf::{Cnf, Lit, Var};
use berkmin_gens::{hole, ksat};

/// A long implication chain: x0 → x1 → … → xn, with x0 forced. Solved by
/// pure unit propagation. The unit comes *last* so the chain is still
/// intact when the solver's BCP runs (adding it first would let the
/// level-0 clause simplification in `add_clause` resolve everything).
fn implication_chain(n: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(n);
    for i in 0..n - 1 {
        cnf.add_clause([
            Lit::neg(Var::new(i as u32)),
            Lit::pos(Var::new(i as u32 + 1)),
        ]);
    }
    cnf.add_clause([Lit::pos(Var::new(0))]);
    cnf
}

/// A wide fan-out: x0 implies n variables directly through ternary clauses
/// watched at various positions — exercises watcher-list traversal.
fn fanout(n: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(n + 2);
    let root = Var::new(0);
    for i in 1..=n {
        cnf.add_clause([Lit::neg(root), Lit::pos(Var::new(i as u32))]);
        cnf.add_clause([
            Lit::neg(Var::new(i as u32)),
            Lit::pos(Var::new((i % n + 1) as u32)),
            Lit::pos(Var::new(((i + 1) % n + 1) as u32)),
        ]);
    }
    cnf.add_clause([Lit::pos(root)]); // unit last: see implication_chain
    cnf
}

fn bench_bcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcp");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let chain = implication_chain(n);
        group.bench_function(format!("chain_{n}"), |b| {
            b.iter_batched(
                || Solver::new(&chain, SolverConfig::berkmin()),
                |mut s| {
                    assert!(s.solve().is_sat());
                    assert!(s.stats().propagations >= n as u64 - 1);
                },
                BatchSize::SmallInput,
            )
        });
        let fan = fanout(n);
        group.bench_function(format!("fanout_{n}"), |b| {
            b.iter_batched(
                || Solver::new(&fan, SolverConfig::berkmin()),
                |mut s| {
                    assert!(s.solve().is_sat());
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Full search on propagation-heavy paper workloads: unlike the synthetic
/// chains above these run real conflicts, learning and §8 reductions, so
/// the clause-arena layout, the inline binary watchers *and* the compacting
/// GC are all on the clock.
fn bench_search_bcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcp_search");
    group.sample_size(10);

    let php = hole::pigeonhole(6); // PHP(7,6): UNSAT, BCP-dominated
    group.bench_function("hole_6", |b| {
        b.iter_batched(
            || Solver::new(&php.cnf, SolverConfig::berkmin()),
            |mut s| {
                assert!(s.solve().is_unsat());
            },
            BatchSize::SmallInput,
        )
    });

    // Random 3-SAT near the phase transition; the conflict budget makes the
    // workload deterministic and machine-independent.
    let r3 = ksat::random_ksat(250, 1050, 3, 0xB16B_0055);
    group.bench_function("random3sat_250", |b| {
        b.iter_batched(
            || {
                Solver::new(
                    &r3.cnf,
                    SolverConfig::berkmin().with_budget(Budget::conflicts(20_000)),
                )
            },
            |mut s| {
                let _ = s.solve();
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_bcp, bench_search_bcp);
criterion_main!(benches);
