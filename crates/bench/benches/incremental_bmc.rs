//! Incremental-vs-scratch bounded model checking on the enabled-counter
//! netlist: the clause-reusing `BmcDriver` sweep against per-depth scratch
//! re-unrolling/re-solving. Beyond wall-clock, each incremental iteration
//! asserts the acceptance property directly — same failure depth as
//! scratch, strictly fewer total conflicts — so the `-- --test` smoke run
//! in CI re-checks it on every push.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use berkmin::{SatEngine, SolverBuilder, SolverConfig};
use berkmin_circuit::arith::enabled_counter;
use berkmin_circuit::bmc::{scratch_first_reaching_depth, BmcDriver, BmcOutcome};

/// The shared scratch baseline, reduced to (first SAT depth, conflicts).
fn scratch_sweep(bits: usize, max_depth: usize) -> (Option<usize>, u64) {
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    let cfg = SolverConfig::berkmin();
    let (outcome, conflicts) = scratch_first_reaching_depth(
        &enabled_counter(bits),
        &pattern,
        max_depth,
        &cfg,
        |_, _, _| {},
    );
    match outcome {
        BmcOutcome::Reached { depth, .. } => (Some(depth), conflicts),
        BmcOutcome::Exhausted => (None, conflicts),
        BmcOutcome::Aborted { reason, .. } => panic!("scratch aborted without budget: {reason}"),
    }
}

/// Incremental sweep with one warm driver. Returns depth and conflicts.
fn incremental_sweep(bits: usize, max_depth: usize) -> (Option<usize>, u64) {
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    let mut driver = BmcDriver::new(enabled_counter(bits), SolverConfig::berkmin());
    let depth = match driver.first_reaching_depth(&pattern, max_depth) {
        BmcOutcome::Reached { depth, .. } => Some(depth),
        BmcOutcome::Exhausted => None,
        BmcOutcome::Aborted { reason, .. } => panic!("aborted without budget: {reason}"),
    };
    (depth, driver.engine().stats().conflicts)
}

/// The same incremental sweep, but driven through a `Box<dyn SatEngine>`
/// trait object — the API-redesign guard: the trait indirection must cost
/// nothing observable, i.e. the search (conflict count) is *identical* to
/// the concrete-type path.
fn dyn_engine_sweep(bits: usize, max_depth: usize) -> (Option<usize>, u64) {
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    let engine: Box<dyn SatEngine> =
        SolverBuilder::with_config(SolverConfig::berkmin()).build_engine();
    let mut driver = BmcDriver::with_engine(enabled_counter(bits), engine);
    let depth = match driver.first_reaching_depth(&pattern, max_depth) {
        BmcOutcome::Reached { depth, .. } => Some(depth),
        BmcOutcome::Exhausted => None,
        BmcOutcome::Aborted { reason, .. } => panic!("aborted without budget: {reason}"),
    };
    (depth, driver.engine().stats().conflicts)
}

fn bench_incremental_bmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_bmc");
    group.sample_size(10);
    for bits in [3usize, 4] {
        let horizon = (1 << bits) - 1;
        // Acceptance check, once and untimed: same failure depth, strictly
        // fewer total conflicts for the clause-reusing driver.
        let (scratch_depth, scratch_conflicts) = scratch_sweep(bits, horizon);
        let (incremental_depth, incremental_conflicts) = incremental_sweep(bits, horizon);
        assert_eq!(scratch_depth, Some(horizon));
        assert_eq!(incremental_depth, scratch_depth);
        assert!(
            incremental_conflicts < scratch_conflicts,
            "clause reuse regressed at {bits} bits: incremental \
             {incremental_conflicts} >= scratch {scratch_conflicts} conflicts"
        );
        // Trait-object guard: the dyn-SatEngine sweep must be search-for-
        // search identical to the concrete-type sweep.
        let (dyn_depth, dyn_conflicts) = dyn_engine_sweep(bits, horizon);
        assert_eq!(dyn_depth, incremental_depth);
        assert_eq!(
            dyn_conflicts, incremental_conflicts,
            "dyn SatEngine indirection changed the search at {bits} bits"
        );
        group.bench_function(format!("scratch_cnt{bits}e"), |b| {
            b.iter_batched(
                || (),
                |()| scratch_sweep(bits, horizon),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("incremental_cnt{bits}e"), |b| {
            b.iter_batched(
                || (),
                |()| incremental_sweep(bits, horizon),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_bmc);
criterion_main!(benches);
