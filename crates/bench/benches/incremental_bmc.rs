//! Incremental-vs-scratch bounded model checking on the enabled-counter
//! netlist: the clause-reusing `BmcDriver` sweep against per-depth scratch
//! re-unrolling/re-solving. Beyond wall-clock, each incremental iteration
//! asserts the acceptance property directly — same failure depth as
//! scratch, strictly fewer total conflicts — so the `-- --test` smoke run
//! in CI re-checks it on every push.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use berkmin::SolverConfig;
use berkmin_circuit::arith::enabled_counter;
use berkmin_circuit::bmc::{scratch_first_reaching_depth, BmcDriver, BmcOutcome};

/// The shared scratch baseline, reduced to (first SAT depth, conflicts).
fn scratch_sweep(bits: usize, max_depth: usize) -> (Option<usize>, u64) {
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    let cfg = SolverConfig::berkmin();
    let (outcome, conflicts) = scratch_first_reaching_depth(
        &enabled_counter(bits),
        &pattern,
        max_depth,
        &cfg,
        |_, _, _| {},
    );
    match outcome {
        BmcOutcome::Reached { depth, .. } => (Some(depth), conflicts),
        BmcOutcome::Exhausted => (None, conflicts),
        BmcOutcome::Aborted { reason, .. } => panic!("scratch aborted without budget: {reason}"),
    }
}

/// Incremental sweep with one warm driver. Returns depth and conflicts.
fn incremental_sweep(bits: usize, max_depth: usize) -> (Option<usize>, u64) {
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    let mut driver = BmcDriver::new(enabled_counter(bits), SolverConfig::berkmin());
    let depth = match driver.first_reaching_depth(&pattern, max_depth) {
        BmcOutcome::Reached { depth, .. } => Some(depth),
        BmcOutcome::Exhausted => None,
        BmcOutcome::Aborted { reason, .. } => panic!("aborted without budget: {reason}"),
    };
    (depth, driver.solver().stats().conflicts)
}

fn bench_incremental_bmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_bmc");
    group.sample_size(10);
    for bits in [3usize, 4] {
        let horizon = (1 << bits) - 1;
        // Acceptance check, once and untimed: same failure depth, strictly
        // fewer total conflicts for the clause-reusing driver.
        let (scratch_depth, scratch_conflicts) = scratch_sweep(bits, horizon);
        let (incremental_depth, incremental_conflicts) = incremental_sweep(bits, horizon);
        assert_eq!(scratch_depth, Some(horizon));
        assert_eq!(incremental_depth, scratch_depth);
        assert!(
            incremental_conflicts < scratch_conflicts,
            "clause reuse regressed at {bits} bits: incremental \
             {incremental_conflicts} >= scratch {scratch_conflicts} conflicts"
        );
        group.bench_function(format!("scratch_cnt{bits}e"), |b| {
            b.iter_batched(
                || (),
                |()| scratch_sweep(bits, horizon),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("incremental_cnt{bits}e"), |b| {
            b.iter_batched(
                || (),
                |()| incremental_sweep(bits, horizon),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_bmc);
criterion_main!(benches);
