//! Plain-text table rendering in the paper's style.

use std::fmt::Write as _;

/// A fixed-width text table with a title, matching the look of the paper's
/// result tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row/header arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "=".repeat(total.min(120)));
        let mut header_line = String::from("|");
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(header_line, " {h:<w$} |");
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(header_line.len()));
        for row in &self.rows {
            let mut line = String::from("|");
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Class", "Time (s)"]);
        t.add_row(["Hole", "231.1"]);
        t.add_row(["Fvp_unsat2.0", "6539.84"]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("| Hole         |"));
        assert!(s.contains("| Fvp_unsat2.0 |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.add_row(["only-one"]);
    }
}
