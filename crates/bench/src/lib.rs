//! # berkmin-bench — the experiment harness
//!
//! Regenerates every table and figure of the BerkMin paper. Each `tableN`
//! binary (and `fig1`) prints the paper-style table from freshly generated
//! workloads; `all_experiments` runs the lot and writes the results
//! directory consumed by EXPERIMENTS.md.
//!
//! The paper's wall-clock timeouts become deterministic *conflict budgets*
//! here (see `DESIGN.md`); a run that exhausts its budget is reported in
//! the paper's `>time (aborted)` cell style.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — sensitivity of decision making |
//! | `table2` | Table 2 — mobility of decision making |
//! | `table3` | Table 3 — skin effect `f(r)` |
//! | `table4` | Table 4 — branch-selection heuristics |
//! | `table5` | Table 5 — database management |
//! | `table6` | Table 6 — BerkMin vs zChaff, comparable classes |
//! | `table7` | Table 7 — classes where BerkMin dominates |
//! | `table8` | Table 8 — per-instance decisions/time |
//! | `table9` | Table 9 — database size ratios |
//! | `table10` | Table 10 — SAT-2002 three-solver shootout |
//! | `fig1` | Fig. 1 — cone switching from idle to active |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod runner;
mod table;

pub use ablation::run_ablation;
pub use runner::{run_class, run_engine, run_instance, ClassResult, RunResult, Verdict};
pub use table::TextTable;

use berkmin::Budget;
use berkmin_gens::suites::PaperClass;

/// Per-class conflict budgets for the ablation tables (Tables 1/2/4/5).
///
/// Chosen so that the full BerkMin configuration finishes every class
/// comfortably while crippled ablation arms can (and do) abort — mirroring
/// the paper's 60,000 s timeout, which BerkMin never hit but several
/// ablation arms did.
pub fn class_budget(class: PaperClass) -> Budget {
    // Roughly 6–10× what the full BerkMin configuration needs per class
    // (measured; see EXPERIMENTS.md).
    let conflicts = match class {
        PaperClass::Hole => 300_000,
        PaperClass::Blocksworld => 100_000,
        PaperClass::Par16 => 400_000,
        PaperClass::Sss10 => 100_000,
        PaperClass::Sss10a => 100_000,
        PaperClass::SssSat10 => 100_000,
        PaperClass::FvpUnsat10 => 300_000,
        PaperClass::VliwSat10 => 200_000,
        PaperClass::Beijing => 100_000,
        PaperClass::Hanoi => 200_000,
        PaperClass::Miters => 400_000,
        PaperClass::FvpUnsat20 => 400_000,
    };
    Budget::conflicts(conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_gens::suites::ABLATION_ORDER;

    #[test]
    fn every_class_has_a_budget() {
        for class in ABLATION_ORDER {
            assert!(class_budget(class).max_conflicts > 0);
        }
    }
}
