//! Table 4 — "Branch selection" (paper §7).
//!
//! Six polarity heuristics for decisions taken on the current top clause:
//! BerkMin's database symmetrization, `Sat_top`, `Unsat_top`, `Take_0`,
//! `Take_1` and `Take_rand`. The paper finds BerkMin's heuristic and
//! `Take_rand` best (both symmetrize the clause census), with `Unsat_top`
//! and `Take_1` aborting on Hole/Beijing/Miters.

use berkmin::{SolverConfig, TopClausePolarity};
use berkmin_bench::run_ablation;

fn main() {
    run_ablation(
        "Table 4: Branch selection (time s, budget-aborts in parens)",
        &[
            ("BerkMin (s)", SolverConfig::berkmin()),
            (
                "Sat_top (s)",
                SolverConfig::with_top_polarity(TopClausePolarity::SatTop),
            ),
            (
                "Unsat_top (s)",
                SolverConfig::with_top_polarity(TopClausePolarity::UnsatTop),
            ),
            (
                "Take_0 (s)",
                SolverConfig::with_top_polarity(TopClausePolarity::Take0),
            ),
            (
                "Take_1 (s)",
                SolverConfig::with_top_polarity(TopClausePolarity::Take1),
            ),
            (
                "Take_rand (s)",
                SolverConfig::with_top_polarity(TopClausePolarity::TakeRand),
            ),
        ],
    );
}
