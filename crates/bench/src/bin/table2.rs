//! Table 2 — "Changing mobility of decision-making" (paper §5).
//!
//! BerkMin (branch on the most active free variable of the *current top
//! conflict clause*) vs. `Less_mobility` (most active free variable of the
//! whole formula, activities computed identically). The paper reports a >12×
//! total slowdown with aborts on Beijing and Fvp_unsat2.0 — the single
//! largest contribution among BerkMin's new features.

use berkmin::SolverConfig;
use berkmin_bench::run_ablation;

fn main() {
    run_ablation(
        "Table 2: Changing mobility of decision-making (time s, budget-aborts in parens)",
        &[
            ("BerkMin (s)", SolverConfig::berkmin()),
            ("Less_mobility (s)", SolverConfig::less_mobility()),
        ],
    );
}
