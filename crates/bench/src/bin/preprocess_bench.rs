//! Preprocessing on/off benchmark — machine-readable evidence for the
//! simplifier's claim: fewer clauses and variables reach the search, with
//! no change of verdict.
//!
//! Runs every pooled instance twice — once with simplification disabled
//! and once with the full pipeline (subsumption, self-subsuming
//! resolution, bounded variable elimination) — and writes
//! `BENCH_preprocess.json`: per instance, both verdicts, wall-clock
//! seconds and conflict counts, plus the simplifier's reductions (clauses
//! before/after, variables eliminated, resolvents added).
//!
//! ```text
//! preprocess_bench [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` selects a small pool for CI; the default pool is larger and
//! harder. The run aborts (panics) if the two arms ever disagree on a
//! verdict or the simplifier grows a formula — a benchmark reporting
//! numbers from an unsound run would be worse than no benchmark.

use std::cell::RefCell;
use std::rc::Rc;

use berkmin::{Budget, SimplifyConfig, SolveEvent, SolverBuilder, SolverConfig};
use berkmin_bench::{run_engine, run_instance, RunResult};
use berkmin_gens::{bmc_gen, hole, ksat, BenchInstance};

/// The `Simplify` telemetry of one preprocessing run.
#[derive(Debug, Clone, Copy, Default)]
struct Reduction {
    subsumed: u64,
    strengthened: u64,
    eliminated: u64,
    resolvents: u64,
    clauses_before: u64,
    clauses_after: u64,
}

struct Comparison {
    instance: String,
    vars: usize,
    clauses: usize,
    off: RunResult,
    on: RunResult,
    reduction: Reduction,
}

fn pool(smoke: bool) -> Vec<BenchInstance> {
    if smoke {
        vec![
            hole::pigeonhole(6),
            ksat::random_ksat(26, 110, 3, 1),
            bmc_gen::bmc_counter_unsat(3),
        ]
    } else {
        vec![
            hole::pigeonhole(7),
            ksat::random_ksat(40, 170, 3, 1),
            ksat::random_ksat(40, 170, 3, 2),
            ksat::planted_ksat(60, 255, 3, 3),
            ksat::xor_unsat(14, 16, 2),
            bmc_gen::bmc_counter_unsat(4),
            bmc_gen::bmc_counter(4),
        ]
    }
}

fn compare(inst: &BenchInstance, budget: Budget) -> Comparison {
    let off = run_instance(
        inst,
        &SolverConfig::berkmin().with_simplify(SimplifyConfig::off()),
        budget,
    );

    // The simplifying arm is observed so the report carries the exact
    // clause counts the search started from, not a reconstruction.
    let reduction = Rc::new(RefCell::new(Reduction::default()));
    let tap = Rc::clone(&reduction);
    let mut engine = SolverBuilder::with_config(
        SolverConfig::berkmin()
            .with_simplify(SimplifyConfig::full())
            .with_budget(budget),
    )
    .on_event(move |e: &SolveEvent| {
        if let SolveEvent::Simplify {
            subsumed,
            strengthened,
            eliminated,
            resolvents,
            clauses_before,
            clauses_after,
            ..
        } = e
        {
            let mut r = tap.borrow_mut();
            if r.clauses_before == 0 {
                r.clauses_before = *clauses_before;
            }
            r.clauses_after = *clauses_after;
            r.subsumed += subsumed;
            r.strengthened += strengthened;
            r.eliminated += eliminated;
            r.resolvents += resolvents;
        }
    })
    .build_engine();
    engine.reserve_vars(inst.cnf.num_vars());
    for clause in &inst.cnf {
        engine.add_clause(clause.lits());
    }
    let on = run_engine(inst, engine.as_mut());
    let reduction = *reduction.borrow();
    assert!(
        reduction.clauses_after <= reduction.clauses_before,
        "{}: simplification grew the formula",
        inst.name
    );
    Comparison {
        instance: inst.name.clone(),
        vars: inst.cnf.num_vars(),
        clauses: inst.cnf.num_clauses(),
        off,
        on,
        reduction,
    }
}

fn json_run(r: &RunResult) -> String {
    format!(
        r#"{{"verdict": "{}", "time_s": {:.6}, "conflicts": {}}}"#,
        r.verdict.label(),
        r.time.as_secs_f64(),
        r.stats.conflicts
    )
}

fn write_json(path: &str, rows: &[Comparison]) {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.reduction;
        out.push_str(&format!(
            "    {{\"instance\": \"{}\", \"vars\": {}, \"clauses\": {}, \
             \"off\": {}, \"on\": {}, \
             \"simplify\": {{\"subsumed\": {}, \"strengthened\": {}, \
             \"eliminated\": {}, \"resolvents\": {}, \
             \"clauses_before\": {}, \"clauses_after\": {}, \"vars_after\": {}}}}}{}\n",
            row.instance.replace(['"', '\\'], "_"),
            row.vars,
            row.clauses,
            json_run(&row.off),
            json_run(&row.on),
            r.subsumed,
            r.strengthened,
            r.eliminated,
            r.resolvents,
            r.clauses_before,
            r.clauses_after,
            row.vars as u64 - r.eliminated,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_preprocess.json");
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_preprocess.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().expect("--out FILE"),
            other => panic!("unknown argument {other}"),
        }
    }

    // Deterministic "timeout": generous enough that both arms finish every
    // pooled instance; reported as an abort if ever hit.
    let budget = Budget::conflicts(2_000_000);
    let rows: Vec<Comparison> = pool(smoke)
        .iter()
        .map(|inst| compare(inst, budget))
        .collect();

    println!("preprocess_bench: simplification off vs on");
    println!(
        "{:<34} {:>7} {:>10} {:>12} | {:>7} {:>10} {:>12}  {:>9} {:>9}",
        "instance",
        "off",
        "time(s)",
        "conflicts",
        "on",
        "time(s)",
        "conflicts",
        "clauses-",
        "vars-"
    );
    let mut reduced = 0usize;
    for row in &rows {
        assert_eq!(
            row.off.verdict.label(),
            row.on.verdict.label(),
            "{}: simplification changed the verdict",
            row.instance
        );
        let r = &row.reduction;
        if r.clauses_after < r.clauses_before || r.eliminated > 0 {
            reduced += 1;
        }
        println!(
            "{:<34} {:>7} {:>10.3} {:>12} | {:>7} {:>10.3} {:>12}  {:>9} {:>9}",
            row.instance,
            row.off.verdict.label(),
            row.off.time.as_secs_f64(),
            row.off.stats.conflicts,
            row.on.verdict.label(),
            row.on.time.as_secs_f64(),
            row.on.stats.conflicts,
            r.clauses_before - r.clauses_after,
            r.eliminated,
        );
    }
    assert!(
        reduced > 0,
        "the pool must contain at least one instance the simplifier shrinks"
    );
    println!(
        "instances shrunk by preprocessing: {reduced}/{}",
        rows.len()
    );
    write_json(&out, &rows);
    println!("wrote {out}");
}
