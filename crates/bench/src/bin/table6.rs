//! Table 6 — "Benchmarks on which Chaff's and BerkMin's performances are
//! comparable" (paper §9).
//!
//! zChaff (VSIDS baseline) vs. BerkMin over the eight easier classes,
//! reporting instance counts and total times. The paper's shape: Chaff
//! wins Hole, BerkMin wins the rest, and neither aborts.

use berkmin::SolverConfig;
use berkmin_bench::{class_budget, run_class, TextTable};
use berkmin_gens::suites::{class_suite, PaperClass};

fn main() {
    let classes = [
        PaperClass::Blocksworld,
        PaperClass::Hole,
        PaperClass::Par16,
        PaperClass::Sss10,
        PaperClass::Sss10a,
        PaperClass::SssSat10,
        PaperClass::FvpUnsat10,
        PaperClass::VliwSat10,
    ];
    let mut table = TextTable::new(
        "Table 6: Benchmarks on which zChaff's and BerkMin's performances are comparable",
        &[
            "Class of benchmarks",
            "Number of instances",
            "zChaff (s)",
            "BerkMin (s)",
        ],
    );
    let chaff = SolverConfig::chaff_like();
    let berkmin = SolverConfig::berkmin();
    let (mut chaff_total, mut berkmin_total) = (0.0, 0.0);
    for class in classes {
        let suite = class_suite(class);
        let budget = class_budget(class);
        let rc = run_class(class.name(), &suite, &chaff, budget);
        let rb = run_class(class.name(), &suite, &berkmin, budget);
        chaff_total += rc.total_time().as_secs_f64();
        berkmin_total += rb.total_time().as_secs_f64();
        table.add_row([
            class.name().to_string(),
            suite.len().to_string(),
            rc.time_cell(),
            rb.time_cell(),
        ]);
    }
    table.add_row([
        "Total".to_string(),
        String::new(),
        format!("{chaff_total:.2}"),
        format!("{berkmin_total:.2}"),
    ]);
    table.print();
}
