//! Runs every table and figure reproduction in sequence, teeing output to
//! `EXPERIMENTS-results/` next to the workspace root.
//!
//! Usage: `cargo run --release -p berkmin-bench --bin all_experiments`

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Instant;

fn main() {
    let bins = [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
        "table10", "fig1",
    ];
    let out_dir = PathBuf::from("EXPERIMENTS-results");
    fs::create_dir_all(&out_dir).expect("create results directory");
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin directory").to_path_buf();

    for bin in bins {
        let started = Instant::now();
        println!("=== running {bin} ===");
        let output = Command::new(bin_dir.join(bin))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(
            output.status.success(),
            "{bin} exited with {}",
            output.status
        );
        let text = String::from_utf8_lossy(&output.stdout);
        print!("{text}");
        fs::write(out_dir.join(format!("{bin}.txt")), text.as_bytes()).expect("write result file");
        println!(
            "=== {bin} done in {:.1}s ===\n",
            started.elapsed().as_secs_f64()
        );
    }
    println!("all experiments written to {}", out_dir.display());
}
