//! Extensions ablation — the paper's §10 future-work directions, measured.
//!
//! Not a paper table: this grid evaluates the features the paper *proposes*
//! but does not implement, against the published BerkMin baseline:
//!
//! * Remark 2 — pick the branching variable from a small *window* of top
//!   clauses instead of only the first (`BerkMinWindow`);
//! * §10 "restart strategy … can be significantly improved" — Luby
//!   restarts in place of the fixed 550-conflict interval;
//! * post-paper conflict-clause minimization (MiniSat 2005);
//! * the BerkMin561 "strategy 3" heap index for the most-active-variable
//!   fallback (Remark 1).

use berkmin::{ActivityIndex, DecisionStrategy, RestartPolicy, SolverConfig};
use berkmin_bench::run_ablation;

fn main() {
    let window4 = {
        let mut c = SolverConfig::berkmin();
        c.decision = DecisionStrategy::BerkMinWindow { window: 4 };
        c
    };
    let window16 = {
        let mut c = SolverConfig::berkmin();
        c.decision = DecisionStrategy::BerkMinWindow { window: 16 };
        c
    };
    let luby = {
        let mut c = SolverConfig::berkmin();
        c.restart = RestartPolicy::Luby(128);
        c
    };
    let minimize = {
        let mut c = SolverConfig::berkmin();
        c.minimize_learnt = true;
        c
    };
    let heap = {
        let mut c = SolverConfig::berkmin();
        c.activity_index = ActivityIndex::Heap;
        c
    };
    run_ablation(
        "Extensions: the paper's future-work features vs published BerkMin",
        &[
            ("BerkMin (s)", SolverConfig::berkmin()),
            ("Window4 (s)", window4),
            ("Window16 (s)", window16),
            ("Luby (s)", luby),
            ("Minimize (s)", minimize),
            ("HeapIdx (s)", heap),
        ],
    );
}
