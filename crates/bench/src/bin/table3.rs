//! Table 3 — "Skin effect" (paper §6).
//!
//! For five hard instances, prints `f(r)`: how often the branching
//! variable was taken from the conflict clause at distance `r` from the
//! top of the clause stack. The paper's finding: `f` decays quickly in
//! `r` — young clauses drive almost all decisions — with `f(0)` small
//! because the topmost clause is normally consumed by BCP immediately
//! (it is only branched on right after a restart).

use berkmin::{Budget, SolverConfig};
use berkmin_bench::{run_instance, TextTable};
use berkmin_gens::{beijing, hanoi, miters, pipeline};

fn main() {
    // The paper's five columns: miter70_60_5 (Miters), hanoi6 (Hanoi),
    // 2bitadd_10 (Beijing), 7pipe (Fvp_unsat2.0), 9vliw (Fvp_unsat1.0).
    let instances = vec![
        miters::rect_multiplier_miter(6, 7, 5), // Miters analog
        hanoi::hanoi(6),                        // Hanoi analog
        beijing::factor_prime(12, 10),          // Beijing analog
        pipeline::npipe(5),                     // pipe analog
        pipeline::npipe_ooo(4),                 // vliw analog
    ];
    let config = SolverConfig::berkmin();
    let budget = Budget::conflicts(1_000_000);

    let mut results = Vec::new();
    for inst in &instances {
        let r = run_instance(inst, &config, budget);
        results.push(r);
    }

    let mut headers: Vec<String> = vec!["Distance".to_string()];
    headers.extend(results.iter().map(|r| r.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Table 3: Skin effect — f(r) = decisions taken from the clause at stack distance r",
        &header_refs,
    );
    let rows: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 50, 100, 500, 1000, 2000];
    for &r in rows {
        let mut row = vec![format!("f({r})")];
        for res in &results {
            row.push(res.stats.f(r).to_string());
        }
        table.add_row(row);
    }
    table.print();

    // The paper's qualitative claim, made checkable: f decreases with r.
    for res in &results {
        let f1 = res.stats.f(1);
        let f10 = res.stats.f(10);
        let f100 = res.stats.f(100);
        println!(
            "{}: f(1)={} >= f(10)={} >= f(100)={}  (decay spot check: {})",
            res.name,
            f1,
            f10,
            f100,
            if f1 >= f10 && f10 >= f100 {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }
}
