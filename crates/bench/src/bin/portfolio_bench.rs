//! Portfolio-vs-single benchmark — machine-readable evidence for the
//! parallel portfolio's perf claim.
//!
//! Runs every pooled instance twice — once under the best single
//! configuration (plain BerkMin) and once under the threaded sharing
//! portfolio — and writes `BENCH_portfolio.json`: per instance, the
//! verdict, wall-clock seconds and conflict counts of both runs, plus the
//! portfolio's winning worker and per-worker totals.
//!
//! ```text
//! portfolio_bench [--threads N] [--share-lbd K] [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` selects a small pool for CI; the default pool is larger and
//! harder. Wall-clock numbers are honest: on a single hardware core the
//! portfolio's edge comes from diversification (some worker's heuristics
//! fit the instance), not from parallel speed-up.

use berkmin::{Budget, PortfolioConfig, PortfolioEngine, SatEngine, SolverConfig};
use berkmin_bench::{run_engine, run_instance, RunResult, Verdict};
use berkmin_gens::{hole, ksat, miters, parity, BenchInstance};

struct Comparison {
    instance: String,
    single: RunResult,
    portfolio: RunResult,
    winner: Option<usize>,
    winner_conflicts: u64,
}

fn pool(smoke: bool) -> Vec<BenchInstance> {
    if smoke {
        vec![
            hole::pigeonhole(6),
            parity::parity_unsat(9, 2),
            ksat::random_ksat(26, 110, 3, 1),
            ksat::xor_unsat(12, 14, 2),
        ]
    } else {
        vec![
            hole::pigeonhole(7),
            hole::pigeonhole(8),
            parity::parity_unsat(10, 2),
            parity::parity_learning(12, 16, 3),
            ksat::random_ksat(40, 170, 3, 1),
            ksat::random_ksat(40, 170, 3, 2),
            ksat::planted_ksat(60, 255, 3, 3),
            ksat::xor_unsat(16, 18, 2),
            miters::equivalent_miter(80, 30, 3),
            miters::multiplier_miter(5, 2),
        ]
    }
}

fn compare(inst: &BenchInstance, threads: usize, share_lbd: u32, budget: Budget) -> Comparison {
    let single = run_instance(inst, &SolverConfig::berkmin(), budget);

    let mut engine = PortfolioEngine::new(
        PortfolioConfig::new(threads)
            .with_share_lbd(Some(share_lbd))
            .with_budget(budget),
    );
    engine.reserve_vars(inst.cnf.num_vars());
    for clause in &inst.cnf {
        engine.add_clause(clause.lits());
    }
    let portfolio = run_engine(inst, &mut engine);
    let winner = engine.winner();
    let winner_conflicts = winner
        .and_then(|w| engine.reports().get(w))
        .map(|r| r.conflicts)
        .unwrap_or(0);
    Comparison {
        instance: inst.name.clone(),
        single,
        portfolio,
        winner,
        winner_conflicts,
    }
}

fn json_run(r: &RunResult) -> String {
    format!(
        r#"{{"verdict": "{}", "time_s": {:.6}, "conflicts": {}}}"#,
        r.verdict.label(),
        r.time.as_secs_f64(),
        r.stats.conflicts
    )
}

fn write_json(path: &str, threads: usize, share_lbd: u32, rows: &[Comparison]) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"share_lbd\": {share_lbd},\n"));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let winner = row
            .winner
            .map(|w| w.to_string())
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"instance\": \"{}\", \"single\": {}, \"portfolio\": {}, \
             \"winner\": {winner}, \"winner_conflicts\": {}}}{}\n",
            row.instance.replace(['"', '\\'], "_"),
            json_run(&row.single),
            json_run(&row.portfolio),
            row.winner_conflicts,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_portfolio.json");
}

fn main() {
    let mut threads = 4usize;
    let mut share_lbd = 4u32;
    let mut smoke = false;
    let mut out = String::from("BENCH_portfolio.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N"),
            "--share-lbd" => {
                share_lbd = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--share-lbd K")
            }
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().expect("--out FILE"),
            other => panic!("unknown argument {other}"),
        }
    }

    // Deterministic "timeout": generous enough that both arms finish every
    // pooled instance; reported as an abort if ever hit.
    let budget = Budget::conflicts(2_000_000);
    let rows: Vec<Comparison> = pool(smoke)
        .iter()
        .map(|inst| compare(inst, threads, share_lbd, budget))
        .collect();

    println!("portfolio_bench: 1 thread vs {threads} threads (share-lbd {share_lbd})");
    println!(
        "{:<34} {:>7} {:>10} {:>12} | {:>7} {:>10} {:>12}  winner",
        "instance", "1t", "time(s)", "conflicts", "Nt", "time(s)", "conflicts"
    );
    let (mut time_wins, mut conflict_wins) = (0usize, 0usize);
    for row in &rows {
        assert_ne!(row.single.verdict.label(), "abort", "{}", row.instance);
        assert_eq!(
            row.single.verdict == Verdict::Sat,
            row.portfolio.verdict == Verdict::Sat,
            "{}: portfolio and single verdicts disagree",
            row.instance
        );
        if row.portfolio.time < row.single.time {
            time_wins += 1;
        }
        if row.winner_conflicts < row.single.stats.conflicts {
            conflict_wins += 1;
        }
        println!(
            "{:<34} {:>7} {:>10.3} {:>12} | {:>7} {:>10.3} {:>12}  w{}",
            row.instance,
            row.single.verdict.label(),
            row.single.time.as_secs_f64(),
            row.single.stats.conflicts,
            row.portfolio.verdict.label(),
            row.portfolio.time.as_secs_f64(),
            row.portfolio.stats.conflicts,
            row.winner.map(|w| w.to_string()).unwrap_or_default(),
        );
    }
    println!(
        "portfolio wall-clock wins: {time_wins}/{}; winner-conflicts wins: {conflict_wins}/{}",
        rows.len(),
        rows.len()
    );
    write_json(&out, threads, share_lbd, &rows);
    println!("wrote {out}");
}
