//! Fig. 1 — "Switching of cone variables from 'idle' to active" (paper
//! §3/§5).
//!
//! The paper's figure shows an AND gate whose control pin gates a cone of
//! logic: with the pin at 0 the cone variables cannot matter; once it
//! switches to 1 they suddenly do, and a *mobile* decision heuristic must
//! refocus on them quickly. This experiment builds exactly that circuit —
//! `out = (cone ∧ control) ⊕ beyond` with a multiplier-parity cone (hard to
//! justify) and an adder-parity "beyond" region — and measures:
//!
//! 1. **idle vs active** — the share of decisions on cone variables with
//!    the control pin forced 0 vs forced 1;
//! 2. **mobility** — the per-window cone-decision fraction for BerkMin vs
//!    the `Less_mobility` arm on the engaged instance.

use berkmin::{Budget, SolveStatus, Solver, SolverConfig};
use berkmin_bench::TextTable;
use berkmin_circuit::{arith, tseitin::encode, Netlist};
use berkmin_cnf::{Lit, Var};
use std::collections::HashSet;

const MUL_BITS: usize = 6;

/// Builds Fig. 1's circuit with arithmetic contents. Returns the CNF and
/// the set of CNF variables belonging to the cone region.
///
/// The cone is the parity of (alternating bits of) an array multiplier's
/// product, so driving the cone output to 1 requires real multiplier
/// reasoning; the beyond region is the parity of a ripple-carry-adder sum
/// over its own inputs.
fn build(control: bool, engage_cone: bool) -> (berkmin_cnf::Cnf, HashSet<usize>) {
    let mut n = Netlist::new();
    // Beyond inputs are declared FIRST so that zero-activity index-order
    // tie-breaking (before any conflicts exist) lands outside the cone.
    let beyond_in = n.inputs_n(2 * MUL_BITS + 1);
    let control_in = n.input();
    let cone_in = n.inputs_n(2 * MUL_BITS);

    // Cone: "the product equals N" for a semiprime N — justifying the cone
    // output is a factoring search, rich in conflicts.
    let target: u64 = 37 * 53; // both factors fit in MUL_BITS bits
    let cone_start = n.num_nodes();
    let mul = arith::array_multiplier(MUL_BITS);
    let product = n.import(&mul, &cone_in);
    let eq_bits: Vec<_> = product
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let want = target >> i & 1 == 1;
            if want {
                p
            } else {
                n.not(p)
            }
        })
        .collect();
    let cone_out = n.and_reduce(&eq_bits);
    let cone_end = n.num_nodes();

    // Beyond: sum parity of an embedded adder.
    let add = arith::ripple_carry_adder(MUL_BITS);
    let sums = n.import(&add, &beyond_in);
    let beyond_out = n.xor_reduce(&sums);

    let gated = n.and(cone_out, control_in);
    let out = n.xor(gated, beyond_out);
    n.set_output(out);
    n.set_output(beyond_out);

    let mut enc = encode(&n);
    enc.constrain_output(0, true);
    if engage_cone {
        // Pin the beyond parity to 0 so the cone must supply the 1.
        let b = enc.output_vars[1];
        enc.cnf.add_clause([Lit::neg(b)]);
    }
    let control_var = enc.node_vars[control_in.index()];
    enc.cnf.add_clause([Lit::new(control_var, !control)]);

    let cone_vars: HashSet<usize> = (cone_start..cone_end)
        .map(|i| enc.node_vars[i].index())
        .chain(cone_in.iter().map(|c| enc.node_vars[c.index()].index()))
        .collect();
    (enc.cnf, cone_vars)
}

fn decision_log(cnf: &berkmin_cnf::Cnf, mut cfg: SolverConfig) -> (Vec<Var>, f64, &'static str) {
    cfg.record_decisions = true;
    cfg.budget = Budget::conflicts(30_000);
    let mut solver = Solver::new(cnf, cfg);
    let verdict = match solver.solve() {
        SolveStatus::Sat(m) => {
            assert!(cnf.is_satisfied_by(&m));
            "SAT"
        }
        SolveStatus::Unsat => "UNSAT",
        SolveStatus::Unknown(_) => "budget",
    };
    (
        solver.stats().decision_log.clone(),
        solver.stats().conflicts as f64,
        verdict,
    )
}

/// Share of total var_activity mass sitting on cone variables — the
/// paper's own notion of "taking part in conflict making" (§3).
fn cone_activity_share(
    cnf: &berkmin_cnf::Cnf,
    cone: &HashSet<usize>,
    control: bool,
    engage: bool,
) -> (f64, u64) {
    let _ = (control, engage);
    let mut cfg = SolverConfig::berkmin();
    cfg.budget = Budget::conflicts(30_000);
    let mut solver = Solver::new(cnf, cfg);
    let _ = solver.solve();
    let mut cone_mass = 0u64;
    let mut total_mass = 0u64;
    for i in 0..solver.num_vars() {
        let a = solver.var_activity(Var::new(i as u32));
        total_mass += a;
        if cone.contains(&i) {
            cone_mass += a;
        }
    }
    let share = if total_mass == 0 {
        0.0
    } else {
        cone_mass as f64 / total_mass as f64
    };
    (share, solver.stats().conflicts)
}

fn cone_fraction(log: &[Var], cone: &HashSet<usize>) -> f64 {
    if log.is_empty() {
        return 0.0;
    }
    log.iter().filter(|v| cone.contains(&v.index())).count() as f64 / log.len() as f64
}

fn main() {
    // Part 1: idle vs active under the full BerkMin configuration.
    let (idle_cnf, idle_cone) = build(false, false);
    let (active_cnf, active_cone) = build(true, true);
    let (idle_share, idle_conf) = cone_activity_share(&idle_cnf, &idle_cone, false, false);
    let (active_share, active_conf) = cone_activity_share(&active_cnf, &active_cone, true, true);
    println!(
        "Fig. 1a — cone share of conflict activity (var_activity mass), control 0 vs 1:\n  \
         idle   (control=0): {idle_share:.3}  ({idle_conf} conflicts)\n  \
         active (control=1): {active_share:.3}  ({active_conf} conflicts)\n",
    );

    // Part 2: windowed mobility comparison on the active instance.
    let window = 50usize;
    let mut table = TextTable::new(
        "Fig. 1b: fraction of decisions on cone variables per window of 50 decisions (control = 1)",
        &["Decision window", "BerkMin", "Less_mobility"],
    );
    let series: Vec<Vec<f64>> = [SolverConfig::berkmin(), SolverConfig::less_mobility()]
        .into_iter()
        .map(|cfg| {
            let (log, _, _) = decision_log(&active_cnf, cfg);
            log.chunks(window)
                .map(|chunk| cone_fraction(chunk, &active_cone))
                .collect()
        })
        .collect();
    let rows = series[0].len().max(series[1].len()).min(24);
    for w in 0..rows {
        let fmt = |s: &Vec<f64>| {
            s.get(w)
                .map(|f| format!("{f:.3}"))
                .unwrap_or_else(|| "-".into())
        };
        table.add_row([
            format!("{}..{}", w * window, (w + 1) * window),
            fmt(&series[0]),
            fmt(&series[1]),
        ]);
    }
    table.print();
    let avg = |s: &Vec<f64>| {
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    };
    println!(
        "mean cone-decision fraction (active): BerkMin {:.3} vs Less_mobility {:.3}",
        avg(&series[0]),
        avg(&series[1]),
    );
}
