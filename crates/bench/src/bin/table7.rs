//! Table 7 — "Benchmarks on which BerkMin dominates" (paper §9).
//!
//! The four harder classes (Beijing, Miters, Hanoi, Fvp-unsat-2.0) where
//! the paper's zChaff aborts instances while BerkMin finishes everything —
//! the robustness claim of the title. Aborted runs are charged their
//! budget, mirroring the paper's `>time (n aborted)` cells.

use berkmin::SolverConfig;
use berkmin_bench::{run_class, TextTable};
use berkmin_gens::suites::{class_suite, PaperClass};
use berkmin_gens::{hanoi, pipeline};

fn main() {
    // Tables 7–9 use the heavyweight versions of the hard classes.
    let classes: Vec<(PaperClass, Vec<berkmin_gens::BenchInstance>, u64)> = vec![
        (
            PaperClass::Beijing,
            class_suite(PaperClass::Beijing),
            200_000,
        ),
        (PaperClass::Miters, class_suite(PaperClass::Miters), 400_000),
        (
            PaperClass::Hanoi,
            vec![hanoi::hanoi(5), hanoi::hanoi(6), hanoi::hanoi(7)],
            400_000,
        ),
        (
            PaperClass::FvpUnsat20,
            vec![
                pipeline::npipe(4),
                pipeline::npipe(5),
                pipeline::npipe(6),
                pipeline::npipe_ooo(4),
            ],
            600_000,
        ),
    ];
    let mut table = TextTable::new(
        "Table 7: Benchmarks on which BerkMin dominates",
        &[
            "Class of benchmarks",
            "Number of instances",
            "zChaff time (s)",
            "zChaff aborted",
            "BerkMin time (s)",
            "BerkMin aborted",
        ],
    );
    let chaff = SolverConfig::chaff_like();
    let berkmin = SolverConfig::berkmin();
    for (class, suite, budget) in classes {
        let budget = berkmin::Budget::conflicts(budget);
        let rc = run_class(class.name(), &suite, &chaff, budget);
        let rb = run_class(class.name(), &suite, &berkmin, budget);
        table.add_row([
            class.name().to_string(),
            suite.len().to_string(),
            rc.time_cell(),
            rc.aborted().to_string(),
            rb.time_cell(),
            rb.aborted().to_string(),
        ]);
    }
    table.print();
}
