//! Table 1 — "Changing sensitivity of decision-making" (paper §4).
//!
//! BerkMin (variable activities credited from every clause responsible for
//! a conflict) vs. `Less_sensitivity` (Chaff-like: only the deduced
//! conflict clause's variables are credited). The paper reports a 2.5×
//! total slowdown, concentrated on the hard classes Hanoi, Miters and
//! Fvp_unsat2.0.

use berkmin::SolverConfig;
use berkmin_bench::run_ablation;

fn main() {
    run_ablation(
        "Table 1: Changing sensitivity of decision-making (time s, budget-aborts in parens)",
        &[
            ("BerkMin (s)", SolverConfig::berkmin()),
            ("Less_sensitivity (s)", SolverConfig::less_sensitivity()),
        ],
    );
}
