//! Table 10 — "Performance of BerkMin, zChaff and limmat on SAT-2002
//! competition instances" (paper §9).
//!
//! Three complete CDCL solvers over the 17 final-stage industrial rows
//! (regenerated analogs; see DESIGN.md §4). The paper's shape: BerkMin
//! solves the most instances overall and the most satisfiable ones, with
//! each solver having rows only it handles comfortably — the robustness
//! argument.

use berkmin::{Budget, SolverConfig};
use berkmin_bench::{run_instance, TextTable, Verdict};

fn main() {
    let suite = berkmin_gens::suites::sat2002_suite();
    let budget = Budget::conflicts(700_000);
    let solvers = [
        ("BerkMin", SolverConfig::berkmin()),
        ("Limmat", SolverConfig::limmat_like()),
        ("zChaff", SolverConfig::chaff_like()),
    ];
    let mut table = TextTable::new(
        "Table 10: SAT-2002 final-stage analogs, three solvers",
        &[
            "Family",
            "Instance",
            "Sat/Unsat",
            "BerkMin (s)",
            "Limmat (s)",
            "zChaff (s)",
        ],
    );
    let mut solved = [0usize; 3];
    let mut solved_sat = [0usize; 3];
    for (family, inst) in &suite {
        let mut cells = Vec::new();
        let mut satness = "?".to_string();
        for (i, (_, cfg)) in solvers.iter().enumerate() {
            let r = run_instance(inst, cfg, budget);
            match r.verdict {
                Verdict::Aborted => cells.push("*".to_string()),
                v => {
                    solved[i] += 1;
                    if v == Verdict::Sat {
                        solved_sat[i] += 1;
                        satness = "Sat".into();
                    } else {
                        satness = "Unsat".into();
                    }
                    cells.push(format!("{:.1}", r.time.as_secs_f64()));
                }
            }
        }
        table.add_row([
            family.to_string(),
            inst.name.clone(),
            satness,
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    table.add_row([
        "Total solved".to_string(),
        String::new(),
        String::new(),
        solved[0].to_string(),
        solved[1].to_string(),
        solved[2].to_string(),
    ]);
    table.add_row([
        "Total solved satisfiable".to_string(),
        String::new(),
        String::new(),
        solved_sat[0].to_string(),
        solved_sat[1].to_string(),
        solved_sat[2].to_string(),
    ]);
    table.print();
    println!("* = aborted on the conflict budget (the paper's 6 h timeout analog)");
}
