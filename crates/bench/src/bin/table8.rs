//! Table 8 — "Details of Chaff's and BerkMin's performance on some
//! instances (runtimes)" (paper §9).
//!
//! Per-instance decision counts and runtimes on the named hard instances
//! (9vliw_bp_mc, hanoi5/6, 4pipe–7pipe). The paper's shape: BerkMin
//! builds much smaller search trees (fewer decisions) and zChaff aborts
//! 7pipe.

use berkmin::{Budget, SolverConfig};
use berkmin_bench::{run_instance, TextTable, Verdict};
use berkmin_gens::{hanoi, pipeline, BenchInstance};

fn named_instances() -> Vec<BenchInstance> {
    vec![
        pipeline::npipe_ooo(4), // 9vliw_bp_mc analog
        hanoi::hanoi(6),        // hanoi5 analog
        hanoi::hanoi(7),        // hanoi6 analog
        pipeline::npipe(4),
        pipeline::npipe(5),
        pipeline::npipe(6),
        pipeline::npipe(7),
    ]
}

fn main() {
    let mut table = TextTable::new(
        "Table 8: per-instance decisions and runtimes (zChaff vs BerkMin)",
        &[
            "Instance",
            "Satisfiable",
            "zChaff decisions",
            "zChaff time (s)",
            "BerkMin decisions",
            "BerkMin time (s)",
        ],
    );
    let budget = Budget::conflicts(1_200_000);
    for inst in named_instances() {
        let rc = run_instance(&inst, &SolverConfig::chaff_like(), budget);
        let rb = run_instance(&inst, &SolverConfig::berkmin(), budget);
        let sat = match rb.verdict {
            Verdict::Sat => "Yes",
            Verdict::Unsat => "No",
            Verdict::Aborted => "?",
        };
        let cell = |r: &berkmin_bench::RunResult| {
            if r.verdict == Verdict::Aborted {
                (
                    format!("{} *", r.stats.decisions),
                    format!(">{:.1} *", r.time.as_secs_f64()),
                )
            } else {
                (
                    r.stats.decisions.to_string(),
                    format!("{:.1}", r.time.as_secs_f64()),
                )
            }
        };
        let (cd, ct) = cell(&rc);
        let (bd, bt) = cell(&rb);
        table.add_row([inst.name.clone(), sat.to_string(), cd, ct, bd, bt]);
    }
    table.print();
    println!("* = aborted on the conflict budget (the paper's timeout analog)");
}
