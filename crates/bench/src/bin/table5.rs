//! Table 5 — "Database management" (paper §8).
//!
//! BerkMin's age/length/activity clause-retention policy vs.
//! `limited_keeping` (GRASP-style: drop every learnt clause longer than
//! 42). The paper reports ≥2× slowdowns on Hanoi, Miters and
//! Fvp_unsat2.0 — keeping a few long-but-active clauses pays off.

use berkmin::SolverConfig;
use berkmin_bench::run_ablation;

fn main() {
    run_ablation(
        "Table 5: Database management (time s, budget-aborts in parens)",
        &[
            ("BerkMin (s)", SolverConfig::berkmin()),
            ("Limited_keeping (s)", SolverConfig::limited_keeping()),
        ],
    );
}
