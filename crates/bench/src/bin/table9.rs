//! Table 9 — "Details of Chaff's and BerkMin's performance on some
//! instances (database size)" (paper §9).
//!
//! Database-growth ratios on the named hard instances:
//! `(generated clauses + initial)/(initial)` for both solvers, plus
//! BerkMin's `(largest simultaneous CNF)/(initial)` — the paper's
//! headline: BerkMin's database management keeps peak memory within ~4×
//! of the input size while Chaff's grows far larger.

use berkmin::{Budget, SolverConfig};
use berkmin_bench::{run_instance, TextTable, Verdict};
use berkmin_gens::{hanoi, pipeline, BenchInstance};

fn named_instances() -> Vec<BenchInstance> {
    vec![
        pipeline::npipe_ooo(4), // 9vliw_bp_mc analog
        hanoi::hanoi(6),        // hanoi5 analog
        hanoi::hanoi(7),        // hanoi6 analog
        pipeline::npipe(4),
        pipeline::npipe(5),
        pipeline::npipe(6),
        pipeline::npipe(7),
    ]
}

fn main() {
    let mut table = TextTable::new(
        "Table 9: database size relative to the initial CNF",
        &[
            "Instance",
            "Satisfiable",
            "zChaff DB/initial",
            "BerkMin DB/initial",
            "BerkMin largest/initial",
        ],
    );
    let budget = Budget::conflicts(1_200_000);
    for inst in named_instances() {
        let rc = run_instance(&inst, &SolverConfig::chaff_like(), budget);
        let rb = run_instance(&inst, &SolverConfig::berkmin(), budget);
        let sat = match rb.verdict {
            Verdict::Sat => "Yes",
            Verdict::Unsat => "No",
            Verdict::Aborted => "?",
        };
        let star = |r: &berkmin_bench::RunResult, x: f64| {
            if r.verdict == Verdict::Aborted {
                format!("{x:.2} *")
            } else {
                format!("{x:.2}")
            }
        };
        table.add_row([
            inst.name.clone(),
            sat.to_string(),
            star(&rc, rc.stats.database_growth_ratio()),
            star(&rb, rb.stats.database_growth_ratio()),
            star(&rb, rb.stats.peak_memory_ratio()),
        ]);
    }
    table.print();
    println!("* = aborted on the conflict budget; ratios reflect the aborted run");
}
