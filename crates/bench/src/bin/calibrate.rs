//! Calibration utility: times every class suite under the default BerkMin
//! configuration so the table budgets and instance sizes can be tuned.
//! Not part of the paper's artifact set.

use berkmin::SolverConfig;
use berkmin_bench::{class_budget, run_class};
use berkmin_gens::suites::{class_suite, ABLATION_ORDER};
use std::time::Instant;

fn main() {
    let config = SolverConfig::berkmin();
    for class in ABLATION_ORDER {
        let gen_start = Instant::now();
        let suite = class_suite(class);
        let gen_time = gen_start.elapsed();
        let result = run_class(class.name(), &suite, &config, class_budget(class));
        print!(
            "{:<14} gen {:>6.2}s solve {:>8.3}s conflicts {:>9} aborts {}  [",
            class.name(),
            gen_time.as_secs_f64(),
            result.total_time().as_secs_f64(),
            result.total_conflicts(),
            result.aborted()
        );
        for r in &result.runs {
            print!(
                " {}:{:.2}s/{}c",
                r.name,
                r.time.as_secs_f64(),
                r.stats.conflicts
            );
        }
        println!(" ]");
    }
}
