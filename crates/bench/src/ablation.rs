//! Shared driver for the ablation tables (Tables 1, 2, 4, 5): run several
//! solver configurations over the 12 paper classes and print one column
//! per configuration.

use berkmin::SolverConfig;
use berkmin_gens::suites::{class_suite, ABLATION_ORDER};

use crate::{class_budget, run_class, ClassResult, TextTable};

/// Runs every class under every named configuration and prints the
/// paper-style table (rows = classes + total, columns = configurations).
/// Returns the per-class results for further inspection.
pub fn run_ablation(title: &str, arms: &[(&str, SolverConfig)]) -> Vec<(String, Vec<ClassResult>)> {
    let mut headers = vec!["Class of benchmarks"];
    for (name, _) in arms {
        headers.push(name);
    }
    let mut table = TextTable::new(title, &headers);
    let mut all: Vec<(String, Vec<ClassResult>)> = Vec::new();
    let mut totals = vec![(0.0f64, 0usize); arms.len()];

    for class in ABLATION_ORDER {
        let suite = class_suite(class);
        let budget = class_budget(class);
        let mut row = vec![class.name().to_string()];
        let mut class_results = Vec::new();
        for (i, (_, config)) in arms.iter().enumerate() {
            let result = run_class(class.name(), &suite, config, budget);
            totals[i].0 += result.total_time().as_secs_f64();
            totals[i].1 += result.aborted();
            row.push(result.time_cell());
            class_results.push(result);
        }
        table.add_row(row);
        all.push((class.name().to_string(), class_results));
    }

    let mut total_row = vec!["Total".to_string()];
    for (secs, aborts) in &totals {
        total_row.push(if *aborts > 0 {
            format!(">{secs:.2} ({aborts})")
        } else {
            format!("{secs:.2}")
        });
    }
    table.add_row(total_row);
    table.print();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::Budget;
    use berkmin_gens::hole;

    #[test]
    fn ablation_driver_smoke() {
        // A miniature two-arm run over a single tiny class exercises the
        // aggregation path without the full table cost.
        let arms = [
            ("berkmin", SolverConfig::berkmin()),
            ("less_sensitivity", SolverConfig::less_sensitivity()),
        ];
        let suite = vec![hole::pigeonhole(4)];
        for (_, cfg) in &arms {
            let r = crate::run_class("Hole", &suite, cfg, Budget::conflicts(100_000));
            assert_eq!(r.aborted(), 0);
        }
    }
}
