//! Instance and suite runners with deterministic budgets. The run path is
//! engine-generic: every instance is driven through `dyn SatEngine`, so
//! the harness measures whatever engine a configuration (or an entirely
//! different backend) builds.

use std::time::{Duration, Instant};

use berkmin::{Budget, SatEngine, SolveStatus, SolverBuilder, SolverConfig, Stats};
use berkmin_gens::BenchInstance;

/// Verdict of a single run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable, model verified against the formula.
    Sat,
    /// Proven unsatisfiable.
    Unsat,
    /// Budget exhausted — the analog of the paper's timeout aborts.
    Aborted,
}

impl Verdict {
    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Sat => "SAT",
            Verdict::Unsat => "UNSAT",
            Verdict::Aborted => "abort",
        }
    }
}

/// Result of running one instance under one configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Instance name.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Wall-clock time of the solve call.
    pub time: Duration,
    /// Full solver statistics.
    pub stats: Stats,
}

/// Runs `inst` under `config` with the given conflict budget: builds the
/// configured engine and delegates to the engine-generic [`run_engine`].
///
/// # Panics
///
/// Panics if the verdict contradicts the instance's construction-guaranteed
/// expectation, or if a SAT model fails verification — an experiment with a
/// wrong answer must never be reported.
pub fn run_instance(inst: &BenchInstance, config: &SolverConfig, budget: Budget) -> RunResult {
    let mut engine = SolverBuilder::with_config(config.clone().with_budget(budget)).build_engine();
    // Feed the borrowed formula straight through the trait surface rather
    // than `SolverBuilder::cnf`, which would buffer a per-clause copy only
    // for `build()` to replay — this path runs 50× per sweep.
    engine.reserve_vars(inst.cnf.num_vars());
    for clause in &inst.cnf {
        engine.add_clause(clause.lits());
    }
    run_engine(inst, engine.as_mut())
}

/// Runs `inst` on a pre-built engine already loaded with the instance's
/// clauses — the measurement core every harness shares, generic over any
/// [`SatEngine`].
///
/// # Panics
///
/// Same verdict/model checks as [`run_instance`].
pub fn run_engine(inst: &BenchInstance, engine: &mut dyn SatEngine) -> RunResult {
    let start = Instant::now();
    let status = engine.solve();
    let time = start.elapsed();
    let verdict = match &status {
        SolveStatus::Sat(model) => {
            assert!(
                inst.cnf.is_satisfied_by(model),
                "{}: solver returned a bad model",
                inst.name
            );
            assert_ne!(
                inst.expected,
                Some(false),
                "{}: SAT on an UNSAT-by-construction instance",
                inst.name
            );
            Verdict::Sat
        }
        SolveStatus::Unsat => {
            assert_ne!(
                inst.expected,
                Some(true),
                "{}: UNSAT on a SAT-by-construction instance",
                inst.name
            );
            Verdict::Unsat
        }
        SolveStatus::Unknown(_) => Verdict::Aborted,
    };
    RunResult {
        name: inst.name.clone(),
        verdict,
        time,
        stats: engine.stats().clone(),
    }
}

/// Aggregate over a class of instances — one row of the paper's tables.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// Class name (table row label).
    pub class: String,
    /// Per-instance results.
    pub runs: Vec<RunResult>,
}

impl ClassResult {
    /// Total wall-clock time over all instances.
    pub fn total_time(&self) -> Duration {
        self.runs.iter().map(|r| r.time).sum()
    }

    /// Number of aborted instances.
    pub fn aborted(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.verdict == Verdict::Aborted)
            .count()
    }

    /// Total conflicts over all instances (the deterministic cost metric).
    pub fn total_conflicts(&self) -> u64 {
        self.runs.iter().map(|r| r.stats.conflicts).sum()
    }

    /// Total decisions over all instances.
    pub fn total_decisions(&self) -> u64 {
        self.runs.iter().map(|r| r.stats.decisions).sum()
    }

    /// Formats the paper's "time (aborted)" cell: `12.34` or `>12.34 (2)`.
    pub fn time_cell(&self) -> String {
        let secs = self.total_time().as_secs_f64();
        if self.aborted() > 0 {
            format!(">{:.2} ({})", secs, self.aborted())
        } else {
            format!("{secs:.2}")
        }
    }

    /// Same formatting for the conflicts metric.
    pub fn conflicts_cell(&self) -> String {
        if self.aborted() > 0 {
            format!(">{} ({})", self.total_conflicts(), self.aborted())
        } else {
            format!("{}", self.total_conflicts())
        }
    }
}

/// Runs a whole class under one configuration.
pub fn run_class(
    class: &str,
    instances: &[BenchInstance],
    config: &SolverConfig,
    budget: Budget,
) -> ClassResult {
    ClassResult {
        class: class.to_string(),
        runs: instances
            .iter()
            .map(|inst| run_instance(inst, config, budget))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_gens::hole;

    #[test]
    fn run_reports_expected_verdicts() {
        let inst = hole::pigeonhole(4);
        let r = run_instance(&inst, &SolverConfig::berkmin(), Budget::unlimited());
        assert_eq!(r.verdict, Verdict::Unsat);
        assert!(r.stats.conflicts > 0);
    }

    #[test]
    fn tiny_budget_aborts() {
        let inst = hole::pigeonhole(7);
        let r = run_instance(&inst, &SolverConfig::berkmin(), Budget::conflicts(2));
        assert_eq!(r.verdict, Verdict::Aborted);
    }

    #[test]
    fn class_aggregation_formats_abort_cells() {
        let instances = vec![hole::pigeonhole(3), hole::pigeonhole(7)];
        let res = run_class(
            "Hole",
            &instances,
            &SolverConfig::berkmin(),
            Budget::conflicts(1000),
        );
        assert_eq!(res.aborted(), 1);
        assert!(res.time_cell().starts_with('>'));
        assert!(res.time_cell().ends_with("(1)"));
    }

    #[test]
    fn sat_models_are_verified() {
        let inst = hole::pigeonhole_sat(4);
        let r = run_instance(&inst, &SolverConfig::berkmin(), Budget::unlimited());
        assert_eq!(r.verdict, Verdict::Sat);
    }
}
