//! Forward RUP proof checking.
//!
//! Every clause a CDCL solver learns is a *reverse unit propagation* (RUP)
//! consequence: asserting the negation of all its literals and running unit
//! propagation over the current database yields a conflict. The checker
//! verifies each addition that way, maintains the database across
//! deletions, and accepts iff the empty clause is derived.
//!
//! Deletion semantics follow the operational DRAT convention (as in
//! `drat-trim`): units already on the persistent trail stay valid even if
//! a clause that justified them is later deleted.

use std::fmt;

use berkmin_cnf::{Cnf, LBool, Lit};

use crate::proof::{DratProof, Step};

/// Why a proof was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Addition step `step` is not a RUP consequence of the database.
    NotRup {
        /// Index of the offending step in the proof.
        step: usize,
        /// The clause that failed the check.
        clause: Vec<Lit>,
    },
    /// The proof never derives the empty clause.
    NoEmptyClause,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NotRup { step, clause } => {
                write!(f, "step {step}: clause {clause:?} is not RUP")
            }
            CheckError::NoEmptyClause => write!(f, "proof does not derive the empty clause"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Outcome of a successful check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of addition steps verified.
    pub additions_checked: usize,
    /// Number of deletion steps applied.
    pub deletions_applied: usize,
    /// Deletions that referenced clauses absent from the database (ignored,
    /// per the operational convention).
    pub deletions_ignored: usize,
    /// Steps after the empty clause (not checked — the proof is complete).
    pub steps_after_empty: usize,
}

/// Verifies that `proof` is a valid RUP refutation of `cnf`.
///
/// # Errors
///
/// Returns [`CheckError::NotRup`] if an added clause does not follow by
/// unit propagation, or [`CheckError::NoEmptyClause`] if the proof never
/// reaches the empty clause.
pub fn check_refutation(cnf: &Cnf, proof: &DratProof) -> Result<CheckReport, CheckError> {
    let mut nvars = cnf.num_vars();
    for step in proof.steps() {
        let lits = match step {
            Step::Add(l) | Step::Delete(l) => l,
        };
        for l in lits {
            nvars = nvars.max(l.var().index() + 1);
        }
    }

    let mut db = Propagator::new(nvars);
    let mut report = CheckReport::default();

    // Load the original formula; a conflict here already refutes it.
    for clause in cnf.iter() {
        db.add_clause(clause.lits());
    }
    db.propagate_persistent();

    for (i, step) in proof.steps().iter().enumerate() {
        if db.contradiction {
            report.steps_after_empty = proof.len() - i;
            return Ok(report);
        }
        match step {
            Step::Add(lits) => {
                if !db.is_rup(lits) {
                    return Err(CheckError::NotRup {
                        step: i,
                        clause: lits.clone(),
                    });
                }
                report.additions_checked += 1;
                db.add_clause(lits);
                db.propagate_persistent();
            }
            Step::Delete(lits) => {
                if db.delete_clause(lits) {
                    report.deletions_applied += 1;
                } else {
                    report.deletions_ignored += 1;
                }
            }
        }
    }
    if db.contradiction {
        Ok(report)
    } else {
        Err(CheckError::NoEmptyClause)
    }
}

/// A minimal two-watched-literal propagation engine for proof checking.
struct Propagator {
    /// All clauses ever added; deleted ones are tombstoned.
    clauses: Vec<Vec<Lit>>,
    alive: Vec<bool>,
    /// Sorted copies for deletion matching.
    sorted: Vec<Vec<Lit>>,
    /// watches[lit.code()] = clause indices where ¬lit is watched.
    watches: Vec<Vec<usize>>,
    assigns: Vec<LBool>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Length of the persistent (non-assumption) trail prefix.
    persistent_len: usize,
    /// Set once the database is contradictory by unit propagation.
    contradiction: bool,
}

impl Propagator {
    fn new(nvars: usize) -> Self {
        Propagator {
            clauses: Vec::new(),
            alive: Vec::new(),
            sorted: Vec::new(),
            watches: vec![Vec::new(); 2 * nvars],
            assigns: vec![LBool::Undef; nvars],
            trail: Vec::new(),
            qhead: 0,
            persistent_len: 0,
            contradiction: false,
        }
    }

    fn value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            !v
        } else {
            v
        }
    }

    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                self.assigns[l.var().index()] = LBool::from(l.is_positive());
                self.trail.push(l);
                true
            }
        }
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Watch selection below must see each literal once: a duplicated
        // literal (legal in DIMACS, and produced by some generators) would
        // otherwise occupy both watch slots, leaving the rest of the clause
        // unwatched and propagation incomplete.
        match sorted.len() {
            0 => {
                self.contradiction = true;
                return;
            }
            1 => {
                if !self.enqueue(sorted[0]) {
                    self.contradiction = true;
                }
                // Units live on the trail; no watch entry needed, but we
                // still register the clause so deletions can match it.
                self.clauses.push(sorted.clone());
                self.alive.push(true);
                self.sorted.push(sorted);
                return;
            }
            _ => {}
        }
        let idx = self.clauses.len();
        // Prefer unassigned or true literals as watches so the invariant
        // holds under the current persistent trail.
        let mut ls = sorted.clone();
        ls.sort_by_key(|&l| match self.value(l) {
            LBool::True => 0,
            LBool::Undef => 1,
            LBool::False => 2,
        });
        self.watches[(!ls[0]).code()].push(idx);
        self.watches[(!ls[1]).code()].push(idx);
        // If both best watches are false, the clause is conflicting or unit
        // under the trail; let propagation discover it by re-enqueueing the
        // watch trigger.
        if self.value(ls[1]) == LBool::False {
            match self.value(ls[0]) {
                LBool::False => self.contradiction = true,
                LBool::Undef => {
                    if !self.enqueue(ls[0]) {
                        self.contradiction = true;
                    }
                }
                LBool::True => {}
            }
        }
        self.clauses.push(ls);
        self.alive.push(true);
        self.sorted.push(sorted);
    }

    /// Removes the clause whose sorted literals equal `lits`; returns
    /// whether a clause was found.
    fn delete_clause(&mut self, lits: &[Lit]) -> bool {
        let mut key = lits.to_vec();
        key.sort_unstable();
        key.dedup();
        for i in 0..self.clauses.len() {
            if self.alive[i] && self.sorted[i] == key {
                self.alive[i] = false;
                // Watches are purged lazily during propagation.
                return true;
            }
        }
        false
    }

    /// Unit propagation; returns `true` on conflict. Watches of dead
    /// clauses are purged on the fly.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let ci = ws[i];
                if !self.alive[ci] {
                    ws.swap_remove(i);
                    continue;
                }
                let false_lit = !p;
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                if self.clauses[ci][1] != false_lit {
                    // Stale watch (clause was re-sorted on re-add); drop it.
                    ws.swap_remove(i);
                    continue;
                }
                let first = self.clauses[ci][0];
                if self.value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != LBool::False {
                        self.clauses[ci].swap(1, k);
                        let nw = self.clauses[ci][1];
                        self.watches[(!nw).code()].push(ci);
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                i += 1;
                if self.value(first) == LBool::False {
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return true;
                }
                self.enqueue(first);
            }
            self.watches[p.code()] = ws;
        }
        false
    }

    /// Propagates and commits the result to the persistent trail.
    fn propagate_persistent(&mut self) {
        if self.propagate() {
            self.contradiction = true;
        }
        self.persistent_len = self.trail.len();
    }

    /// RUP check: assume the negation of every literal of `lits`,
    /// propagate, expect a conflict, then roll back.
    fn is_rup(&mut self, lits: &[Lit]) -> bool {
        if self.contradiction {
            return true; // anything follows from a contradictory database
        }
        let saved = self.trail.len();
        let saved_qhead = self.qhead;
        let mut conflict = false;
        for &l in lits {
            if !self.enqueue(!l) {
                conflict = true; // ¬l contradicts the trail: propagation conflict
                break;
            }
        }
        if !conflict {
            conflict = self.propagate();
        }
        // Roll back the assumptions.
        for i in (saved..self.trail.len()).rev() {
            self.assigns[self.trail[i].var().index()] = LBool::Undef;
        }
        self.trail.truncate(saved);
        self.qhead = saved_qhead.min(saved);
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::DratProof;
    use berkmin::ProofSink;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn cnf(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&n| lit(n)));
        }
        f
    }

    #[test]
    fn accepts_textbook_refutation() {
        // (a∨b)(a∨¬b)(¬a∨c)(¬a∨¬c): derive a, then ⊥.
        let f = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let mut p = DratProof::new();
        p.add_clause(&[lit(1)]); // RUP: ¬a → b and ¬b conflict
        p.add_clause(&[]); // a → c and ¬c conflict
        let report = check_refutation(&f, &p).expect("valid refutation");
        // Adding the unit `a` already makes the database contradictory by
        // propagation, so the checker may finish after one verified step.
        assert!(report.additions_checked >= 1);
        assert_eq!(report.additions_checked + report.steps_after_empty, 2);
    }

    #[test]
    fn rejects_non_rup_addition() {
        let f = cnf(&[&[1, 2]]);
        let mut p = DratProof::new();
        p.add_clause(&[lit(1)]); // does not follow
        let err = check_refutation(&f, &p).unwrap_err();
        match err {
            CheckError::NotRup { step, .. } => assert_eq!(step, 0),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn rejects_incomplete_proof() {
        let f = cnf(&[&[1], &[-1]]);
        let p = DratProof::new();
        // The formula is contradictory by propagation alone, so even the
        // empty proof succeeds here...
        assert!(check_refutation(&f, &p).is_ok());
        // ...but a satisfiable formula with no derivation must fail.
        let sat = cnf(&[&[1, 2]]);
        assert_eq!(
            check_refutation(&sat, &p).unwrap_err(),
            CheckError::NoEmptyClause
        );
    }

    #[test]
    fn deletion_bookkeeping() {
        // Extra redundant clause so a deletion can precede the refutation.
        let f = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3], &[1, 2, 3]]);
        let mut p = DratProof::new();
        p.delete_clause(&[lit(1), lit(2), lit(3)]); // applied
        p.delete_clause(&[lit(9), lit(8)]); // unknown: ignored
        p.add_clause(&[lit(1)]);
        p.add_clause(&[]);
        let report = check_refutation(&f, &p).unwrap();
        assert_eq!(report.deletions_applied, 1);
        assert_eq!(report.deletions_ignored, 1);
        assert!(report.additions_checked >= 1);
    }

    #[test]
    fn deleted_clauses_no_longer_support_rup() {
        // (a∨b)(a∨¬b): "a" is RUP. After deleting (a∨b) first, it is not —
        // assuming ¬a only yields ¬b with no conflict.
        let f = cnf(&[&[1, 2], &[1, -2]]);
        let mut good = DratProof::new();
        good.add_clause(&[lit(1)]);
        // (Not a refutation — formula is SAT — but step 0 must verify.)
        assert!(matches!(
            check_refutation(&f, &good),
            Err(CheckError::NoEmptyClause)
        ));

        let mut bad = DratProof::new();
        bad.delete_clause(&[lit(1), lit(2)]);
        bad.add_clause(&[lit(1)]);
        let err = check_refutation(&f, &bad).unwrap_err();
        assert!(matches!(err, CheckError::NotRup { step: 1, .. }));
    }

    #[test]
    fn duplicate_literals_do_not_blind_the_propagator() {
        // A clause with a repeated literal (legal DIMACS, emitted by some
        // circuit generators) must not occupy both watch slots with the
        // same literal: (b∨b∨¬a) has to wake when a is assigned, or the
        // propagator silently loses the a→b implication. The rest of the
        // formula makes ¬b non-derivable by UP (a case-split pair), so a
        // blind propagator cannot recover via back-propagation and wrongly
        // rejects the final — perfectly valid — RUP addition.
        let f = cnf(&[
            &[2, 2, -1],   // a → b        (duplicated literal)
            &[3],          // s
            &[-4, -2, -3], // b ∧ s → ¬t
            &[4, 2, -3],   // ¬b ∧ s → t   (case-split partner: blocks ¬b)
            &[5, 4, -3],   // ¬t ∧ s → u
            &[-5, -2, 6],  // u ∧ b → g
        ]);
        let mut p = DratProof::new();
        p.add_clause(&[lit(6), lit(-1)]); // a → g: RUP only via the dup clause
                                          // Not a refutation (f is satisfiable), but the step must verify.
        assert_eq!(
            check_refutation(&f, &p).unwrap_err(),
            CheckError::NoEmptyClause
        );
    }

    #[test]
    fn end_to_end_with_real_solver_unsat_run() {
        // Pigeonhole PHP(3) refuted by the solver; proof must check.
        let mut f = Cnf::new();
        let holes = 3usize;
        let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
        for p in 0..=holes {
            f.add_clause((0..holes).map(|h| l(p, h)));
        }
        for h in 0..holes {
            for p1 in 0..=holes {
                for p2 in (p1 + 1)..=holes {
                    f.add_clause([!l(p1, h), !l(p2, h)]);
                }
            }
        }
        let proof = std::rc::Rc::new(std::cell::RefCell::new(DratProof::new()));
        let mut solver = berkmin::SolverBuilder::new()
            .proof(std::rc::Rc::clone(&proof))
            .cnf(&f)
            .build();
        assert!(solver.solve().is_unsat());
        let proof = proof.borrow();
        assert!(proof.ends_with_empty_clause());
        let report = check_refutation(&f, &proof).expect("solver proof must check");
        assert!(report.additions_checked > 0);
    }
}
