//! # berkmin-drat — clausal proof logging and checking
//!
//! CDCL solvers can justify UNSAT answers with a *clausal proof*: the
//! stream of learnt clauses (each a reverse-unit-propagation consequence)
//! ending in the empty clause, interleaved with deletions — the DRAT
//! format of modern SAT competitions. This crate provides:
//!
//! * [`DratProof`] — an in-memory proof that attaches to a solver at
//!   construction time via [`berkmin::SolverBuilder::proof`] as a
//!   [`berkmin::ProofSink`];
//! * [`TextDratWriter`] — a streaming sink emitting standard textual DRAT;
//! * [`check_refutation`] — a forward RUP checker that independently
//!   validates the solver's UNSAT verdicts (used throughout the
//!   integration test suite).
//!
//! # Example: verify an UNSAT answer end to end
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use berkmin::SolverBuilder;
//! use berkmin_drat::{check_refutation, DratProof};
//! use berkmin_cnf::{Cnf, Lit, Var};
//!
//! // x ∧ (¬x ∨ y) ∧ ¬y
//! let mut cnf = Cnf::new();
//! let [x, y] = [0, 1].map(|i| Var::new(i));
//! cnf.add_clause([Lit::pos(x)]);
//! cnf.add_clause([Lit::neg(x), Lit::pos(y)]);
//! cnf.add_clause([Lit::neg(y)]);
//!
//! let proof = Rc::new(RefCell::new(DratProof::new()));
//! let mut solver = SolverBuilder::new().proof(Rc::clone(&proof)).cnf(&cnf).build();
//! assert!(solver.solve().is_unsat());
//! check_refutation(&cnf, &proof.borrow()).expect("machine-checkable refutation");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod proof;

pub use checker::{check_refutation, CheckError, CheckReport};
pub use proof::{DratProof, ParseDratError, Step, TextDratWriter};
