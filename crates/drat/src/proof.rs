//! Proof containers and serialization.

use berkmin::ProofSink;
use berkmin_cnf::Lit;
use std::fmt;
use std::io::{self, Write};

/// One step of a clausal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// A clause asserted to be a reverse-unit-propagation consequence.
    Add(Vec<Lit>),
    /// A clause removed from the database.
    Delete(Vec<Lit>),
}

/// An in-memory DRAT proof: the stream of clause additions and deletions a
/// solver emitted, in order.
///
/// Implements [`ProofSink`], so it attaches to a solver at construction
/// time via [`berkmin::SolverBuilder::proof`] — wrap it in
/// `Rc<RefCell<...>>` (itself a `ProofSink`) to keep a handle for reading
/// the proof back after solving:
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use berkmin::SolverBuilder;
/// use berkmin_drat::DratProof;
/// use berkmin_cnf::Lit;
///
/// let x = Lit::from_dimacs(1);
/// let proof = Rc::new(RefCell::new(DratProof::new()));
/// let mut solver = SolverBuilder::new()
///     .proof(Rc::clone(&proof))
///     .clause([x])
///     .clause([!x])
///     .build();
/// assert!(solver.solve().is_unsat());
/// assert!(proof.borrow().ends_with_empty_clause());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<Step>,
}

impl DratProof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        DratProof::default()
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of clause additions.
    pub fn num_additions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Add(_)))
            .count()
    }

    /// Number of deletions.
    pub fn num_deletions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Delete(_)))
            .count()
    }

    /// `true` if some addition is the empty clause (an UNSAT run's final
    /// emission).
    pub fn ends_with_empty_clause(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, Step::Add(lits) if lits.is_empty()))
    }

    /// Appends a step (for programmatic proof construction in tests).
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Renders the proof in the standard textual DRAT format
    /// (`d` prefix for deletions, DIMACS literals, `0` terminators).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let (prefix, lits) = match step {
                Step::Add(l) => ("", l),
                Step::Delete(l) => ("d ", l),
            };
            out.push_str(prefix);
            for l in lits {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Writes the textual DRAT format to `writer` (a `&mut` reference works
    /// too).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_text<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(self.to_text().as_bytes())
    }

    /// Parses the textual DRAT format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDratError`] on malformed tokens or unterminated steps.
    pub fn parse(text: &str) -> Result<DratProof, ParseDratError> {
        let mut proof = DratProof::new();
        let mut current: Vec<Lit> = Vec::new();
        let mut deleting = false;
        let mut at_start = true;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            for tok in line.split_whitespace() {
                if tok == "d" {
                    if !at_start {
                        return Err(ParseDratError {
                            line: lineno + 1,
                            message: "'d' must start a step".into(),
                        });
                    }
                    deleting = true;
                    continue;
                }
                let n: i32 = tok.parse().map_err(|_| ParseDratError {
                    line: lineno + 1,
                    message: format!("bad token {tok:?}"),
                })?;
                at_start = false;
                if n == 0 {
                    let step = if deleting {
                        Step::Delete(std::mem::take(&mut current))
                    } else {
                        Step::Add(std::mem::take(&mut current))
                    };
                    proof.push(step);
                    deleting = false;
                    at_start = true;
                } else {
                    current.push(Lit::from_dimacs(n));
                }
            }
        }
        if !current.is_empty() || deleting {
            return Err(ParseDratError {
                line: text.lines().count(),
                message: "unterminated final step".into(),
            });
        }
        Ok(proof)
    }
}

impl ProofSink for DratProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.steps.push(Step::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.steps.push(Step::Delete(lits.to_vec()));
    }
}

/// Error from [`DratProof::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDratError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDratError {}

/// A [`ProofSink`] that streams textual DRAT to any writer as the solver
/// runs (no in-memory buffering of the whole proof).
#[derive(Debug)]
pub struct TextDratWriter<W: Write> {
    writer: W,
    /// First I/O error encountered, if any (sinks cannot fail mid-solve).
    error: Option<io::Error>,
}

impl<W: Write> TextDratWriter<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        TextDratWriter {
            writer,
            error: None,
        }
    }

    /// Finishes writing and returns the writer, or the first I/O error
    /// swallowed during the run.
    pub fn into_inner(mut self) -> io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.writer),
        }
    }

    fn emit(&mut self, prefix: &str, lits: &[Lit]) {
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(prefix.len() + lits.len() * 4 + 2);
        line.push_str(prefix);
        for l in lits {
            line.push_str(&l.to_dimacs().to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> ProofSink for TextDratWriter<W> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.emit("", lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.emit("d ", lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn text_roundtrip() {
        let mut p = DratProof::new();
        p.add_clause(&[lit(1), lit(-2)]);
        p.delete_clause(&[lit(3)]);
        p.add_clause(&[]);
        let text = p.to_text();
        assert_eq!(text, "1 -2 0\nd 3 0\n0\n");
        assert_eq!(DratProof::parse(&text).unwrap(), p);
    }

    #[test]
    fn counts_and_empty_detection() {
        let mut p = DratProof::new();
        assert!(p.is_empty());
        p.add_clause(&[lit(1)]);
        p.delete_clause(&[lit(1)]);
        assert_eq!((p.num_additions(), p.num_deletions()), (1, 1));
        assert!(!p.ends_with_empty_clause());
        p.add_clause(&[]);
        assert!(p.ends_with_empty_clause());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DratProof::parse("1 x 0\n").is_err());
        assert!(DratProof::parse("1 2\n").is_err());
        assert!(DratProof::parse("1 d 2 0\n").is_err());
    }

    #[test]
    fn parse_skips_comments() {
        let p = DratProof::parse("c hello\n1 0\nc bye\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn streaming_writer_matches_in_memory() {
        let mut mem = DratProof::new();
        let mut buf = Vec::new();
        {
            let mut w = TextDratWriter::new(&mut buf);
            for sink in [&mut mem as &mut dyn ProofSink, &mut w] {
                sink.add_clause(&[lit(2), lit(3)]);
                sink.delete_clause(&[lit(-1)]);
            }
            w.into_inner().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), mem.to_text());
    }
}
