//! Gate-level netlists.

use std::fmt;

/// Handle to a node (gate, input, constant or flip-flop) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// 0-based index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single node of a gate-level netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Primary input number `n` (in declaration order).
    Input(u32),
    /// Constant 0 or 1.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2-input NAND.
    Nand(NodeId, NodeId),
    /// 2-input NOR.
    Nor(NodeId, NodeId),
    /// 2-input XNOR.
    Xnor(NodeId, NodeId),
    /// Multiplexer: output = `if sel { hi } else { lo }`.
    Mux {
        /// Select signal.
        sel: NodeId,
        /// Value when `sel` is 0.
        lo: NodeId,
        /// Value when `sel` is 1.
        hi: NodeId,
    },
    /// D flip-flop with an initial value; its data input is connected after
    /// creation via [`Netlist::connect_dff`] (allowing feedback loops).
    Dff {
        /// Data input (`self` as a placeholder until connected).
        d: NodeId,
        /// Power-on value.
        init: bool,
    },
}

/// A gate-level netlist: combinational logic plus optional D flip-flops.
///
/// Nodes are created through builder methods and may only reference
/// already-created nodes, so the creation order is a topological order of
/// the combinational logic (flip-flop data inputs are the one exception,
/// wired up by [`Netlist::connect_dff`]).
///
/// # Examples
///
/// ```
/// use berkmin_circuit::Netlist;
///
/// // A full adder out of gates.
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let cin = n.input();
/// let s1 = n.xor(a, b);
/// let sum = n.xor(s1, cin);
/// let c1 = n.and(a, b);
/// let c2 = n.and(s1, cin);
/// let cout = n.or(c1, c2);
/// n.set_output(sum);
/// n.set_output(cout);
/// assert_eq!(n.num_inputs(), 3);
/// assert_eq!(n.outputs().len(), 2);
/// assert!(n.is_combinational());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        let id = NodeId(self.gates.len() as u32);
        self.gates.push(gate);
        id
    }

    fn check(&self, operand: NodeId) -> NodeId {
        assert!(
            operand.index() < self.gates.len(),
            "operand {operand:?} does not exist yet"
        );
        operand
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> NodeId {
        let n = self.inputs.len() as u32;
        let id = self.push(Gate::Input(n));
        self.inputs.push(id);
        id
    }

    /// Adds `n` primary inputs and returns them in order.
    pub fn inputs_n(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let a = self.check(a);
        self.push(Gate::Not(a))
    }

    /// Adds a 2-input AND gate.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::And(a, b))
    }

    /// Adds a 2-input OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::Or(a, b))
    }

    /// Adds a 2-input XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::Xor(a, b))
    }

    /// Adds a 2-input NAND gate.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::Nand(a, b))
    }

    /// Adds a 2-input NOR gate.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::Nor(a, b))
    }

    /// Adds a 2-input XNOR gate.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Gate::Xnor(a, b))
    }

    /// Adds a multiplexer (`sel ? hi : lo`).
    pub fn mux(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        let (sel, lo, hi) = (self.check(sel), self.check(lo), self.check(hi));
        self.push(Gate::Mux { sel, lo, hi })
    }

    /// Reduces a slice of signals with AND (returns constant 1 when empty).
    pub fn and_reduce(&mut self, xs: &[NodeId]) -> NodeId {
        match xs {
            [] => self.constant(true),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.and(acc, x);
                }
                acc
            }
        }
    }

    /// Reduces a slice of signals with OR (returns constant 0 when empty).
    pub fn or_reduce(&mut self, xs: &[NodeId]) -> NodeId {
        match xs {
            [] => self.constant(false),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.or(acc, x);
                }
                acc
            }
        }
    }

    /// Reduces a slice of signals with XOR (returns constant 0 when empty).
    pub fn xor_reduce(&mut self, xs: &[NodeId]) -> NodeId {
        match xs {
            [] => self.constant(false),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.xor(acc, x);
                }
                acc
            }
        }
    }

    /// Adds a D flip-flop with power-on value `init`. Its data input is a
    /// self-loop until [`Netlist::connect_dff`] is called.
    pub fn dff(&mut self, init: bool) -> NodeId {
        let id = NodeId(self.gates.len() as u32);
        self.gates.push(Gate::Dff { d: id, init });
        self.dffs.push(id);
        id
    }

    /// Connects the data input of flip-flop `dff` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop node.
    pub fn connect_dff(&mut self, dff: NodeId, d: NodeId) {
        let d = self.check(d);
        match &mut self.gates[dff.index()] {
            Gate::Dff { d: slot, .. } => *slot = d,
            g => panic!("{dff:?} is a {g:?}, not a flip-flop"),
        }
    }

    /// Marks `node` as a primary output (order of calls = output order).
    pub fn set_output(&mut self, node: NodeId) {
        let node = self.check(node);
        self.outputs.push(node);
    }

    /// The gate defining `node`.
    pub fn gate(&self, node: NodeId) -> Gate {
        self.gates[node.index()]
    }

    /// All gates in creation (topological) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop nodes in declaration order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Total number of nodes (inputs, constants, gates, flip-flops).
    pub fn num_nodes(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the netlist has no flip-flops.
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// Copies all of `other`'s gates into `self`, mapping `other`'s primary
    /// input `i` to the given `input_map[i]` nodes, and returns the node ids
    /// corresponding to `other`'s outputs. Flip-flops are copied too
    /// (without sharing state). Used to stitch miters together.
    ///
    /// # Panics
    ///
    /// Panics if `input_map.len() != other.num_inputs()`.
    pub fn import(&mut self, other: &Netlist, input_map: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(
            input_map.len(),
            other.num_inputs(),
            "input_map must cover every input of the imported netlist"
        );
        let mut map: Vec<NodeId> = Vec::with_capacity(other.gates.len());
        let mut imported_dffs: Vec<(usize, NodeId)> = Vec::new();
        for (i, &gate) in other.gates.iter().enumerate() {
            let new_id = match gate {
                Gate::Input(n) => input_map[n as usize],
                Gate::Const(v) => self.constant(v),
                Gate::Not(a) => self.not(map[a.index()]),
                Gate::And(a, b) => self.and(map[a.index()], map[b.index()]),
                Gate::Or(a, b) => self.or(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => self.xor(map[a.index()], map[b.index()]),
                Gate::Nand(a, b) => self.nand(map[a.index()], map[b.index()]),
                Gate::Nor(a, b) => self.nor(map[a.index()], map[b.index()]),
                Gate::Xnor(a, b) => self.xnor(map[a.index()], map[b.index()]),
                Gate::Mux { sel, lo, hi } => {
                    self.mux(map[sel.index()], map[lo.index()], map[hi.index()])
                }
                Gate::Dff { init, .. } => {
                    let id = self.dff(init);
                    imported_dffs.push((i, id));
                    id
                }
            };
            map.push(new_id);
        }
        // Second pass: wire up copied flip-flop data inputs (which may
        // reference nodes created after the flip-flop).
        for (orig_idx, new_id) in imported_dffs {
            if let Gate::Dff { d, .. } = other.gates[orig_idx] {
                self.connect_dff(new_id, map[d.index()]);
            }
        }
        other.outputs.iter().map(|o| map[o.index()]).collect()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist({} inputs, {} outputs, {} nodes, {} dffs)",
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            self.dffs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let g = n.and(a, b);
        assert_eq!((a.index(), b.index(), g.index()), (0, 1, 2));
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_references_are_rejected() {
        let mut n = Netlist::new();
        let a = n.input();
        let _ = n.and(a, NodeId(5));
    }

    #[test]
    fn dff_connect_allows_feedback() {
        let mut n = Netlist::new();
        let q = n.dff(false);
        let nq = n.not(q);
        n.connect_dff(q, nq); // toggle flip-flop
        n.set_output(q);
        assert!(!n.is_combinational());
        match n.gate(q) {
            Gate::Dff { d, init } => {
                assert_eq!(d, nq);
                assert!(!init);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn connect_dff_rejects_non_dff() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        n.connect_dff(a, b);
    }

    #[test]
    fn reduce_helpers_handle_degenerate_sizes() {
        let mut n = Netlist::new();
        let a = n.input();
        assert_eq!(n.and_reduce(&[a]), a);
        let t = n.and_reduce(&[]);
        assert_eq!(n.gate(t), Gate::Const(true));
        let f = n.or_reduce(&[]);
        assert_eq!(n.gate(f), Gate::Const(false));
    }

    #[test]
    fn import_remaps_inputs_and_outputs() {
        let mut inner = Netlist::new();
        let a = inner.input();
        let b = inner.input();
        let g = inner.xor(a, b);
        inner.set_output(g);

        let mut outer = Netlist::new();
        let x = outer.input();
        let y = outer.input();
        let outs = outer.import(&inner, &[x, y]);
        assert_eq!(outs.len(), 1);
        match outer.gate(outs[0]) {
            Gate::Xor(p, q) => assert_eq!((p, q), (x, y)),
            g => panic!("unexpected gate {g:?}"),
        }
        // Outer still has only its own two inputs.
        assert_eq!(outer.num_inputs(), 2);
    }

    #[test]
    fn import_copies_dffs_with_wiring() {
        let mut inner = Netlist::new();
        let q = inner.dff(true);
        let nq = inner.not(q);
        inner.connect_dff(q, nq);
        inner.set_output(q);

        let mut outer = Netlist::new();
        let outs = outer.import(&inner, &[]);
        assert_eq!(outer.dffs().len(), 1);
        let new_q = outer.dffs()[0];
        assert_eq!(outs[0], new_q);
        match outer.gate(new_q) {
            Gate::Dff { d, init } => {
                assert!(init);
                assert_eq!(outer.gate(d), Gate::Not(new_q));
            }
            _ => unreachable!(),
        }
    }
}
