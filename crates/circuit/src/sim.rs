//! Bit-parallel simulation of netlists (64 patterns per step).

use crate::netlist::{Gate, Netlist};

/// Evaluates a *combinational* netlist on up to 64 input patterns at once:
/// bit `k` of `inputs[i]` is the value of input `i` in pattern `k`.
/// Returns one word per output, with the same bit-to-pattern mapping.
///
/// # Panics
///
/// Panics if the netlist contains flip-flops or if `inputs.len()` differs
/// from the number of primary inputs.
pub fn eval64(netlist: &Netlist, inputs: &[u64]) -> Vec<u64> {
    assert!(
        netlist.is_combinational(),
        "eval64 requires a combinational netlist; use Simulator for sequential ones"
    );
    assert_eq!(
        inputs.len(),
        netlist.num_inputs(),
        "one word per input required"
    );
    let values = eval_nodes(netlist, inputs, &[]);
    netlist
        .outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect()
}

/// Exhaustively compares two combinational netlists with identical
/// interfaces; returns `true` iff they compute the same function.
///
/// # Panics
///
/// Panics if the interfaces differ or if there are more than 20 inputs
/// (exhaustive check would be infeasible — use a miter and the solver).
pub fn equivalent_exhaustive(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output arity mismatch"
    );
    let n = a.num_inputs();
    assert!(
        n <= 20,
        "exhaustive equivalence limited to 20 inputs, got {n}"
    );
    let total: u64 = 1 << n;
    let mut base = 0u64;
    while base < total {
        let chunk = (total - base).min(64);
        // Pattern k in this chunk is the assignment (base + k).
        let words: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for k in 0..chunk {
                    if (base + k) >> i & 1 == 1 {
                        w |= 1 << k;
                    }
                }
                w
            })
            .collect();
        let mask = if chunk == 64 {
            u64::MAX
        } else {
            (1u64 << chunk) - 1
        };
        let oa = eval64(a, &words);
        let ob = eval64(b, &words);
        if oa.iter().zip(&ob).any(|(x, y)| (x ^ y) & mask != 0) {
            return false;
        }
        base += chunk;
    }
    true
}

/// Cycle-accurate simulator for sequential netlists, 64 patterns in
/// parallel.
///
/// # Examples
///
/// ```
/// use berkmin_circuit::{Netlist, Simulator};
///
/// // A toggle flip-flop divides the clock by two.
/// let mut n = Netlist::new();
/// let q = n.dff(false);
/// let nq = n.not(q);
/// n.connect_dff(q, nq);
/// n.set_output(q);
///
/// let mut sim = Simulator::new(&n);
/// assert_eq!(sim.step(&[]), vec![0]);      // starts at 0
/// assert_eq!(sim.step(&[]), vec![u64::MAX]); // toggles to 1
/// assert_eq!(sim.step(&[]), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Current flip-flop state, one word per dff (pattern-parallel).
    state: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every flip-flop at its power-on value
    /// (replicated across all 64 patterns).
    pub fn new(netlist: &'a Netlist) -> Self {
        let state = netlist
            .dffs()
            .iter()
            .map(|&d| match netlist.gate(d) {
                Gate::Dff { init, .. } => {
                    if init {
                        u64::MAX
                    } else {
                        0
                    }
                }
                _ => unreachable!("dffs() returns only flip-flops"),
            })
            .collect();
        Simulator { netlist, state }
    }

    /// Advances one clock cycle: evaluates outputs for the *current* state
    /// and the given inputs, then latches the next state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.netlist.num_inputs());
        let values = eval_nodes(self.netlist, inputs, &self.state);
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect();
        for (slot, &dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            if let Gate::Dff { d, .. } = self.netlist.gate(dff) {
                *slot = values[d.index()];
            }
        }
        outputs
    }

    /// Current flip-flop state (one word per flip-flop, pattern-parallel).
    pub fn state(&self) -> &[u64] {
        &self.state
    }
}

/// Evaluates all node values for one clock phase. `state` supplies flip-flop
/// outputs (empty for combinational netlists).
fn eval_nodes(netlist: &Netlist, inputs: &[u64], state: &[u64]) -> Vec<u64> {
    let mut dff_idx = 0usize;
    let mut values = vec![0u64; netlist.num_nodes()];
    for (i, gate) in netlist.gates().iter().enumerate() {
        values[i] = match *gate {
            Gate::Input(n) => inputs[n as usize],
            Gate::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
            Gate::Not(a) => !values[a.index()],
            Gate::And(a, b) => values[a.index()] & values[b.index()],
            Gate::Or(a, b) => values[a.index()] | values[b.index()],
            Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
            Gate::Nand(a, b) => !(values[a.index()] & values[b.index()]),
            Gate::Nor(a, b) => !(values[a.index()] | values[b.index()]),
            Gate::Xnor(a, b) => !(values[a.index()] ^ values[b.index()]),
            Gate::Mux { sel, lo, hi } => {
                let s = values[sel.index()];
                (s & values[hi.index()]) | (!s & values[lo.index()])
            }
            Gate::Dff { .. } => {
                let v = state[dff_idx];
                dff_idx += 1;
                v
            }
        };
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// Full adder truth table via bit-parallel eval.
    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let s1 = n.xor(a, b);
        let sum = n.xor(s1, c);
        let g1 = n.and(a, b);
        let g2 = n.and(s1, c);
        let cout = n.or(g1, g2);
        n.set_output(sum);
        n.set_output(cout);
        // 8 patterns: a=0b10101010 style enumeration.
        let av = 0b1010_1010u64;
        let bv = 0b1100_1100u64;
        let cv = 0b1111_0000u64;
        let out = eval64(&n, &[av, bv, cv]);
        let expect_sum = av ^ bv ^ cv;
        let expect_cout = (av & bv) | ((av ^ bv) & cv);
        assert_eq!(out[0] & 0xFF, expect_sum & 0xFF);
        assert_eq!(out[1] & 0xFF, expect_cout & 0xFF);
    }

    #[test]
    fn all_gate_types_evaluate() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.input();
        for g in [
            n.and(a, b),
            n.or(a, b),
            n.xor(a, b),
            n.nand(a, b),
            n.nor(a, b),
            n.xnor(a, b),
        ] {
            n.set_output(g);
        }
        let m = n.mux(s, a, b);
        n.set_output(m);
        let nt = n.not(a);
        n.set_output(nt);
        let (av, bv, sv) = (0b1010u64, 0b1100u64, 0b1111_0000u64 >> 4);
        let out = eval64(&n, &[av, bv, sv]);
        let mask = 0xFu64;
        assert_eq!(out[0] & mask, av & bv & mask);
        assert_eq!(out[1] & mask, (av | bv) & mask);
        assert_eq!(out[2] & mask, (av ^ bv) & mask);
        assert_eq!(out[3] & mask, !(av & bv) & mask);
        assert_eq!(out[4] & mask, !(av | bv) & mask);
        assert_eq!(out[5] & mask, !(av ^ bv) & mask);
        assert_eq!(out[6] & mask, ((sv & bv) | (!sv & av)) & mask);
        assert_eq!(out[7] & mask, !av & mask);
    }

    #[test]
    fn equivalence_detects_equal_and_different() {
        // XOR two ways: native gate vs AND/OR decomposition.
        let mut x1 = Netlist::new();
        let a = x1.input();
        let b = x1.input();
        let g = x1.xor(a, b);
        x1.set_output(g);

        let mut x2 = Netlist::new();
        let a2 = x2.input();
        let b2 = x2.input();
        let na = x2.not(a2);
        let nb = x2.not(b2);
        let t1 = x2.and(a2, nb);
        let t2 = x2.and(na, b2);
        let o = x2.or(t1, t2);
        x2.set_output(o);

        assert!(equivalent_exhaustive(&x1, &x2));

        // An OR is not an XOR.
        let mut x3 = Netlist::new();
        let a3 = x3.input();
        let b3 = x3.input();
        let o3 = x3.or(a3, b3);
        x3.set_output(o3);
        assert!(!equivalent_exhaustive(&x1, &x3));
    }

    #[test]
    fn equivalence_handles_more_than_64_patterns() {
        // 8 inputs = 256 patterns = 4 chunks of 64.
        let mut a = Netlist::new();
        let ins = a.inputs_n(8);
        let r = a.xor_reduce(&ins);
        a.set_output(r);

        let mut b = Netlist::new();
        let ins_b = b.inputs_n(8);
        // Reduce in reverse order — same parity function.
        let rev: Vec<_> = ins_b.iter().rev().copied().collect();
        let rb = b.xor_reduce(&rev);
        b.set_output(rb);

        assert!(equivalent_exhaustive(&a, &b));
    }

    #[test]
    fn sequential_counter_counts() {
        // 2-bit counter from toggle logic: q0 toggles, q1 toggles when q0=1.
        let mut n = Netlist::new();
        let q0 = n.dff(false);
        let q1 = n.dff(false);
        let nq0 = n.not(q0);
        let t1 = n.xor(q1, q0);
        n.connect_dff(q0, nq0);
        n.connect_dff(q1, t1);
        n.set_output(q0);
        n.set_output(q1);

        let mut sim = Simulator::new(&n);
        let seq: Vec<(u64, u64)> = (0..5)
            .map(|_| {
                let o = sim.step(&[]);
                (o[0] & 1, o[1] & 1)
            })
            .collect();
        assert_eq!(seq, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 0)]);
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn eval64_rejects_sequential() {
        let mut n = Netlist::new();
        let q = n.dff(false);
        let nq = n.not(q);
        n.connect_dff(q, nq);
        let _ = eval64(&n, &[]);
    }
}
