//! Bounded model checking: time-frame expansion of sequential circuits.
//!
//! Unrolls a netlist with flip-flops into a combinational CNF over clock
//! cycles, with the power-on state asserted at cycle 0. This is the
//! encoding behind the SAT-2002 `bmc2/cnt10` instances the paper solves in
//! Table 10 (reachability of a counter state).
//!
//! Two ways to use it:
//!
//! * **Scratch** — [`unroll`] builds a fixed-depth [`BmcEncoding`] whose
//!   CNF is handed to any solver (the classic one-shot flow).
//! * **Incremental** — [`BmcDriver`] owns *one* growing encoding and *one*
//!   warm [`Solver`]: each deeper frame is appended with
//!   [`BmcEncoding::push_frame`] and fed to the solver as new clauses,
//!   per-depth properties are asserted through fresh *activation literals*
//!   passed as assumptions (then retired with a unit clause), and the
//!   learnt clauses, variable activities and saved polarities of earlier
//!   depths keep working for later ones. On typical reachability sweeps
//!   this answers the same questions in a fraction of the conflicts of
//!   per-depth scratch re-solving.

use berkmin::{SatEngine, SolveStatus, Solver, SolverBuilder, SolverConfig, StopReason};
use berkmin_cnf::{Assignment, Cnf, Lit, Var};

use crate::netlist::{Gate, Netlist};

/// The unrolled encoding: CNF plus per-cycle variable maps. Grows one frame
/// at a time via [`BmcEncoding::push_frame`]; [`unroll`] builds a
/// fixed-depth encoding in one call.
#[derive(Debug, Clone, Default)]
pub struct BmcEncoding {
    /// Clauses of all time frames plus the initial-state units (and, when
    /// the encoding is driven by a [`BmcDriver`], the activation-literal
    /// guard clauses of past queries — all satisfied by their retirement
    /// units, so the CNF stays equisatisfiable with the plain unrolling).
    pub cnf: Cnf,
    /// `input_vars[t][i]` is the CNF variable of input `i` at cycle `t`.
    pub input_vars: Vec<Vec<Var>>,
    /// `output_vars[t][o]` is the CNF variable of output `o` at cycle `t`.
    pub output_vars: Vec<Vec<Var>>,
    /// `state_vars[t][k]` is the CNF variable of flip-flop `k`'s output at
    /// cycle `t` (t ranges over `0..steps`).
    pub state_vars: Vec<Vec<Var>>,
    /// Full node→variable map of the most recent frame, needed to wire the
    /// next frame's flip-flop inputs to this frame's data nodes.
    prev_frame: Vec<Var>,
}

impl BmcEncoding {
    /// An empty encoding (zero frames); grow it with
    /// [`BmcEncoding::push_frame`].
    pub fn new() -> Self {
        BmcEncoding::default()
    }

    /// Number of unrolled cycles.
    pub fn steps(&self) -> usize {
        self.output_vars.len()
    }

    /// Appends one time frame for `netlist` at cycle [`BmcEncoding::steps`].
    ///
    /// Cycle `t`'s flip-flop outputs equal cycle `t-1`'s data inputs; cycle
    /// 0 uses the power-on values (added as unit clauses). The caller must
    /// pass the same netlist on every call.
    pub fn push_frame(&mut self, netlist: &Netlist) {
        let first = self.steps() == 0;
        // d-input node of each flip-flop, fixed across frames.
        let dff_d: Vec<_> = netlist
            .dffs()
            .iter()
            .map(|&q| match netlist.gate(q) {
                Gate::Dff { d, .. } => d,
                _ => unreachable!(),
            })
            .collect();

        let cnf = &mut self.cnf;
        let mut frame: Vec<Var> = Vec::with_capacity(netlist.num_nodes());
        let mut frame_states = Vec::with_capacity(netlist.dffs().len());
        let mut dff_idx = 0usize;
        for gate in netlist.gates() {
            let y = cnf.fresh_var();
            let yp = Lit::pos(y);
            let yn = Lit::neg(y);
            match *gate {
                Gate::Input(_) => {}
                Gate::Const(v) => cnf.add_clause([Lit::new(y, !v)]),
                Gate::Not(a) => {
                    let a = frame[a.index()];
                    cnf.add_clause([yp, Lit::pos(a)]);
                    cnf.add_clause([yn, Lit::neg(a)]);
                }
                Gate::And(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yn, Lit::pos(a)]);
                    cnf.add_clause([yn, Lit::pos(b)]);
                    cnf.add_clause([yp, Lit::neg(a), Lit::neg(b)]);
                }
                Gate::Or(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yp, Lit::neg(a)]);
                    cnf.add_clause([yp, Lit::neg(b)]);
                    cnf.add_clause([yn, Lit::pos(a), Lit::pos(b)]);
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    encode_xor(cnf, yp, yn, a, b);
                }
                Gate::Nand(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yp, Lit::pos(a)]);
                    cnf.add_clause([yp, Lit::pos(b)]);
                    cnf.add_clause([yn, Lit::neg(a), Lit::neg(b)]);
                }
                Gate::Nor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yn, Lit::neg(a)]);
                    cnf.add_clause([yn, Lit::neg(b)]);
                    cnf.add_clause([yp, Lit::pos(a), Lit::pos(b)]);
                }
                Gate::Xnor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    encode_xor(cnf, yn, yp, a, b);
                }
                Gate::Mux { sel, lo, hi } => {
                    let (s, l, h) = (frame[sel.index()], frame[lo.index()], frame[hi.index()]);
                    cnf.add_clause([Lit::neg(s), yn, Lit::pos(h)]);
                    cnf.add_clause([Lit::neg(s), yp, Lit::neg(h)]);
                    cnf.add_clause([Lit::pos(s), yn, Lit::pos(l)]);
                    cnf.add_clause([Lit::pos(s), yp, Lit::neg(l)]);
                }
                Gate::Dff { init, .. } => {
                    if first {
                        // Cycle 0: power-on value.
                        cnf.add_clause([Lit::new(y, !init)]);
                    } else {
                        // q_t ≡ d_{t-1}
                        let d_prev = self.prev_frame[dff_d[dff_idx].index()];
                        cnf.add_clause([yn, Lit::pos(d_prev)]);
                        cnf.add_clause([yp, Lit::neg(d_prev)]);
                    }
                    frame_states.push(y);
                    dff_idx += 1;
                }
            }
            frame.push(y);
        }
        self.input_vars
            .push(netlist.inputs().iter().map(|n| frame[n.index()]).collect());
        self.output_vars
            .push(netlist.outputs().iter().map(|n| frame[n.index()]).collect());
        self.state_vars.push(frame_states);
        self.prev_frame = frame;
    }

    /// Adds a unit clause forcing output `o` at cycle `t` to `value` — the
    /// usual way of asking "is this state reachable within the bound?".
    ///
    /// # Panics
    ///
    /// Panics if `t` or `o` is out of range.
    pub fn constrain_output_at(&mut self, t: usize, o: usize, value: bool) {
        let v = self.output_vars[t][o];
        self.cnf.add_clause([Lit::new(v, !value)]);
    }
}

/// Unrolls `netlist` for `steps` cycles in one shot (the scratch flow).
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn unroll(netlist: &Netlist, steps: usize) -> BmcEncoding {
    assert!(steps > 0, "must unroll at least one step");
    let mut enc = BmcEncoding::new();
    for _ in 0..steps {
        enc.push_frame(netlist);
    }
    enc
}

fn encode_xor(cnf: &mut Cnf, pos: Lit, neg: Lit, a: Var, b: Var) {
    cnf.add_clause([neg, Lit::pos(a), Lit::pos(b)]);
    cnf.add_clause([neg, Lit::neg(a), Lit::neg(b)]);
    cnf.add_clause([pos, Lit::neg(a), Lit::pos(b)]);
    cnf.add_clause([pos, Lit::pos(a), Lit::neg(b)]);
}

/// Result of a [`BmcDriver::first_reaching_depth`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcOutcome {
    /// The output pattern is reachable; `model` witnesses the trace.
    Reached {
        /// First cycle at which the pattern holds.
        depth: usize,
        /// Satisfying assignment over the whole unrolling (read the trace
        /// through the encoding's `input_vars`/`state_vars` maps).
        model: Assignment,
    },
    /// Unreachable at every depth in `0..=max_depth`.
    Exhausted,
    /// The solver's budget ran out while checking `depth`.
    Aborted {
        /// Depth whose query was aborted.
        depth: usize,
        /// Which budget was exhausted.
        reason: StopReason,
    },
}

/// Incremental bounded-model-checking driver: one growing unrolling, one
/// warm engine, per-depth properties asserted via activation literals.
///
/// The driver is generic over any [`SatEngine`] (defaulting to the
/// concrete [`Solver`]): [`BmcDriver::new`] builds a BerkMin engine from a
/// [`SolverConfig`], while [`BmcDriver::with_engine`] accepts a
/// pre-assembled engine — including a `Box<dyn SatEngine>`, so harnesses
/// can pick the configuration at runtime behind one trait object.
///
/// Each query [`BmcDriver::check_outputs_at`] allocates a fresh activation
/// variable `act`, adds guard clauses `¬act ∨ constraint` and solves under
/// the single assumption `act` — so the property constrains the search
/// only while assumed. Afterwards the driver *retires* `act` with a unit
/// clause `¬act`, permanently satisfying the guards (the next database
/// reduction sweeps them); the learnt clauses remain valid consequences of
/// the transition relation and accelerate every later depth.
///
/// # Examples
///
/// ```
/// use berkmin::SolverConfig;
/// use berkmin_circuit::arith::counter;
/// use berkmin_circuit::bmc::{BmcDriver, BmcOutcome};
///
/// // A 3-bit counter first shows all-ones at cycle 7.
/// let mut driver = BmcDriver::new(counter(3), SolverConfig::berkmin());
/// let all_ones = [(0, true), (1, true), (2, true)];
/// match driver.first_reaching_depth(&all_ones, 10) {
///     BmcOutcome::Reached { depth, .. } => assert_eq!(depth, 7),
///     other => panic!("expected Reached, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct BmcDriver<E: SatEngine = Solver> {
    netlist: Netlist,
    enc: BmcEncoding,
    engine: E,
    /// Number of `enc.cnf` clauses already fed to the engine.
    clauses_fed: usize,
    /// Activation literal of the last query, retired (unit `¬act`) at the
    /// start of the next one — deferred so that a SAT answer's model still
    /// satisfies the encoding's CNF as the caller sees it.
    pending_retire: Option<Lit>,
}

impl BmcDriver {
    /// Creates a driver for `netlist` with a fresh BerkMin engine under
    /// `config`. No frame is unrolled yet; queries extend the encoding on
    /// demand.
    pub fn new(netlist: Netlist, config: SolverConfig) -> Self {
        BmcDriver::with_engine(netlist, SolverBuilder::with_config(config).build())
    }
}

impl<E: SatEngine> BmcDriver<E> {
    /// Creates a driver for `netlist` around a pre-assembled engine (e.g.
    /// a `Box<dyn SatEngine>` from
    /// [`SolverBuilder::build_engine`](berkmin::SolverBuilder::build_engine)).
    pub fn with_engine(netlist: Netlist, engine: E) -> Self {
        BmcDriver {
            netlist,
            enc: BmcEncoding::new(),
            engine,
            clauses_fed: 0,
            pending_retire: None,
        }
    }

    /// The growing encoding (read the per-cycle variable maps here).
    pub fn encoding(&self) -> &BmcEncoding {
        &self.enc
    }

    /// The underlying warm engine (stats, failed cores, …).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The netlist being checked.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Extends the unrolling to at least `steps` cycles and feeds every new
    /// clause to the engine. Learnt clauses from earlier depths are kept:
    /// they are consequences of the (monotonically growing) formula.
    pub fn extend_to(&mut self, steps: usize) {
        while self.enc.steps() < steps {
            self.enc.push_frame(&self.netlist);
        }
        self.sync();
    }

    /// Feeds the encoding's clauses the engine has not seen yet, keeping
    /// the variable spaces aligned even for constraint-free variables
    /// (primary inputs).
    fn sync(&mut self) {
        self.engine.reserve_vars(self.enc.cnf.num_vars());
        for clause in &self.enc.cnf.clauses()[self.clauses_fed..] {
            self.engine.add_clause(clause.lits());
        }
        self.clauses_fed = self.enc.cnf.num_clauses();
    }

    /// Asks whether the outputs can match `pattern` (pairs of output index
    /// and demanded value) at cycle `t`, extending the unrolling as needed.
    ///
    /// The query is posed through a fresh activation literal and a single
    /// assumption, so an UNSAT answer leaves the formula unconstrained for
    /// later (deeper or different) queries.
    pub fn check_outputs_at(&mut self, t: usize, pattern: &[(usize, bool)]) -> SolveStatus {
        self.extend_to(t + 1);
        // Retire the previous query's activation literal: its guards become
        // permanently satisfied and the next reduction removes them from
        // the database. Deferred to here (not done right after its solve)
        // so a SAT answer's model satisfies the encoding the caller sees.
        if let Some(prev) = self.pending_retire.take() {
            self.enc.cnf.add_clause([!prev]);
        }
        let act = Lit::pos(self.enc.cnf.fresh_var());
        for &(o, value) in pattern {
            let out = Lit::new(self.enc.output_vars[t][o], !value);
            self.enc.cnf.add_clause([!act, out]);
        }
        self.sync();
        self.engine.assume(act);
        let status = self.engine.solve();
        self.pending_retire = Some(act);
        status
    }

    /// Sweeps depths `0..=max_depth` for the first cycle at which the
    /// outputs can match `pattern`, reusing the growing encoding and the
    /// warm solver across the per-depth queries.
    pub fn first_reaching_depth(
        &mut self,
        pattern: &[(usize, bool)],
        max_depth: usize,
    ) -> BmcOutcome {
        for t in 0..=max_depth {
            match self.check_outputs_at(t, pattern) {
                SolveStatus::Sat(model) => return BmcOutcome::Reached { depth: t, model },
                SolveStatus::Unsat => {}
                SolveStatus::Unknown(reason) => return BmcOutcome::Aborted { depth: t, reason },
            }
        }
        BmcOutcome::Exhausted
    }
}

/// The per-depth **scratch baseline** the incremental [`BmcDriver`]
/// replaces: a fresh unrolling and a fresh solver for every depth, nothing
/// reused. Returns the sweep outcome plus the total conflicts spent across
/// all depths; `on_depth` is invoked after each per-depth solve (depth,
/// status, cumulative conflicts) — pass `|_, _, _| {}` when progress is not
/// needed. Kept next to the driver so the CLI, tests and benches all
/// measure clause reuse against the same baseline.
pub fn scratch_first_reaching_depth(
    netlist: &Netlist,
    pattern: &[(usize, bool)],
    max_depth: usize,
    config: &SolverConfig,
    mut on_depth: impl FnMut(usize, &SolveStatus, u64),
) -> (BmcOutcome, u64) {
    let mut total_conflicts = 0;
    for t in 0..=max_depth {
        let mut enc = unroll(netlist, t + 1);
        for &(o, v) in pattern {
            enc.constrain_output_at(t, o, v);
        }
        let mut solver = Solver::new(&enc.cnf, config.clone());
        let status = solver.solve();
        total_conflicts += solver.stats().conflicts;
        on_depth(t, &status, total_conflicts);
        match status {
            SolveStatus::Sat(model) => {
                return (BmcOutcome::Reached { depth: t, model }, total_conflicts)
            }
            SolveStatus::Unsat => {}
            SolveStatus::Unknown(reason) => {
                return (BmcOutcome::Aborted { depth: t, reason }, total_conflicts)
            }
        }
    }
    (BmcOutcome::Exhausted, total_conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{counter, enabled_counter};
    use crate::netlist::Netlist;
    use berkmin::ActivityIndex;

    /// "Counter reaches its maximum" is SAT exactly when the bound covers
    /// 2^bits − 1 increments — the cnt10 recipe at toy scale. (The unrolled
    /// CNF has too many Tseitin variables for the enumeration oracle, so
    /// the real solver answers here.)
    #[test]
    fn counter_reachability_matches_arithmetic() {
        let bits = 3;
        let n = counter(bits);
        // Output value at cycle t is t (mod 8). Ask: all bits set at cycle t?
        for (t, expect_sat) in [(7usize, true), (6, false), (8, false)] {
            let mut enc = unroll(&n, t + 1);
            for o in 0..bits {
                enc.constrain_output_at(t, o, true);
            }
            let mut solver = berkmin::Solver::new(&enc.cnf, berkmin::SolverConfig::berkmin());
            assert_eq!(solver.solve().is_sat(), expect_sat, "cycle {t}");
        }
    }

    #[test]
    fn toggle_ff_alternates_in_unrolling() {
        let mut n = Netlist::new();
        let q = n.dff(false);
        let nq = n.not(q);
        n.connect_dff(q, nq);
        n.set_output(q);
        // q is 0 at even cycles, 1 at odd cycles.
        for (t, val, expect_sat) in [
            (0usize, true, false),
            (1, true, true),
            (2, true, false),
            (3, false, false),
        ] {
            let mut enc = unroll(&n, t + 1);
            enc.constrain_output_at(t, 0, val);
            assert_eq!(
                enc.cnf.solve_by_enumeration().is_some(),
                expect_sat,
                "t={t} val={val}"
            );
        }
    }

    #[test]
    fn inputs_are_free_per_cycle() {
        // A DFF sampling an input: output at cycle t+1 equals input at t.
        let mut n = Netlist::new();
        let i = n.input();
        let q = n.dff(false);
        n.connect_dff(q, i);
        n.set_output(q);
        let mut enc = unroll(&n, 3);
        // Force output(2) = 1: requires input(1) = 1, freely choosable ⇒ SAT.
        enc.constrain_output_at(2, 0, true);
        let model = enc.cnf.solve_by_enumeration().expect("reachable");
        assert!(model.satisfies(Lit::pos(enc.input_vars[1][0])));
    }

    #[test]
    fn unrolled_size_scales_linearly() {
        let n = counter(4);
        let e1 = unroll(&n, 2);
        let e2 = unroll(&n, 4);
        assert!(e2.cnf.num_clauses() > e1.cnf.num_clauses());
        assert_eq!(e2.steps(), 4);
        assert_eq!(e2.state_vars[0].len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let n = counter(2);
        let _ = unroll(&n, 0);
    }

    #[test]
    fn incremental_unrolling_matches_scratch_unrolling() {
        // Frame-by-frame growth must produce exactly the scratch encoding:
        // same clause count, same variable maps.
        let n = counter(3);
        let scratch = unroll(&n, 5);
        let mut grown = BmcEncoding::new();
        for _ in 0..5 {
            grown.push_frame(&n);
        }
        assert_eq!(grown.cnf.num_clauses(), scratch.cnf.num_clauses());
        assert_eq!(grown.cnf.num_vars(), scratch.cnf.num_vars());
        assert_eq!(grown.output_vars, scratch.output_vars);
        assert_eq!(grown.state_vars, scratch.state_vars);
        assert_eq!(grown.input_vars, scratch.input_vars);
    }

    /// The shared scratch baseline, reduced to (first SAT depth, conflicts).
    fn scratch_sweep(
        netlist: &Netlist,
        pattern: &[(usize, bool)],
        max_depth: usize,
    ) -> (Option<usize>, u64) {
        let cfg = berkmin::SolverConfig::berkmin();
        let (outcome, conflicts) =
            scratch_first_reaching_depth(netlist, pattern, max_depth, &cfg, |_, _, _| {});
        match outcome {
            BmcOutcome::Reached { depth, .. } => (Some(depth), conflicts),
            BmcOutcome::Exhausted => (None, conflicts),
            BmcOutcome::Aborted { reason, .. } => panic!("aborted without budget: {reason}"),
        }
    }

    #[test]
    fn incremental_driver_matches_scratch_failure_depth() {
        // The enabled 3-bit counter reaches all-ones first at depth 7 (every
        // enable high); the incremental driver and the scratch loop agree.
        let bits = 3;
        let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
        let (scratch_depth, _) = scratch_sweep(&enabled_counter(bits), &pattern, 10);
        assert_eq!(scratch_depth, Some(7));

        let mut driver = BmcDriver::new(enabled_counter(bits), berkmin::SolverConfig::berkmin());
        match driver.first_reaching_depth(&pattern, 10) {
            BmcOutcome::Reached { depth, model } => {
                assert_eq!(Some(depth), scratch_depth);
                // The witness satisfies the whole unrolled formula…
                assert!(driver.encoding().cnf.is_satisfied_by(&model));
                // …shows the all-ones output pattern at that depth…
                for &(o, v) in &pattern {
                    let out = driver.encoding().output_vars[depth][o];
                    assert!(model.satisfies(Lit::new(out, !v)));
                }
                // …and its trace drives enable high on every cycle.
                for t in 0..depth {
                    let en = driver.encoding().input_vars[t][0];
                    assert!(model.satisfies(Lit::pos(en)), "enable low at cycle {t}");
                }
            }
            other => panic!("expected Reached, got {other:?}"),
        }
    }

    #[test]
    fn driver_keeps_learnt_clauses_and_heap_state_across_depths() {
        let bits = 3;
        let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
        let mut cfg = berkmin::SolverConfig::berkmin();
        cfg.activity_index = ActivityIndex::Heap;
        let mut driver = BmcDriver::new(enabled_counter(bits), cfg);

        // Probe the UNSAT depths one by one, watching the warm state.
        for t in 0..7 {
            assert!(driver.check_outputs_at(t, &pattern).is_unsat(), "depth {t}");
            assert_eq!(
                driver.engine().failed_assumptions().len(),
                1,
                "per-depth UNSAT must core on the activation literal"
            );
        }
        assert!(
            driver.engine().stats().learnt_total > 0,
            "enabled-counter BMC must force learning"
        );
        assert!(
            driver.engine().num_learnt_clauses() > 0,
            "learnt clauses wiped between depths"
        );
        assert!(
            driver.engine().decision_heap_len() > 0,
            "decision heap emptied between calls"
        );
        assert_eq!(driver.engine().stats().solve_calls, 7);
        // Depth 7 is then reachable on the same warm solver.
        assert!(driver.check_outputs_at(7, &pattern).is_sat());
    }

    #[test]
    fn incremental_driver_spends_fewer_conflicts_than_scratch() {
        // The acceptance criterion behind the bench: on the counter sweep
        // the clause-reusing driver needs fewer total conflicts than
        // re-solving every depth from scratch.
        let bits = 3;
        let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
        let (scratch_depth, scratch_conflicts) =
            scratch_sweep(&enabled_counter(bits), &pattern, 10);
        assert_eq!(scratch_depth, Some(7));

        let mut driver = BmcDriver::new(enabled_counter(bits), berkmin::SolverConfig::berkmin());
        match driver.first_reaching_depth(&pattern, 10) {
            BmcOutcome::Reached { depth, .. } => assert_eq!(depth, 7),
            other => panic!("expected Reached, got {other:?}"),
        }
        let incremental_conflicts = driver.engine().stats().conflicts;
        assert!(
            incremental_conflicts < scratch_conflicts,
            "incremental ({incremental_conflicts} conflicts) not cheaper \
             than scratch ({scratch_conflicts})"
        );
    }

    #[test]
    fn driver_budget_abort_surfaces_as_aborted() {
        let bits = 3;
        let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
        let cfg = berkmin::SolverConfig::berkmin().with_budget(berkmin::Budget::conflicts(1));
        let mut driver = BmcDriver::new(enabled_counter(bits), cfg);
        match driver.first_reaching_depth(&pattern, 10) {
            BmcOutcome::Aborted { reason, .. } => {
                assert_eq!(reason, StopReason::ConflictBudget);
            }
            // Depth ≥ 1 queries need search; a 1-conflict-per-call budget
            // cannot carry the sweep to depth 7.
            BmcOutcome::Reached { .. } => panic!("1-conflict budget cannot reach depth 7"),
            BmcOutcome::Exhausted => panic!("sweep must abort before exhausting"),
        }
    }
}
