//! Bounded model checking: time-frame expansion of sequential circuits.
//!
//! Unrolls a netlist with flip-flops into a combinational CNF over `steps`
//! clock cycles, with the power-on state asserted at cycle 0. This is the
//! encoding behind the SAT-2002 `bmc2/cnt10` instances the paper solves in
//! Table 10 (reachability of a counter state).

use berkmin_cnf::{Cnf, Lit, Var};

use crate::netlist::{Gate, Netlist};

/// The unrolled encoding: CNF plus per-cycle variable maps.
#[derive(Debug, Clone)]
pub struct BmcEncoding {
    /// Clauses of all time frames plus the initial-state units.
    pub cnf: Cnf,
    /// `input_vars[t][i]` is the CNF variable of input `i` at cycle `t`.
    pub input_vars: Vec<Vec<Var>>,
    /// `output_vars[t][o]` is the CNF variable of output `o` at cycle `t`.
    pub output_vars: Vec<Vec<Var>>,
    /// `state_vars[t][k]` is the CNF variable of flip-flop `k`'s output at
    /// cycle `t` (t ranges over `0..steps`).
    pub state_vars: Vec<Vec<Var>>,
}

impl BmcEncoding {
    /// Number of unrolled cycles.
    pub fn steps(&self) -> usize {
        self.output_vars.len()
    }

    /// Adds a unit clause forcing output `o` at cycle `t` to `value` — the
    /// usual way of asking "is this state reachable within the bound?".
    ///
    /// # Panics
    ///
    /// Panics if `t` or `o` is out of range.
    pub fn constrain_output_at(&mut self, t: usize, o: usize, value: bool) {
        let v = self.output_vars[t][o];
        self.cnf.add_clause([Lit::new(v, !value)]);
    }
}

/// Unrolls `netlist` for `steps` cycles.
///
/// Cycle `t`'s flip-flop outputs equal cycle `t-1`'s data inputs; cycle 0
/// uses the power-on values (added as unit clauses).
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn unroll(netlist: &Netlist, steps: usize) -> BmcEncoding {
    assert!(steps > 0, "must unroll at least one step");
    let mut cnf = Cnf::new();
    let mut input_vars = Vec::with_capacity(steps);
    let mut output_vars = Vec::with_capacity(steps);
    let mut state_vars = Vec::with_capacity(steps);

    // d-input node of each flip-flop, fixed across frames.
    let dff_d: Vec<_> = netlist
        .dffs()
        .iter()
        .map(|&q| match netlist.gate(q) {
            Gate::Dff { d, .. } => d,
            _ => unreachable!(),
        })
        .collect();

    let mut prev_frame: Option<Vec<Var>> = None;
    for _t in 0..steps {
        // Encode one time frame: every node gets a fresh variable.
        let mut frame: Vec<Var> = Vec::with_capacity(netlist.num_nodes());
        let mut frame_states = Vec::with_capacity(netlist.dffs().len());
        let mut dff_idx = 0usize;
        for gate in netlist.gates() {
            let y = cnf.fresh_var();
            let yp = Lit::pos(y);
            let yn = Lit::neg(y);
            match *gate {
                Gate::Input(_) => {}
                Gate::Const(v) => cnf.add_clause([Lit::new(y, !v)]),
                Gate::Not(a) => {
                    let a = frame[a.index()];
                    cnf.add_clause([yp, Lit::pos(a)]);
                    cnf.add_clause([yn, Lit::neg(a)]);
                }
                Gate::And(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yn, Lit::pos(a)]);
                    cnf.add_clause([yn, Lit::pos(b)]);
                    cnf.add_clause([yp, Lit::neg(a), Lit::neg(b)]);
                }
                Gate::Or(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yp, Lit::neg(a)]);
                    cnf.add_clause([yp, Lit::neg(b)]);
                    cnf.add_clause([yn, Lit::pos(a), Lit::pos(b)]);
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    encode_xor(&mut cnf, yp, yn, a, b);
                }
                Gate::Nand(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yp, Lit::pos(a)]);
                    cnf.add_clause([yp, Lit::pos(b)]);
                    cnf.add_clause([yn, Lit::neg(a), Lit::neg(b)]);
                }
                Gate::Nor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    cnf.add_clause([yn, Lit::neg(a)]);
                    cnf.add_clause([yn, Lit::neg(b)]);
                    cnf.add_clause([yp, Lit::pos(a), Lit::pos(b)]);
                }
                Gate::Xnor(a, b) => {
                    let (a, b) = (frame[a.index()], frame[b.index()]);
                    encode_xor(&mut cnf, yn, yp, a, b);
                }
                Gate::Mux { sel, lo, hi } => {
                    let (s, l, h) = (frame[sel.index()], frame[lo.index()], frame[hi.index()]);
                    cnf.add_clause([Lit::neg(s), yn, Lit::pos(h)]);
                    cnf.add_clause([Lit::neg(s), yp, Lit::neg(h)]);
                    cnf.add_clause([Lit::pos(s), yn, Lit::pos(l)]);
                    cnf.add_clause([Lit::pos(s), yp, Lit::neg(l)]);
                }
                Gate::Dff { init, .. } => {
                    match &prev_frame {
                        None => {
                            // Cycle 0: power-on value.
                            cnf.add_clause([Lit::new(y, !init)]);
                        }
                        Some(prev) => {
                            // q_t ≡ d_{t-1}
                            let d_prev = prev[dff_d[dff_idx].index()];
                            cnf.add_clause([yn, Lit::pos(d_prev)]);
                            cnf.add_clause([yp, Lit::neg(d_prev)]);
                        }
                    }
                    frame_states.push(y);
                    dff_idx += 1;
                }
            }
            frame.push(y);
        }
        input_vars.push(netlist.inputs().iter().map(|n| frame[n.index()]).collect());
        output_vars.push(netlist.outputs().iter().map(|n| frame[n.index()]).collect());
        state_vars.push(frame_states);
        prev_frame = Some(frame);
    }

    BmcEncoding {
        cnf,
        input_vars,
        output_vars,
        state_vars,
    }
}

fn encode_xor(cnf: &mut Cnf, pos: Lit, neg: Lit, a: Var, b: Var) {
    cnf.add_clause([neg, Lit::pos(a), Lit::pos(b)]);
    cnf.add_clause([neg, Lit::neg(a), Lit::neg(b)]);
    cnf.add_clause([pos, Lit::neg(a), Lit::pos(b)]);
    cnf.add_clause([pos, Lit::pos(a), Lit::neg(b)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::counter;
    use crate::netlist::Netlist;

    /// "Counter reaches its maximum" is SAT exactly when the bound covers
    /// 2^bits − 1 increments — the cnt10 recipe at toy scale. (The unrolled
    /// CNF has too many Tseitin variables for the enumeration oracle, so
    /// the real solver answers here.)
    #[test]
    fn counter_reachability_matches_arithmetic() {
        let bits = 3;
        let n = counter(bits);
        // Output value at cycle t is t (mod 8). Ask: all bits set at cycle t?
        for (t, expect_sat) in [(7usize, true), (6, false), (8, false)] {
            let mut enc = unroll(&n, t + 1);
            for o in 0..bits {
                enc.constrain_output_at(t, o, true);
            }
            let mut solver = berkmin::Solver::new(&enc.cnf, berkmin::SolverConfig::berkmin());
            assert_eq!(solver.solve().is_sat(), expect_sat, "cycle {t}");
        }
    }

    #[test]
    fn toggle_ff_alternates_in_unrolling() {
        let mut n = Netlist::new();
        let q = n.dff(false);
        let nq = n.not(q);
        n.connect_dff(q, nq);
        n.set_output(q);
        // q is 0 at even cycles, 1 at odd cycles.
        for (t, val, expect_sat) in [
            (0usize, true, false),
            (1, true, true),
            (2, true, false),
            (3, false, false),
        ] {
            let mut enc = unroll(&n, t + 1);
            enc.constrain_output_at(t, 0, val);
            assert_eq!(
                enc.cnf.solve_by_enumeration().is_some(),
                expect_sat,
                "t={t} val={val}"
            );
        }
    }

    #[test]
    fn inputs_are_free_per_cycle() {
        // A DFF sampling an input: output at cycle t+1 equals input at t.
        let mut n = Netlist::new();
        let i = n.input();
        let q = n.dff(false);
        n.connect_dff(q, i);
        n.set_output(q);
        let mut enc = unroll(&n, 3);
        // Force output(2) = 1: requires input(1) = 1, freely choosable ⇒ SAT.
        enc.constrain_output_at(2, 0, true);
        let model = enc.cnf.solve_by_enumeration().expect("reachable");
        assert!(model.satisfies(Lit::pos(enc.input_vars[1][0])));
    }

    #[test]
    fn unrolled_size_scales_linearly() {
        let n = counter(4);
        let e1 = unroll(&n, 2);
        let e2 = unroll(&n, 4);
        assert!(e2.cnf.num_clauses() > e1.cnf.num_clauses());
        assert_eq!(e2.steps(), 4);
        assert_eq!(e2.state_vars[0].len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let n = counter(2);
        let _ = unroll(&n, 0);
    }
}
