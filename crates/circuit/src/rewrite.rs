//! Equivalence-preserving restructuring and fault injection.
//!
//! The paper's *Miters* class compares artificial circuits against
//! structurally different but functionally identical copies (§4: "artificial
//! circuits were used because their complexity was easy to control").
//! [`restructure`] produces such a copy by applying random local rewrites
//! (De Morgan, double negation, XOR decomposition, operand swaps);
//! [`inject_fault`] flips one gate to create an almost-equivalent circuit,
//! yielding satisfiable miters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::netlist::{Gate, Netlist, NodeId};

/// Rewrites `netlist` into a functionally equivalent netlist with a
/// different gate-level structure, driven by `seed`. Rewrites applied per
/// gate (chosen at random):
///
/// * `a ∧ b` → `¬(¬a ∨ ¬b)` and dually for OR (De Morgan);
/// * `a ⊕ b` → `(a ∧ ¬b) ∨ (¬a ∧ b)` and the XNOR dual;
/// * `¬¬a` insertion on a random operand;
/// * operand order swap (for commutative gates).
///
/// # Panics
///
/// Panics if the netlist is sequential.
pub fn restructure(netlist: &Netlist, seed: u64) -> Netlist {
    assert!(
        netlist.is_combinational(),
        "restructure handles combinational netlists"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Netlist::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(netlist.num_nodes());
    for gate in netlist.gates() {
        let new_id = match *gate {
            Gate::Input(_) => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => {
                let a = map[a.index()];
                if rng.gen_bool(0.25) {
                    // Triple negation.
                    let n1 = out.not(a);
                    let n2 = out.not(n1);
                    out.not(n2)
                } else {
                    out.not(a)
                }
            }
            Gate::And(a, b) => rewrite_and(&mut out, &mut rng, map[a.index()], map[b.index()]),
            Gate::Or(a, b) => rewrite_or(&mut out, &mut rng, map[a.index()], map[b.index()]),
            Gate::Xor(a, b) => rewrite_xor(&mut out, &mut rng, map[a.index()], map[b.index()]),
            Gate::Nand(a, b) => {
                let g = rewrite_and(&mut out, &mut rng, map[a.index()], map[b.index()]);
                out.not(g)
            }
            Gate::Nor(a, b) => {
                let g = rewrite_or(&mut out, &mut rng, map[a.index()], map[b.index()]);
                out.not(g)
            }
            Gate::Xnor(a, b) => {
                let g = rewrite_xor(&mut out, &mut rng, map[a.index()], map[b.index()]);
                out.not(g)
            }
            Gate::Mux { sel, lo, hi } => {
                let (s, l, h) = (map[sel.index()], map[lo.index()], map[hi.index()]);
                if rng.gen_bool(0.5) {
                    // mux(s, lo, hi) = (¬s ∧ lo) ∨ (s ∧ hi)
                    let ns = out.not(s);
                    let t1 = out.and(ns, l);
                    let t2 = out.and(s, h);
                    out.or(t1, t2)
                } else {
                    out.mux(s, l, h)
                }
            }
            Gate::Dff { .. } => unreachable!("checked combinational above"),
        };
        map.push(new_id);
    }
    for o in netlist.outputs() {
        out.set_output(map[o.index()]);
    }
    out
}

fn maybe_swap(rng: &mut StdRng, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if rng.gen_bool(0.5) {
        (b, a)
    } else {
        (a, b)
    }
}

fn rewrite_and(out: &mut Netlist, rng: &mut StdRng, a: NodeId, b: NodeId) -> NodeId {
    let (a, b) = maybe_swap(rng, a, b);
    match rng.gen_range(0..3u8) {
        0 => out.and(a, b),
        1 => {
            // De Morgan: ¬(¬a ∨ ¬b)
            let na = out.not(a);
            let nb = out.not(b);
            out.nor(na, nb)
        }
        _ => {
            // NAND + NOT
            let g = out.nand(a, b);
            out.not(g)
        }
    }
}

fn rewrite_or(out: &mut Netlist, rng: &mut StdRng, a: NodeId, b: NodeId) -> NodeId {
    let (a, b) = maybe_swap(rng, a, b);
    match rng.gen_range(0..3u8) {
        0 => out.or(a, b),
        1 => {
            // De Morgan: ¬(¬a ∧ ¬b)
            let na = out.not(a);
            let nb = out.not(b);
            out.nand(na, nb)
        }
        _ => {
            let g = out.nor(a, b);
            out.not(g)
        }
    }
}

fn rewrite_xor(out: &mut Netlist, rng: &mut StdRng, a: NodeId, b: NodeId) -> NodeId {
    let (a, b) = maybe_swap(rng, a, b);
    match rng.gen_range(0..3u8) {
        0 => out.xor(a, b),
        1 => {
            // (a ∧ ¬b) ∨ (¬a ∧ b)
            let na = out.not(a);
            let nb = out.not(b);
            let t1 = out.and(a, nb);
            let t2 = out.and(na, b);
            out.or(t1, t2)
        }
        _ => {
            // ¬(a ≡ b)
            let g = out.xnor(a, b);
            out.not(g)
        }
    }
}

/// Returns a copy of `netlist` with exactly one randomly chosen 2-input
/// gate replaced by a different gate type (e.g. AND → OR), plus the index
/// of the mutated node. The result is *almost* equivalent to the input —
/// ideal for generating satisfiable miters whose distinguishing patterns
/// are rare.
///
/// Returns `None` if the netlist contains no mutable gate.
pub fn inject_fault(netlist: &Netlist, seed: u64) -> Option<(Netlist, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<usize> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            matches!(
                g,
                Gate::And(..)
                    | Gate::Or(..)
                    | Gate::Xor(..)
                    | Gate::Nand(..)
                    | Gate::Nor(..)
                    | Gate::Xnor(..)
            )
        })
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let target = candidates[rng.gen_range(0..candidates.len())];
    let mut out = Netlist::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(netlist.num_nodes());
    let mut mutated = None;
    for (i, gate) in netlist.gates().iter().enumerate() {
        let new_id = if i == target {
            let id = match *gate {
                // Swap gate function for a near miss.
                Gate::And(a, b) => out.or(map[a.index()], map[b.index()]),
                Gate::Or(a, b) => out.and(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => out.or(map[a.index()], map[b.index()]),
                Gate::Nand(a, b) => out.nor(map[a.index()], map[b.index()]),
                Gate::Nor(a, b) => out.nand(map[a.index()], map[b.index()]),
                Gate::Xnor(a, b) => out.xnor(map[b.index()], map[a.index()]), // swap + same = keep trying below
                _ => unreachable!("candidates are 2-input gates"),
            };
            mutated = Some(id);
            id
        } else {
            match *gate {
                Gate::Input(_) => out.input(),
                Gate::Const(v) => out.constant(v),
                Gate::Not(a) => out.not(map[a.index()]),
                Gate::And(a, b) => out.and(map[a.index()], map[b.index()]),
                Gate::Or(a, b) => out.or(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => out.xor(map[a.index()], map[b.index()]),
                Gate::Nand(a, b) => out.nand(map[a.index()], map[b.index()]),
                Gate::Nor(a, b) => out.nor(map[a.index()], map[b.index()]),
                Gate::Xnor(a, b) => out.xnor(map[a.index()], map[b.index()]),
                Gate::Mux { sel, lo, hi } => {
                    out.mux(map[sel.index()], map[lo.index()], map[hi.index()])
                }
                Gate::Dff { init, .. } => out.dff(init),
            }
        };
        map.push(new_id);
    }
    // Re-wire any flip-flops (faults are applied to sequential circuits too).
    for (i, gate) in netlist.gates().iter().enumerate() {
        if let Gate::Dff { d, .. } = gate {
            out.connect_dff(map[i], map[d.index()]);
        }
    }
    for o in netlist.outputs() {
        out.set_output(map[o.index()]);
    }
    mutated.map(|m| (out, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{parity_tree, ripple_carry_adder};
    use crate::sim::equivalent_exhaustive;

    #[test]
    fn restructure_preserves_function() {
        let adder = ripple_carry_adder(3); // 7 inputs: exhaustive is cheap
        for seed in 0..8 {
            let rewritten = restructure(&adder, seed);
            assert!(
                equivalent_exhaustive(&adder, &rewritten),
                "seed {seed} broke equivalence"
            );
        }
    }

    #[test]
    fn restructure_changes_structure() {
        let parity = parity_tree(6);
        let rewritten = restructure(&parity, 42);
        // With XOR decomposition, the node count almost surely grows.
        assert_ne!(parity.gates(), rewritten.gates());
    }

    #[test]
    fn restructure_is_deterministic_in_seed() {
        let adder = ripple_carry_adder(2);
        assert_eq!(restructure(&adder, 7), restructure(&adder, 7));
        assert_ne!(restructure(&adder, 7), restructure(&adder, 8));
    }

    #[test]
    fn injected_fault_changes_function() {
        let adder = ripple_carry_adder(2);
        let mut changed = 0;
        for seed in 0..10 {
            let (buggy, _node) = inject_fault(&adder, seed).expect("adder has gates");
            if !equivalent_exhaustive(&adder, &buggy) {
                changed += 1;
            }
        }
        // Most single-gate swaps in an adder are observable at the outputs.
        assert!(changed >= 7, "only {changed}/10 faults were observable");
    }

    #[test]
    fn inject_fault_none_for_gateless_netlist() {
        let mut n = Netlist::new();
        let a = n.input();
        n.set_output(a);
        assert!(inject_fault(&n, 0).is_none());
    }
}
