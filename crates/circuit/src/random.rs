//! Seeded random combinational circuits — the "artificial combinational
//! circuits" whose miters form the paper's Miters class (§4: complexity is
//! easy to control via size and depth parameters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::netlist::{Netlist, NodeId};

/// Parameters for [`random_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of internal 2-input gates.
    pub gates: usize,
    /// Number of primary outputs (chosen among the last gates).
    pub outputs: usize,
    /// Locality window: gate operands are drawn from the most recent
    /// `window` nodes, controlling circuit depth (small window ⇒ deep,
    /// chain-like circuit; large window ⇒ shallow DAG).
    pub window: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl RandomCircuitSpec {
    /// A reasonable default shape: `gates` gates over 16 inputs.
    pub fn with_gates(gates: usize, seed: u64) -> Self {
        RandomCircuitSpec {
            inputs: 16,
            gates,
            outputs: 8.min(gates.max(1)),
            window: 24,
            seed,
        }
    }
}

/// Generates a random combinational DAG circuit.
///
/// Every gate draws its operands from the preceding `window` nodes, with
/// gate types sampled uniformly from {AND, OR, XOR, NAND, NOR, XNOR, NOT,
/// MUX}. Outputs are the last `outputs` gates, guaranteeing deep cones.
///
/// # Panics
///
/// Panics if `inputs == 0`, `gates == 0`, or `outputs > gates`.
pub fn random_circuit(spec: &RandomCircuitSpec) -> Netlist {
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.gates > 0, "need at least one gate");
    assert!(spec.outputs <= spec.gates, "more outputs than gates");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut n = Netlist::new();
    let _ = n.inputs_n(spec.inputs);
    for _ in 0..spec.gates {
        let hi = n.num_nodes();
        let lo = hi.saturating_sub(spec.window);
        let pick = |rng: &mut StdRng| NodeId((rng.gen_range(lo..hi)) as u32);
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        match rng.gen_range(0..8u8) {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.nand(a, b),
            4 => n.nor(a, b),
            5 => n.xnor(a, b),
            6 => n.not(a),
            _ => {
                let s = pick(&mut rng);
                n.mux(s, a, b)
            }
        };
    }
    let total = n.num_nodes();
    for k in 0..spec.outputs {
        n.set_output(NodeId((total - 1 - k) as u32));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::restructure;
    use crate::sim::{equivalent_exhaustive, eval64};

    #[test]
    fn respects_spec_shape() {
        let spec = RandomCircuitSpec {
            inputs: 5,
            gates: 40,
            outputs: 3,
            window: 8,
            seed: 1,
        };
        let n = random_circuit(&spec);
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.outputs().len(), 3);
        assert!(n.num_nodes() >= 45);
        assert!(n.is_combinational());
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = RandomCircuitSpec::with_gates(30, 9);
        assert_eq!(random_circuit(&spec), random_circuit(&spec));
        let other = RandomCircuitSpec::with_gates(30, 10);
        assert_ne!(random_circuit(&spec), random_circuit(&other));
    }

    #[test]
    fn evaluates_without_panicking() {
        let spec = RandomCircuitSpec {
            inputs: 6,
            gates: 64,
            outputs: 4,
            window: 10,
            seed: 3,
        };
        let n = random_circuit(&spec);
        let words = vec![0b1010u64; 6];
        let out = eval64(&n, &words);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn restructured_random_circuit_stays_equivalent() {
        // The Miters-class recipe end to end (small enough to verify
        // exhaustively).
        let spec = RandomCircuitSpec {
            inputs: 6,
            gates: 48,
            outputs: 4,
            window: 12,
            seed: 11,
        };
        let c = random_circuit(&spec);
        let c2 = restructure(&c, 99);
        assert!(equivalent_exhaustive(&c, &c2));
    }
}
