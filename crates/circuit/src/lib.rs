//! # berkmin-circuit — gate-level circuit substrate
//!
//! The BerkMin paper evaluates on CNFs derived from circuit verification:
//! equivalence-checking miters of artificial circuits (the *Miters* class),
//! Velev's microprocessor-correctness suites (*Sss*, *Fvp*, *Vliw*), adder
//! synthesis problems (*Beijing*) and bounded model checking (SAT-2002
//! `cnt10`). This crate rebuilds that substrate from scratch:
//!
//! * [`Netlist`] — gate-level netlists with a builder API, combinational
//!   gates, muxes and D flip-flops;
//! * [`sim`] — 64-way bit-parallel simulation and exhaustive equivalence
//!   checking for tests;
//! * [`tseitin`] — linear-size CNF encoding of combinational netlists;
//! * [`miter`] — miter construction: two circuits → one "are they
//!   different?" output;
//! * [`arith`] — adders (ripple / carry-select), an array multiplier, a
//!   comparator, an ALU, counters and parity trees;
//! * [`rewrite`] — equivalence-preserving restructuring (De Morgan, XOR
//!   decomposition, …) and single-gate fault injection;
//! * [`random`] — seeded random DAG circuits with controllable depth;
//! * [`bmc`] — time-frame expansion of sequential circuits;
//! * [`gated`] — the gated-cone circuit of the paper's Fig. 1.
//!
//! # Example: equivalence checking end to end
//!
//! ```
//! use berkmin_circuit::{arith, miter_cnf, rewrite};
//!
//! let adder = arith::ripple_carry_adder(4);
//! let restructured = rewrite::restructure(&adder, 42);
//! let cnf = miter_cnf(&adder, &restructured);
//! // `cnf` is satisfiable iff the circuits differ — hand it to the solver.
//! assert!(cnf.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod bmc;
pub mod gated;
mod miter;
mod netlist;
pub mod random;
pub mod rewrite;
pub mod sim;
pub mod tseitin;

pub use miter::{miter, miter_cnf, miter_encoding};
pub use netlist::{Gate, Netlist, NodeId};
pub use sim::{equivalent_exhaustive, eval64, Simulator};
pub use tseitin::{encode, TseitinEncoding};
