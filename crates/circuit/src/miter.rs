//! Miter construction for combinational equivalence checking.
//!
//! A miter feeds two circuits from shared inputs, XORs the corresponding
//! outputs and ORs the XORs: the single output is 1 iff the circuits
//! disagree on the applied input. Asking a SAT-solver whether the miter
//! output can be 1 is exactly the equivalence-checking workload behind the
//! paper's *Miters* class (§4) and the Velev-style processor-verification
//! suites.

use crate::netlist::{Netlist, NodeId};
use crate::tseitin::{encode, TseitinEncoding};
use berkmin_cnf::Cnf;

/// Builds the miter of two combinational netlists with identical
/// interfaces. The result has the same inputs and a single output that is
/// 1 iff the two circuits differ on the applied input pattern.
///
/// # Panics
///
/// Panics if the interfaces differ or if either netlist is sequential.
pub fn miter(a: &Netlist, b: &Netlist) -> Netlist {
    assert!(
        a.is_combinational() && b.is_combinational(),
        "miters are defined for combinational netlists"
    );
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output arity mismatch"
    );
    let mut m = Netlist::new();
    let shared: Vec<NodeId> = m.inputs_n(a.num_inputs());
    let outs_a = m.import(a, &shared);
    let outs_b = m.import(b, &shared);
    let diffs: Vec<NodeId> = outs_a
        .iter()
        .zip(&outs_b)
        .map(|(&x, &y)| m.xor(x, y))
        .collect();
    let any = m.or_reduce(&diffs);
    m.set_output(any);
    m
}

/// Encodes the miter of `a` and `b` as a CNF that is **satisfiable iff the
/// circuits are inequivalent** (a model is a distinguishing input pattern).
///
/// This is the one-call path from two circuits to a solver-ready instance:
///
/// ```
/// use berkmin_circuit::{miter_cnf, Netlist};
///
/// let mut x1 = Netlist::new();
/// let a = x1.input();
/// let b = x1.input();
/// let g = x1.and(a, b);
/// x1.set_output(g);
///
/// let mut x2 = Netlist::new();
/// let a2 = x2.input();
/// let b2 = x2.input();
/// let na = x2.not(a2);
/// let nb = x2.not(b2);
/// let o = x2.nor(na, nb); // ¬(¬a ∨ ¬b) = a ∧ b
/// x2.set_output(o);
///
/// let cnf = miter_cnf(&x1, &x2);
/// // Equivalent circuits ⇒ UNSAT.
/// assert!(cnf.solve_by_enumeration().is_none());
/// ```
pub fn miter_cnf(a: &Netlist, b: &Netlist) -> Cnf {
    let mut enc = miter_encoding(a, b);
    enc.constrain_output(0, true);
    enc.cnf
}

/// Like [`miter_cnf`] but returns the full [`TseitinEncoding`] (with input
/// variable maps) *before* the output is constrained, for callers that want
/// to decode distinguishing patterns from models.
pub fn miter_encoding(a: &Netlist, b: &Netlist) -> TseitinEncoding {
    encode(&miter(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::eval64;

    fn xor_gate() -> Netlist {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let g = n.xor(a, b);
        n.set_output(g);
        n
    }

    fn xor_decomposed() -> Netlist {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let na = n.not(a);
        let nb = n.not(b);
        let t1 = n.and(a, nb);
        let t2 = n.and(na, b);
        let o = n.or(t1, t2);
        n.set_output(o);
        n
    }

    fn or_gate() -> Netlist {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let g = n.or(a, b);
        n.set_output(g);
        n
    }

    #[test]
    fn miter_of_equivalent_circuits_is_constant_zero() {
        let m = miter(&xor_gate(), &xor_decomposed());
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.outputs().len(), 1);
        for pat in 0u64..4 {
            let words = vec![pat & 1 != 0, pat & 2 != 0]
                .into_iter()
                .map(|b| if b { u64::MAX } else { 0 })
                .collect::<Vec<_>>();
            assert_eq!(eval64(&m, &words)[0] & 1, 0, "pattern {pat}");
        }
    }

    #[test]
    fn miter_of_different_circuits_fires() {
        let m = miter(&xor_gate(), &or_gate());
        // XOR and OR differ exactly on a=b=1.
        let out = eval64(&m, &[u64::MAX, u64::MAX]);
        assert_eq!(out[0] & 1, 1);
        let out = eval64(&m, &[0, u64::MAX]);
        assert_eq!(out[0] & 1, 0);
    }

    #[test]
    fn miter_cnf_unsat_for_equivalent() {
        let cnf = miter_cnf(&xor_gate(), &xor_decomposed());
        assert!(cnf.solve_by_enumeration().is_none());
    }

    #[test]
    fn miter_cnf_model_is_distinguishing_input() {
        let mut enc = miter_encoding(&xor_gate(), &or_gate());
        enc.constrain_output(0, true);
        let model = enc.cnf.solve_by_enumeration().expect("inequivalent");
        // Decode input pattern; it must distinguish the circuits: only a=b=1.
        let a = model.satisfies(berkmin_cnf::Lit::pos(enc.input_vars[0]));
        let b = model.satisfies(berkmin_cnf::Lit::pos(enc.input_vars[1]));
        assert!(a && b);
    }

    #[test]
    fn multi_output_miters_compare_all_outputs() {
        // Two-output circuits that differ only in the second output.
        let mut p = Netlist::new();
        let a = p.input();
        let b = p.input();
        let g1 = p.and(a, b);
        let g2 = p.or(a, b);
        p.set_output(g1);
        p.set_output(g2);

        let mut q = Netlist::new();
        let a2 = q.input();
        let b2 = q.input();
        let h1 = q.and(a2, b2);
        let h2 = q.xor(a2, b2);
        q.set_output(h1);
        q.set_output(h2);

        let cnf = miter_cnf(&p, &q);
        let model = cnf.solve_by_enumeration();
        assert!(model.is_some(), "OR vs XOR in output 2 must be detectable");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_interfaces_are_rejected() {
        let mut small = Netlist::new();
        let a = small.input();
        small.set_output(a);
        let _ = miter(&small, &xor_gate());
    }
}
