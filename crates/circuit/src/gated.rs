//! The gated-cone circuit of the paper's Fig. 1.
//!
//! An AND gate whose right-hand pin is a control signal and whose left-hand
//! pin is fed by a cone of logic: while the control pin is 0, the cone
//! variables cannot influence the output ("idle"); once it switches to 1
//! they suddenly matter ("active"). The figure motivates BerkMin's mobility
//! argument (§5) — a solver must refocus on the cone variables quickly.

use crate::netlist::{Netlist, NodeId};
use crate::random::{random_circuit, RandomCircuitSpec};

/// Description of a gated-cone instance built by [`gated_cone`].
#[derive(Debug, Clone)]
pub struct GatedCone {
    /// The complete circuit.
    pub netlist: Netlist,
    /// Index of the control ("right-hand pin") primary input.
    pub control_input: usize,
    /// Indices of the primary inputs feeding the cone.
    pub cone_inputs: Vec<usize>,
    /// Indices of the primary inputs feeding the non-cone logic.
    pub other_inputs: Vec<usize>,
    /// Node ids belonging to the cone (used to classify decision variables
    /// in the Fig. 1 experiment).
    pub cone_nodes: Vec<NodeId>,
    /// Output of the non-cone ("beyond") region, before the final XOR.
    pub beyond_output: NodeId,
    /// Output of the AND gate (cone ∧ control).
    pub gated_output: NodeId,
}

/// Builds Fig. 1's circuit shape: `out = (cone(cone_inputs) AND control)
/// XOR beyond(other_inputs)`, where `cone` and `beyond` are random circuits
/// of `cone_gates` / `other_gates` gates.
///
/// The single output is the XOR above, so satisfiability questions about
/// the output engage the non-cone logic always and the cone logic only
/// when `control` can be 1.
pub fn gated_cone(
    cone_inputs: usize,
    cone_gates: usize,
    other_inputs: usize,
    other_gates: usize,
    seed: u64,
) -> GatedCone {
    let cone_spec = RandomCircuitSpec {
        inputs: cone_inputs,
        gates: cone_gates,
        outputs: 1,
        window: 12,
        seed,
    };
    let other_spec = RandomCircuitSpec {
        inputs: other_inputs,
        gates: other_gates,
        outputs: 1,
        window: 12,
        seed: seed.wrapping_add(0x5A5A),
    };
    let cone = random_circuit(&cone_spec);
    let beyond = random_circuit(&other_spec);

    let mut n = Netlist::new();
    let cone_in: Vec<NodeId> = n.inputs_n(cone_inputs);
    let control = n.input();
    let other_in: Vec<NodeId> = n.inputs_n(other_inputs);

    let before_cone = n.num_nodes();
    let cone_out = n.import(&cone, &cone_in)[0];
    let after_cone = n.num_nodes();
    let gated = n.and(cone_out, control);
    let beyond_out = n.import(&beyond, &other_in)[0];
    let out = n.xor(gated, beyond_out);
    n.set_output(out);

    let cone_nodes: Vec<NodeId> = (before_cone..after_cone)
        .map(|i| NodeId(i as u32))
        .chain(cone_in.iter().copied())
        .collect();

    GatedCone {
        netlist: n,
        control_input: cone_inputs, // the control was declared right after the cone inputs
        cone_inputs: (0..cone_inputs).collect(),
        other_inputs: (cone_inputs + 1..cone_inputs + 1 + other_inputs).collect(),
        cone_nodes,
        beyond_output: beyond_out,
        gated_output: gated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval64;

    #[test]
    fn control_at_zero_masks_the_cone() {
        let gc = gated_cone(5, 30, 5, 30, 7);
        let n = &gc.netlist;
        // With control = 0 the output must not depend on cone inputs.
        let mut base: Vec<u64> = vec![0; n.num_inputs()];
        base[gc.control_input] = 0;
        let out0 = eval64(n, &base)[0];
        for &ci in &gc.cone_inputs {
            let mut flipped = base.clone();
            flipped[ci] = u64::MAX;
            assert_eq!(eval64(n, &flipped)[0], out0, "cone input {ci} leaked");
        }
    }

    #[test]
    fn control_at_one_exposes_the_cone() {
        // With control = 1 at least one cone input must matter, i.e. the
        // cone function must not collapse to a constant (overwhelmingly
        // likely for a random 30-gate cone; seed chosen to pass). The five
        // truth-table word patterns enumerate all 32 cone-input combinations
        // across simulation lanes, so influence detection is exact.
        let gc = gated_cone(5, 30, 5, 30, 7);
        let n = &gc.netlist;
        let patterns = [
            0xAAAA_AAAA_AAAA_AAAAu64,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
        ];
        let mut base: Vec<u64> = vec![0; n.num_inputs()];
        for (&ci, &p) in gc.cone_inputs.iter().zip(&patterns) {
            base[ci] = p;
        }
        base[gc.control_input] = u64::MAX;
        let out1 = eval64(n, &base)[0];
        let influential = gc.cone_inputs.iter().any(|&ci| {
            let mut flipped = base.clone();
            flipped[ci] ^= u64::MAX;
            eval64(n, &flipped)[0] != out1
        });
        assert!(influential, "no cone input influences the output");
    }

    #[test]
    fn bookkeeping_indices_are_consistent() {
        let gc = gated_cone(4, 20, 6, 25, 1);
        assert_eq!(gc.netlist.num_inputs(), 4 + 1 + 6);
        assert_eq!(gc.cone_inputs.len(), 4);
        assert_eq!(gc.other_inputs.len(), 6);
        assert!(gc.cone_nodes.len() >= 20);
    }
}
