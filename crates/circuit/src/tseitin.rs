//! Tseitin transformation: combinational netlist → equisatisfiable CNF.
//!
//! Every node gets a CNF variable; each gate contributes the clauses of its
//! defining biconditional. The encoding is linear in circuit size and is
//! how the paper's Miters / Beijing / microprocessor-verification CNFs were
//! produced from circuits.

use berkmin_cnf::{Cnf, Lit, Var};

use crate::netlist::{Gate, Netlist};

/// The result of encoding a netlist: the CNF plus variable maps.
#[derive(Debug, Clone)]
pub struct TseitinEncoding {
    /// The clauses (one biconditional per gate, plus constant units).
    pub cnf: Cnf,
    /// CNF variable of every netlist node, indexed by node id.
    pub node_vars: Vec<Var>,
    /// CNF variables of the primary inputs, in input order.
    pub input_vars: Vec<Var>,
    /// CNF variables of the primary outputs, in output order.
    pub output_vars: Vec<Var>,
}

impl TseitinEncoding {
    /// Adds a unit clause forcing output `i` to `value` — the standard way
    /// to turn a miter encoding into a satisfiability question.
    pub fn constrain_output(&mut self, i: usize, value: bool) {
        let v = self.output_vars[i];
        self.cnf.add_clause([Lit::new(v, !value)]);
    }
}

/// Encodes a combinational netlist as CNF.
///
/// # Panics
///
/// Panics if the netlist contains flip-flops (sequential circuits go
/// through [`crate::bmc::unroll`] instead).
pub fn encode(netlist: &Netlist) -> TseitinEncoding {
    assert!(
        netlist.is_combinational(),
        "Tseitin encoding requires a combinational netlist; unroll sequential ones first"
    );
    let mut cnf = Cnf::new();
    let mut enc = Encoder {
        cnf: &mut cnf,
        node_vars: Vec::with_capacity(netlist.num_nodes()),
    };
    for gate in netlist.gates() {
        enc.encode_gate(*gate);
    }
    let node_vars = enc.node_vars;
    let input_vars = netlist
        .inputs()
        .iter()
        .map(|n| node_vars[n.index()])
        .collect();
    let output_vars = netlist
        .outputs()
        .iter()
        .map(|n| node_vars[n.index()])
        .collect();
    TseitinEncoding {
        cnf,
        node_vars,
        input_vars,
        output_vars,
    }
}

struct Encoder<'a> {
    cnf: &'a mut Cnf,
    node_vars: Vec<Var>,
}

impl Encoder<'_> {
    fn var_of(&self, n: crate::netlist::NodeId) -> Var {
        self.node_vars[n.index()]
    }

    fn encode_gate(&mut self, gate: Gate) {
        let y = self.cnf.fresh_var();
        let yp = Lit::pos(y);
        let yn = Lit::neg(y);
        match gate {
            Gate::Input(_) => {} // free variable
            Gate::Const(v) => {
                self.cnf.add_clause([Lit::new(y, !v)]);
            }
            Gate::Not(a) => {
                let a = self.var_of(a);
                self.cnf.add_clause([yp, Lit::pos(a)]);
                self.cnf.add_clause([yn, Lit::neg(a)]);
            }
            Gate::And(a, b) => self.encode_and(yp, yn, a, b, false),
            Gate::Nand(a, b) => self.encode_and(yn, yp, a, b, false),
            Gate::Or(a, b) => self.encode_and(yn, yp, a, b, true),
            Gate::Nor(a, b) => self.encode_and(yp, yn, a, b, true),
            Gate::Xor(a, b) => self.encode_xor(yp, yn, a, b),
            Gate::Xnor(a, b) => self.encode_xor(yn, yp, a, b),
            Gate::Mux { sel, lo, hi } => {
                let s = self.var_of(sel);
                let l = self.var_of(lo);
                let h = self.var_of(hi);
                // sel=1 ⇒ y ≡ hi
                self.cnf.add_clause([Lit::neg(s), yn, Lit::pos(h)]);
                self.cnf.add_clause([Lit::neg(s), yp, Lit::neg(h)]);
                // sel=0 ⇒ y ≡ lo
                self.cnf.add_clause([Lit::pos(s), yn, Lit::pos(l)]);
                self.cnf.add_clause([Lit::pos(s), yp, Lit::neg(l)]);
            }
            Gate::Dff { .. } => unreachable!("checked combinational above"),
        }
        self.node_vars.push(y);
    }

    /// Encodes `pos ≡ a∧b` when `invert_inputs` is false (so passing
    /// `(yp,yn)` yields AND, `(yn,yp)` yields NAND), or `neg ≡ ¬a∧¬b` when
    /// true (De Morgan: OR/NOR).
    fn encode_and(
        &mut self,
        pos: Lit,
        neg: Lit,
        a: crate::netlist::NodeId,
        b: crate::netlist::NodeId,
        invert_inputs: bool,
    ) {
        let (a, b) = (self.var_of(a), self.var_of(b));
        let (ap, an) = if invert_inputs {
            (Lit::neg(a), Lit::pos(a))
        } else {
            (Lit::pos(a), Lit::neg(a))
        };
        let (bp, bn) = if invert_inputs {
            (Lit::neg(b), Lit::pos(b))
        } else {
            (Lit::pos(b), Lit::neg(b))
        };
        // pos → a, pos → b, (a ∧ b) → pos
        self.cnf.add_clause([neg, ap]);
        self.cnf.add_clause([neg, bp]);
        self.cnf.add_clause([pos, an, bn]);
    }

    /// Encodes `pos ≡ a ⊕ b` (pass `(yn,yp)` for XNOR).
    fn encode_xor(
        &mut self,
        pos: Lit,
        neg: Lit,
        a: crate::netlist::NodeId,
        b: crate::netlist::NodeId,
    ) {
        let (a, b) = (self.var_of(a), self.var_of(b));
        let (ap, an) = (Lit::pos(a), Lit::neg(a));
        let (bp, bn) = (Lit::pos(b), Lit::neg(b));
        self.cnf.add_clause([neg, ap, bp]);
        self.cnf.add_clause([neg, an, bn]);
        self.cnf.add_clause([pos, an, bp]);
        self.cnf.add_clause([pos, ap, bn]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::eval64;
    use berkmin_cnf::Assignment;

    /// Checks the encoding gate-by-gate against simulation: for every input
    /// assignment, the CNF restricted to the input values must be satisfied
    /// exactly by the simulated node values.
    fn check_encoding(n: &Netlist) {
        let enc = encode(n);
        let bits = n.num_inputs();
        assert!(bits <= 6, "test helper limited to 6 inputs");
        for pattern in 0u64..(1 << bits) {
            let words: Vec<u64> = (0..bits)
                .map(|i| if pattern >> i & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            // Simulate every node by re-running eval through outputs of a
            // netlist clone that exposes all nodes.
            let mut all_out = n.clone();
            for id in 0..n.num_nodes() {
                all_out.set_output(crate::netlist::NodeId(id as u32));
            }
            let values = eval64(&all_out, &words);
            let extra = &values[values.len() - n.num_nodes()..];
            let mut assignment = Assignment::new(enc.cnf.num_vars());
            for (node, var) in enc.node_vars.iter().enumerate() {
                assignment.assign(*var, extra[node] & 1 == 1);
            }
            assert!(
                enc.cnf.is_satisfied_by(&assignment),
                "encoding disagrees with simulation on pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn every_gate_type_encodes_correctly() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.input();
        let g1 = n.and(a, b);
        let g2 = n.or(g1, s);
        let g3 = n.xor(g2, a);
        let g4 = n.nand(g3, b);
        let g5 = n.nor(g4, s);
        let g6 = n.xnor(g5, g1);
        let g7 = n.not(g6);
        let g8 = n.mux(s, g7, g3);
        let t = n.constant(true);
        let f = n.constant(false);
        let g9 = n.and(g8, t);
        let g10 = n.or(g9, f);
        n.set_output(g10);
        check_encoding(&n);
    }

    #[test]
    fn forcing_output_finds_justifying_input() {
        // out = a ∧ ¬b; force out=1, solve by enumeration: a=1, b=0.
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let nb = n.not(b);
        let g = n.and(a, nb);
        n.set_output(g);
        let mut enc = encode(&n);
        enc.constrain_output(0, true);
        let model = enc.cnf.solve_by_enumeration().expect("justifiable");
        assert!(model.satisfies(Lit::pos(enc.input_vars[0])));
        assert!(model.satisfies(Lit::neg(enc.input_vars[1])));
    }

    #[test]
    fn unjustifiable_output_is_unsat() {
        // out = a ∧ ¬a ≡ 0; forcing out=1 must be UNSAT.
        let mut n = Netlist::new();
        let a = n.input();
        let na = n.not(a);
        let g = n.and(a, na);
        n.set_output(g);
        let mut enc = encode(&n);
        enc.constrain_output(0, true);
        assert!(enc.cnf.solve_by_enumeration().is_none());
    }

    #[test]
    fn encoding_size_is_linear() {
        let mut n = Netlist::new();
        let ins = n.inputs_n(4);
        let r = n.and_reduce(&ins);
        n.set_output(r);
        let enc = encode(&n);
        // 4 inputs (no clauses) + 3 ANDs (3 clauses each) = 9 clauses.
        assert_eq!(enc.cnf.num_clauses(), 9);
        assert_eq!(enc.cnf.num_vars(), 7);
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn sequential_netlists_are_rejected() {
        let mut n = Netlist::new();
        let q = n.dff(false);
        let nq = n.not(q);
        n.connect_dff(q, nq);
        let _ = encode(&n);
    }
}
