//! A library of arithmetic circuits: the building blocks of the paper's
//! circuit-derived benchmark classes (Beijing adders, Miters, pipelined
//! datapaths, BMC counters).

use crate::netlist::{Netlist, NodeId};

/// An n-bit bus within a netlist (least-significant bit first).
pub type Bus = Vec<NodeId>;

/// Adds a full adder to `n`; returns `(sum, carry_out)`.
pub fn full_adder(n: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = n.xor(a, b);
    let sum = n.xor(axb, cin);
    let g = n.and(a, b);
    let p = n.and(axb, cin);
    let cout = n.or(g, p);
    (sum, cout)
}

/// Builds an n-bit ripple-carry adder as a standalone netlist.
///
/// Inputs: `a[0..bits]`, `b[0..bits]`, `cin`. Outputs: `sum[0..bits]`,
/// `cout`.
pub fn ripple_carry_adder(bits: usize) -> Netlist {
    assert!(bits > 0, "adder width must be positive");
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let cin = n.input();
    let (sum, cout) = ripple_add(&mut n, &a, &b, cin);
    for s in sum {
        n.set_output(s);
    }
    n.set_output(cout);
    n
}

/// Adds ripple-carry addition logic to an existing netlist; returns
/// `(sum_bus, carry_out)`.
pub fn ripple_add(n: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> (Bus, NodeId) {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(n, ai, bi, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Builds an n-bit carry-select adder (blocks of `block` bits computed for
/// both carry hypotheses, selected by the incoming carry). Same interface
/// as [`ripple_carry_adder`] — and provably the same function, which makes
/// the pair a natural equivalence-checking miter.
pub fn carry_select_adder(bits: usize, block: usize) -> Netlist {
    assert!(bits > 0 && block > 0, "widths must be positive");
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let cin = n.input();
    let mut carry = cin;
    let mut sum: Bus = Vec::with_capacity(bits);
    let mut lo = 0;
    while lo < bits {
        let hi = (lo + block).min(bits);
        let zero = n.constant(false);
        let one = n.constant(true);
        let (sum0, cout0) = ripple_add(&mut n, &a[lo..hi], &b[lo..hi], zero);
        let (sum1, cout1) = ripple_add(&mut n, &a[lo..hi], &b[lo..hi], one);
        for (s0, s1) in sum0.iter().zip(&sum1) {
            let s = n.mux(carry, *s0, *s1);
            sum.push(s);
        }
        carry = n.mux(carry, cout0, cout1);
        lo = hi;
    }
    for s in sum {
        n.set_output(s);
    }
    n.set_output(carry);
    n
}

/// Builds an n×n-bit array multiplier (unsigned). Inputs `a`, `b`; outputs
/// the `2n`-bit product.
pub fn array_multiplier(bits: usize) -> Netlist {
    array_multiplier_rect(bits, bits)
}

/// Builds an `abits`×`bbits` rectangular array multiplier (unsigned).
/// Inputs `a` (`abits` wide) then `b` (`bbits` wide); outputs the
/// `abits + bbits`-bit product. The rectangular form gives the benchmark
/// generators a fine-grained difficulty dial: equivalence-checking
/// hardness grows with the number of partial products `abits · bbits`.
pub fn array_multiplier_rect(abits: usize, bbits: usize) -> Netlist {
    assert!(abits > 0 && bbits > 0, "multiplier widths must be positive");
    let out_bits = abits + bbits;
    let mut n = Netlist::new();
    let a = n.inputs_n(abits);
    let b = n.inputs_n(bbits);
    let zero = n.constant(false);
    // Partial products, added row by row with ripple carries.
    let mut acc: Bus = vec![zero; out_bits];
    for (j, &bj) in b.iter().enumerate() {
        let row: Bus = a.iter().map(|&ai| n.and(ai, bj)).collect();
        let mut carry = zero;
        for (i, &pp) in row.iter().enumerate() {
            let (s, c) = full_adder(&mut n, acc[i + j], pp, carry);
            acc[i + j] = s;
            carry = c;
        }
        // Propagate the final carry up the accumulator.
        let mut k = j + abits;
        while k < out_bits {
            let (s, c) = full_adder(&mut n, acc[k], carry, zero);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    for s in acc {
        n.set_output(s);
    }
    n
}

/// Builds an n-bit Kogge–Stone (parallel-prefix) adder with the same
/// interface as [`ripple_carry_adder`] — logarithmic depth instead of
/// linear, and a completely different gate structure, making the pair a
/// classic equivalence-checking benchmark.
pub fn kogge_stone_adder(bits: usize) -> Netlist {
    assert!(bits > 0, "adder width must be positive");
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let cin = n.input();

    // Bitwise propagate/generate.
    let p0: Bus = a.iter().zip(&b).map(|(&x, &y)| n.xor(x, y)).collect();
    let g0: Bus = a.iter().zip(&b).map(|(&x, &y)| n.and(x, y)).collect();

    // Parallel-prefix combine: (G, P) ∘ (G', P') = (G ∨ (P ∧ G'), P ∧ P').
    let mut g = g0.clone();
    let mut p = p0.clone();
    let mut d = 1;
    while d < bits {
        let mut g_next = g.clone();
        let mut p_next = p.clone();
        for i in d..bits {
            let t = n.and(p[i], g[i - d]);
            g_next[i] = n.or(g[i], t);
            p_next[i] = n.and(p[i], p[i - d]);
        }
        g = g_next;
        p = p_next;
        d *= 2;
    }

    // Carry into bit i: prefix(i-1) with cin folded in; sum = p0 ⊕ carry.
    let mut carry_into = Vec::with_capacity(bits + 1);
    carry_into.push(cin);
    for i in 0..bits {
        let via_p = n.and(p[i], cin);
        let c = n.or(g[i], via_p);
        carry_into.push(c);
    }
    for i in 0..bits {
        let s = n.xor(p0[i], carry_into[i]);
        n.set_output(s);
    }
    n.set_output(carry_into[bits]);
    n
}

/// Builds an n×n Wallace-tree multiplier: partial products reduced with a
/// tree of 3:2/2:2 compressors, then one final ripple addition. Same
/// interface and function as [`array_multiplier`], radically different
/// structure — the classic hard multiplier-equivalence pair.
pub fn wallace_multiplier(bits: usize) -> Netlist {
    assert!(bits > 0, "multiplier width must be positive");
    let out_bits = 2 * bits;
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);

    // Column-wise partial products (column = output weight).
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = n.and(ai, bj);
            columns[i + j].push(pp);
        }
    }

    // Reduce until every column has at most two entries.
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
        for (w, col) in columns.iter().enumerate() {
            let mut k = 0;
            while col.len() - k >= 3 {
                let (s, c) = full_adder(&mut n, col[k], col[k + 1], col[k + 2]);
                next[w].push(s);
                if w + 1 < out_bits {
                    next[w + 1].push(c);
                }
                k += 3;
            }
            if col.len() - k == 2 {
                // Half adder.
                let s = n.xor(col[k], col[k + 1]);
                let c = n.and(col[k], col[k + 1]);
                next[w].push(s);
                if w + 1 < out_bits {
                    next[w + 1].push(c);
                }
            } else if col.len() - k == 1 {
                next[w].push(col[k]);
            }
        }
        columns = next;
    }

    // Final addition of the two remaining rows.
    let zero = n.constant(false);
    let row_a: Bus = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Bus = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let (sum, _overflow) = ripple_add(&mut n, &row_a, &row_b, zero);
    for s in sum {
        n.set_output(s);
    }
    n
}

/// Builds an unsigned n-bit comparator. Inputs `a`, `b`; outputs
/// `[a < b, a == b]`.
pub fn comparator(bits: usize) -> Netlist {
    assert!(bits > 0, "comparator width must be positive");
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let mut lt = n.constant(false);
    let mut eq = n.constant(true);
    // From MSB down: lt = lt_prev ∨ (eq_prev ∧ ¬a_i ∧ b_i).
    for i in (0..bits).rev() {
        let na = n.not(a[i]);
        let this_lt = n.and(na, b[i]);
        let take = n.and(eq, this_lt);
        lt = n.or(lt, take);
        let bit_eq = n.xnor(a[i], b[i]);
        eq = n.and(eq, bit_eq);
    }
    n.set_output(lt);
    n.set_output(eq);
    n
}

/// Operations supported by [`alu`].
pub const ALU_OPS: usize = 4;

/// Builds a small n-bit ALU with a 2-bit opcode: `00` add, `01` subtract
/// (a − b), `10` AND, `11` XOR. Inputs: `a`, `b`, `op0`, `op1`;
/// outputs: `result[0..bits]`, `flag` (carry/borrow for arithmetic ops,
/// zero-detect for logic ops).
pub fn alu(bits: usize) -> Netlist {
    assert!(bits > 0, "ALU width must be positive");
    let mut n = Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let op0 = n.input();
    let op1 = n.input();

    // Adder/subtractor: b ⊕ sub, carry-in = sub (two's complement).
    let sub = n.and_reduce(&[op0]); // op0 selects subtract when op1 = 0
    let b_inv: Bus = b.iter().map(|&bi| n.xor(bi, sub)).collect();
    let (arith, cout) = {
        let (s, c) = ripple_add(&mut n, &a, &b_inv, sub);
        (s, c)
    };

    let and_bus: Bus = a.iter().zip(&b).map(|(&x, &y)| n.and(x, y)).collect();
    let xor_bus: Bus = a.iter().zip(&b).map(|(&x, &y)| n.xor(x, y)).collect();
    let logic: Bus = and_bus
        .iter()
        .zip(&xor_bus)
        .map(|(&x, &y)| n.mux(op0, x, y))
        .collect();
    let result: Bus = arith
        .iter()
        .zip(&logic)
        .map(|(&ar, &lo)| n.mux(op1, ar, lo))
        .collect();

    // Flag: carry-out for arithmetic, NOR-reduce (zero flag) for logic.
    let nonzero = n.or_reduce(&logic);
    let zero = n.not(nonzero);
    let flag = n.mux(op1, cout, zero);

    for r in result {
        n.set_output(r);
    }
    n.set_output(flag);
    n
}

/// Builds an n-bit binary up-counter (sequential, free-running). Outputs
/// the count bits; no inputs.
pub fn counter(bits: usize) -> Netlist {
    assert!(bits > 0, "counter width must be positive");
    let mut n = Netlist::new();
    let q: Bus = (0..bits).map(|_| n.dff(false)).collect();
    // q[i] toggles when all lower bits are 1.
    let mut all_lower = n.constant(true);
    for &qi in &q {
        let next = n.xor(qi, all_lower);
        n.connect_dff(qi, next);
        all_lower = n.and(all_lower, qi);
    }
    for &bit in &q {
        n.set_output(bit);
    }
    n
}

/// Builds an n-bit binary up-counter with a per-cycle *enable* input: the
/// count advances only when enable is high. Outputs the count bits.
///
/// Unlike the free-running [`counter`], whose whole unrolling is fixed by
/// unit propagation, the enable inputs make every bounded-reachability
/// question a genuine search problem — the workload behind the incremental
/// [`crate::bmc::BmcDriver`] tests and benches.
pub fn enabled_counter(bits: usize) -> Netlist {
    assert!(bits > 0, "counter width must be positive");
    let mut n = Netlist::new();
    let en = n.input();
    let q: Bus = (0..bits).map(|_| n.dff(false)).collect();
    // Carry chain gated by enable: q[i] toggles when enable and all lower
    // bits are 1.
    let mut all_lower = en;
    for &qi in &q {
        let next = n.xor(qi, all_lower);
        n.connect_dff(qi, next);
        all_lower = n.and(all_lower, qi);
    }
    for &bit in &q {
        n.set_output(bit);
    }
    n
}

/// Builds an n-bit odd-parity tree. Input: `bits` wires; output: their XOR.
pub fn parity_tree(bits: usize) -> Netlist {
    assert!(bits > 0, "parity width must be positive");
    let mut n = Netlist::new();
    let ins = n.inputs_n(bits);
    // Balanced tree reduction (different structure from the linear chain
    // that xor_reduce builds — handy for miters).
    let mut layer = ins;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                n.xor(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    n.set_output(layer[0]);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{equivalent_exhaustive, eval64, Simulator};

    /// Drives an adder netlist with concrete numbers via simulation.
    fn add_via_circuit(n: &Netlist, bits: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut words = Vec::new();
        for i in 0..bits {
            words.push(if a >> i & 1 == 1 { u64::MAX } else { 0 });
        }
        for i in 0..bits {
            words.push(if b >> i & 1 == 1 { u64::MAX } else { 0 });
        }
        words.push(if cin { u64::MAX } else { 0 });
        let out = eval64(n, &words);
        let mut r = 0u64;
        for (i, o) in out.iter().enumerate() {
            if o & 1 == 1 {
                r |= 1 << i;
            }
        }
        r
    }

    #[test]
    fn ripple_adder_adds() {
        let bits = 5;
        let n = ripple_carry_adder(bits);
        for (a, b, c) in [
            (0u64, 0u64, false),
            (7, 9, false),
            (31, 31, true),
            (20, 11, true),
        ] {
            let want = a + b + c as u64;
            assert_eq!(add_via_circuit(&n, bits, a, b, c), want, "{a}+{b}+{c}");
        }
    }

    #[test]
    fn carry_select_equals_ripple() {
        for (bits, block) in [(4, 2), (6, 3), (7, 2)] {
            let r = ripple_carry_adder(bits);
            let cs = carry_select_adder(bits, block);
            assert!(
                equivalent_exhaustive(&r, &cs),
                "carry-select({bits},{block}) differs from ripple"
            );
        }
    }

    #[test]
    fn kogge_stone_equals_ripple() {
        for bits in [1, 2, 5, 8] {
            let r = ripple_carry_adder(bits);
            let ks = kogge_stone_adder(bits);
            assert!(equivalent_exhaustive(&r, &ks), "kogge-stone({bits})");
        }
    }

    #[test]
    fn wallace_equals_array_multiplier() {
        for bits in [1, 2, 4, 5] {
            let a = array_multiplier(bits);
            let w = wallace_multiplier(bits);
            assert!(equivalent_exhaustive(&a, &w), "wallace({bits})");
        }
    }

    #[test]
    fn wallace_has_different_structure() {
        // Same function, different circuit: node counts must differ for
        // non-trivial widths (otherwise the miter benchmark is vacuous).
        let a = array_multiplier(5);
        let w = wallace_multiplier(5);
        assert_ne!(a.num_nodes(), w.num_nodes());
    }

    #[test]
    fn multiplier_multiplies() {
        let bits = 4;
        let n = array_multiplier(bits);
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut words = Vec::new();
                for i in 0..bits {
                    words.push(if a >> i & 1 == 1 { u64::MAX } else { 0 });
                }
                for i in 0..bits {
                    words.push(if b >> i & 1 == 1 { u64::MAX } else { 0 });
                }
                let out = eval64(&n, &words);
                let mut r = 0u64;
                for (i, o) in out.iter().enumerate() {
                    if o & 1 == 1 {
                        r |= 1 << i;
                    }
                }
                assert_eq!(r, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let bits = 4;
        let n = comparator(bits);
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut words = Vec::new();
                for i in 0..bits {
                    words.push(if a >> i & 1 == 1 { u64::MAX } else { 0 });
                }
                for i in 0..bits {
                    words.push(if b >> i & 1 == 1 { u64::MAX } else { 0 });
                }
                let out = eval64(&n, &words);
                assert_eq!(out[0] & 1 == 1, a < b, "lt({a},{b})");
                assert_eq!(out[1] & 1 == 1, a == b, "eq({a},{b})");
            }
        }
    }

    #[test]
    fn alu_implements_all_ops() {
        let bits = 3;
        let n = alu(bits);
        let mask = (1u64 << bits) - 1;
        for a in 0..=mask {
            for b in 0..=mask {
                for op in 0u64..4 {
                    let mut words = Vec::new();
                    for i in 0..bits {
                        words.push(if a >> i & 1 == 1 { u64::MAX } else { 0 });
                    }
                    for i in 0..bits {
                        words.push(if b >> i & 1 == 1 { u64::MAX } else { 0 });
                    }
                    words.push(if op & 1 == 1 { u64::MAX } else { 0 }); // op0
                    words.push(if op & 2 == 2 { u64::MAX } else { 0 }); // op1
                    let out = eval64(&n, &words);
                    let mut r = 0u64;
                    for (i, word) in out.iter().take(bits).enumerate() {
                        if word & 1 == 1 {
                            r |= 1 << i;
                        }
                    }
                    let want = match op {
                        0 => (a + b) & mask,
                        1 => (a.wrapping_sub(b)) & mask,
                        2 => a & b,
                        3 => a ^ b,
                        _ => unreachable!(),
                    };
                    assert_eq!(r, want, "alu op={op} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn counter_counts_through_wraparound() {
        let bits = 3;
        let n = counter(bits);
        let mut sim = Simulator::new(&n);
        for step in 0..20u64 {
            let out = sim.step(&[]);
            let mut v = 0u64;
            for (i, o) in out.iter().enumerate() {
                if o & 1 == 1 {
                    v |= 1 << i;
                }
            }
            assert_eq!(v, step % 8, "step {step}");
        }
    }

    #[test]
    fn parity_tree_equals_linear_chain() {
        for bits in [1, 2, 5, 8, 9] {
            let tree = parity_tree(bits);
            let mut chain = Netlist::new();
            let ins = chain.inputs_n(bits);
            let r = chain.xor_reduce(&ins);
            chain.set_output(r);
            assert!(equivalent_exhaustive(&tree, &chain), "parity({bits})");
        }
    }
}
