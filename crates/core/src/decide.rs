//! Decision making: BerkMin's top-clause rule, the `Less_mobility`
//! most-active-variable rule, and the VSIDS baseline (paper §5).

use berkmin_cnf::{LBool, Lit, Var};

use crate::config::{ActivityIndex, DecisionStrategy};
use crate::solver::Solver;

impl Solver {
    /// Picks the next decision literal, or `None` when every variable is
    /// assigned (i.e. the formula is satisfied).
    pub(crate) fn decide(&mut self) -> Option<Lit> {
        match self.config.decision {
            DecisionStrategy::BerkMin => self.decide_berkmin(1),
            DecisionStrategy::BerkMinWindow { window } => self.decide_berkmin(window.max(1)),
            DecisionStrategy::MostActiveVar => self.decide_most_active(),
            DecisionStrategy::Vsids => self.decide_vsids(),
        }
    }

    /// BerkMin's rule (§5): scan the conflict-clause stack from the top for
    /// the *current top clause* (the unsatisfied conflict clause closest to
    /// the top), then branch on its most active free variable. The scan
    /// distance feeds the skin-effect histogram (§6). Falls back to the
    /// most active free variable of the whole formula when every conflict
    /// clause is satisfied.
    ///
    /// With `window > 1` this is the Remark 2 relaxation: the candidate
    /// pool is the union of the `window` topmost unsatisfied clauses.
    fn decide_berkmin(&mut self, window: usize) -> Option<Lit> {
        let stack_len = self.db.stack.len();
        let mut found = 0usize;
        let mut best: Option<(Lit, u64)> = None;
        let mut first_distance = None;
        for (r, idx) in (0..stack_len).rev().enumerate() {
            let cref = self.db.stack[idx];
            let mut satisfied = false;
            let mut clause_best: Option<(Lit, u64)> = None;
            // One contiguous arena slice per clause — the scan over the
            // stack is a linear walk, not a pointer chase.
            for &l in self.db.lits(cref) {
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::Undef => {
                        let a = self.var_activity[l.var().index()];
                        if clause_best.map_or(true, |(_, ba)| a > ba) {
                            clause_best = Some((l, a));
                        }
                    }
                    LBool::False => {}
                }
            }
            if satisfied {
                continue;
            }
            let (l, a) = clause_best
                .expect("an unsatisfied, non-falsified clause has a free literal after BCP");
            if best.map_or(true, |(_, ba)| a > ba) {
                best = Some((l, a));
            }
            found += 1;
            if first_distance.is_none() {
                first_distance = Some(r);
            }
            if found >= window {
                break;
            }
        }
        if let Some((lit_in_clause, _)) = best {
            self.stats
                .record_top_distance(first_distance.expect("set with first hit"));
            return Some(self.pick_top_polarity(lit_in_clause));
        }
        // All conflict clauses satisfied: most active free variable (§5).
        self.decide_most_active()
    }

    /// The `Less_mobility` rule (§5, Table 2), also BerkMin's fallback:
    /// globally most active free variable, polarity via `nb_two` (§7).
    fn decide_most_active(&mut self) -> Option<Lit> {
        let var = match self.config.activity_index {
            ActivityIndex::NaiveScan => self.most_active_free_scan(),
            ActivityIndex::Heap => self.most_active_free_heap(),
        }?;
        self.stats.decisions_from_free_var += 1;
        Some(self.pick_free_polarity(var))
    }

    /// Naive linear scan — the implementation the paper's experiments used
    /// (Remark 1). Ties break toward the lowest variable index.
    fn most_active_free_scan(&self) -> Option<Var> {
        let mut best: Option<(Var, u64)> = None;
        for i in 0..self.num_vars {
            if self.trail.value(Var::new(i as u32)) == LBool::Undef && !self.eliminated[i] {
                let a = self.var_activity[i];
                if best.map_or(true, |(_, ba)| a > ba) {
                    best = Some((Var::new(i as u32), a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Heap-indexed lookup — the BerkMin561 "strategy 3" optimization.
    fn most_active_free_heap(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.var_activity) {
            if self.trail.value(v) == LBool::Undef && !self.eliminated[v.index()] {
                return Some(v);
            }
        }
        None
    }

    /// Chaff's VSIDS: free literal with the highest (periodically halved)
    /// counter; ties break toward the lowest literal code.
    fn decide_vsids(&mut self) -> Option<Lit> {
        let mut best: Option<(Lit, u64)> = None;
        for code in 0..2 * self.num_vars {
            let l = Lit::from_code(code as u32);
            if self.trail.value(l.var()) == LBool::Undef && !self.eliminated[l.var().index()] {
                let c = self.vsids[code];
                if best.map_or(true, |(_, bc)| c > bc) {
                    best = Some((l, c));
                }
            }
        }
        let (l, _) = best?;
        self.stats.decisions_from_free_var += 1;
        Some(l)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ActivityIndex, DecisionStrategy, SolverConfig, TopClausePolarity};
    use crate::solver::Solver;
    use berkmin_cnf::{Lit, Var};

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    /// Builds a solver with two learnt clauses on the stack, the top one
    /// satisfied, so the decision must come from the one below (r = 1).
    fn solver_with_stack() -> Solver {
        let mut cfg = SolverConfig::berkmin();
        cfg.top_polarity = TopClausePolarity::SatTop; // deterministic polarity
        let mut s = Solver::with_config(cfg);
        // Original clauses keep vars 1..=6 alive.
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(4), lit(5), lit(6)]);
        s
    }

    #[test]
    fn berkmin_picks_from_topmost_unsatisfied_clause() {
        let mut s = solver_with_stack();
        // Fake two "learnt" clauses directly on the stack.
        s.record_learnt(vec![lit(-1), lit(2)]); // older (asserts ¬x1 at level 0)
        s.cancel_until(0);
        // The asserting literal ¬1 was enqueued; clause {-1,2} is satisfied.
        assert!(s.propagate().is_none());
        // New top clause {4,5}: record_learnt asserts lit 4 at level 0, so
        // it is satisfied too. The decision should then come from a lower
        // clause: {4,5} (top, satisfied) → skip; {-1,2} (satisfied by ¬x1)
        // → skip; falls back to the most-active free variable.
        s.record_learnt(vec![lit(4), lit(5)]);
        let d = s.decide().expect("free vars remain");
        assert!(s.lit_value(d).is_undef());
        // Both learnt clauses satisfied → fallback path was taken.
        assert_eq!(s.stats().decisions_from_top_clause, 0);
        assert_eq!(s.stats().decisions_from_free_var, 1);
    }

    #[test]
    fn skin_effect_histogram_records_distance() {
        // Solve a pigeonhole instance end-to-end: the BerkMin strategy must
        // take decisions from top clauses, and the histogram must account
        // for exactly those decisions (paper §6).
        let mut s = Solver::with_config(SolverConfig::berkmin());
        let hole = 4usize; // PHP(4): 5 pigeons, 4 holes — UNSAT
        let l = |p: usize, h: usize| lit((p * hole + h + 1) as i32);
        for p in 0..=hole {
            s.add_clause((0..hole).map(|h| l(p, h)));
        }
        for h in 0..hole {
            for p1 in 0..=hole {
                for p2 in (p1 + 1)..=hole {
                    s.add_clause([!l(p1, h), !l(p2, h)]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        let st = s.stats();
        assert!(
            st.decisions_from_top_clause > 0,
            "stack decisions must occur"
        );
        let hist_sum: u64 = st.top_distance_hist.iter().sum();
        assert_eq!(hist_sum, st.decisions_from_top_clause);
        assert_eq!(
            st.decisions,
            st.decisions_from_top_clause + st.decisions_from_free_var
        );
    }

    #[test]
    fn most_active_scan_prefers_higher_activity() {
        let mut cfg = SolverConfig::berkmin();
        cfg.decision = DecisionStrategy::MostActiveVar;
        let mut s = Solver::with_config(cfg);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.bump_var(Var::new(1));
        s.bump_var(Var::new(1));
        s.bump_var(Var::new(2));
        let d = s.decide().unwrap();
        assert_eq!(d.var(), Var::new(1));
    }

    #[test]
    fn heap_and_scan_agree_on_max() {
        for idx in [ActivityIndex::NaiveScan, ActivityIndex::Heap] {
            let mut cfg = SolverConfig::berkmin();
            cfg.decision = DecisionStrategy::MostActiveVar;
            cfg.activity_index = idx;
            let mut s = Solver::with_config(cfg);
            s.add_clause([lit(1), lit(2), lit(3), lit(4)]);
            for _ in 0..3 {
                s.bump_var(Var::new(2));
            }
            s.bump_var(Var::new(0));
            assert_eq!(s.decide().unwrap().var(), Var::new(2), "index {idx:?}");
        }
    }

    #[test]
    fn vsids_picks_highest_counter_literal() {
        let mut cfg = SolverConfig::chaff_like();
        cfg.restart = crate::RestartPolicy::Never;
        let mut s = Solver::with_config(cfg);
        s.add_clause([lit(1), lit(2)]);
        s.vsids[lit(-2).code()] = 5;
        s.vsids[lit(1).code()] = 3;
        assert_eq!(s.decide().unwrap(), lit(-2));
    }

    #[test]
    fn window_one_matches_plain_berkmin() {
        // Same instance, window=1 vs plain: identical search statistics.
        let run = |strategy: DecisionStrategy| {
            let mut cfg = SolverConfig::berkmin();
            cfg.decision = strategy;
            let mut s = Solver::with_config(cfg);
            let hole = 4usize;
            let l = |p: usize, h: usize| lit((p * hole + h + 1) as i32);
            for p in 0..=hole {
                s.add_clause((0..hole).map(|h| l(p, h)));
            }
            for h in 0..hole {
                for p1 in 0..=hole {
                    for p2 in (p1 + 1)..=hole {
                        s.add_clause([!l(p1, h), !l(p2, h)]);
                    }
                }
            }
            assert!(s.solve().is_unsat());
            (s.stats().decisions, s.stats().conflicts)
        };
        assert_eq!(
            run(DecisionStrategy::BerkMin),
            run(DecisionStrategy::BerkMinWindow { window: 1 })
        );
    }

    #[test]
    fn wider_windows_stay_sound() {
        for window in [2usize, 4, 16] {
            let mut cfg = SolverConfig::berkmin();
            cfg.decision = DecisionStrategy::BerkMinWindow { window };
            let mut s = Solver::with_config(cfg);
            let hole = 4usize;
            let l = |p: usize, h: usize| lit((p * hole + h + 1) as i32);
            for p in 0..=hole {
                s.add_clause((0..hole).map(|h| l(p, h)));
            }
            for h in 0..hole {
                for p1 in 0..=hole {
                    for p2 in (p1 + 1)..=hole {
                        s.add_clause([!l(p1, h), !l(p2, h)]);
                    }
                }
            }
            assert!(s.solve().is_unsat(), "window {window}");
        }
    }

    #[test]
    fn decide_none_when_all_assigned() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([lit(1)]);
        assert!(s.propagate().is_none());
        assert_eq!(s.decide(), None);
    }
}
