//! Property tests for the flat clause arena and its compacting collector.
//!
//! Random interleavings of clause addition, learning, deletion and GC must
//! preserve the watch invariant — every live clause is watched at exactly
//! its first two literals, once in each of the two lists (inline binary or
//! blocker-carrying long) — and must leave no dangling [`ClauseRef`] in any
//! watch list, the conflict-clause stack, or the trail's reason pointers.

use std::collections::{HashMap, HashSet};

use berkmin_cnf::{LBool, Lit, Var};
use proptest::prelude::*;

use crate::clause_db::ClauseRef;
use crate::config::SolverConfig;
use crate::proof::NoProof;
use crate::solver::Solver;
use crate::watch::WatchRef;

/// Size of the variable pool the generated clauses draw from.
const VARS: usize = 24;

/// Derives a clause of `len` distinct variables (signs from the seed bits).
fn clause_from_seed(seed: u64, len: usize) -> Vec<Lit> {
    let mut vars: Vec<u32> = Vec::with_capacity(len);
    let mut x = seed | 1;
    while vars.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (x >> 33) as u32 % VARS as u32;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .enumerate()
        .map(|(i, &v)| Lit::new(Var::new(v), (seed >> i) & 1 == 1))
        .collect()
}

/// Asserts every arena/watch/stack/reason invariant the solver relies on.
fn check_invariants(s: &Solver) {
    assert_eq!(
        s.db.garbage_words(),
        0,
        "collection must leave a fully compacted arena"
    );
    let live: HashSet<ClauseRef> = s.db.iter_live().collect();
    let mut watch_count: HashMap<ClauseRef, usize> = HashMap::new();

    s.watches.for_each_watcher(|watched, entry| match entry {
        WatchRef::Long(w) => {
            assert!(live.contains(&w.cref), "dangling long watcher {:?}", w.cref);
            let lits = s.db.lits(w.cref);
            assert!(lits.len() >= 3, "binary clause in the long watch lists");
            assert!(
                lits[0] == watched || lits[1] == watched,
                "clause not watched at its first two literals"
            );
            assert!(lits.contains(&w.blocker), "blocker outside the clause");
            *watch_count.entry(w.cref).or_insert(0) += 1;
        }
        WatchRef::Binary(w) => {
            assert!(
                live.contains(&w.cref),
                "dangling binary watcher {:?}",
                w.cref
            );
            let lits = s.db.lits(w.cref);
            assert_eq!(lits.len(), 2, "long clause in the binary watch lists");
            assert!(
                lits.contains(&watched) && lits.contains(&w.other),
                "inline binary watcher does not encode its clause"
            );
            *watch_count.entry(w.cref).or_insert(0) += 1;
        }
    });
    for cref in &live {
        assert_eq!(
            watch_count.get(cref).copied().unwrap_or(0),
            2,
            "live clause {cref:?} must be watched exactly twice"
        );
    }
    for cref in &s.db.stack {
        assert!(live.contains(cref), "dangling stack entry {cref:?}");
        assert!(s.db.is_learnt(*cref), "original clause on the stack");
    }
    for &l in s.trail.iter() {
        if let Some(cref) = s.trail.reason_of(l.var()) {
            assert!(
                live.contains(&cref),
                "dangling reason for var {}",
                l.var().index()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn gc_preserves_watch_invariant(ops in prop::collection::vec((0u8..4, any::<u64>()), 1..=64)) {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.ensure_vars(VARS);
        // Mirrors the solver's real discipline: deletions only mark records,
        // and search (propagation) resumes only after the following GC has
        // purged the marked clauses from every watch list.
        let mut dirty = false;
        for (op, seed) in ops {
            match op {
                0 => {
                    // Original clause through the public path (tautology
                    // dropping, level-0 simplification, unit enqueueing).
                    let len = 2 + (seed % 5) as usize;
                    if s.add_clause(clause_from_seed(seed, len)) && !dirty {
                        let _ = s.propagate();
                    }
                }
                1 => {
                    // Learnt clause installed directly on the stack, as the
                    // reduction tests do; only over unassigned literals so
                    // the fresh watches respect the 2WL discipline.
                    let len = 2 + (seed % 5) as usize;
                    let lits = clause_from_seed(seed, len);
                    if lits.iter().all(|&l| s.lit_value(l) == LBool::Undef) {
                        let cref = s.db.add_learnt(&lits);
                        s.attach(cref);
                    }
                }
                2 => {
                    // Mark a random learnt clause deleted (§8-style).
                    if !s.db.stack.is_empty() {
                        let i = seed as usize % s.db.stack.len();
                        let cref = s.db.stack[i];
                        if !s.db.is_garbage(cref) {
                            s.db.delete(cref);
                            dirty = true;
                        }
                    }
                }
                _ => {
                    s.collect_garbage(&mut NoProof);
                    dirty = false;
                    check_invariants(&s);
                }
            }
        }
        s.collect_garbage(&mut NoProof);
        check_invariants(&s);
    }

    #[test]
    fn gc_preserves_clause_contents(seeds in prop::collection::vec(any::<u64>(), 1..=24)) {
        // Adds + deletes, then GC: the surviving clauses' literal sets and
        // stack order must be exactly the non-deleted ones, in order.
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.ensure_vars(VARS);
        let mut expect: Vec<Vec<Lit>> = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let lits = clause_from_seed(seed, 2 + (seed % 5) as usize);
            let cref = s.db.add_learnt(&lits);
            s.attach(cref);
            if i % 3 == 0 {
                s.db.delete(cref);
            } else {
                expect.push(lits);
            }
        }
        s.collect_garbage(&mut NoProof);
        let got: Vec<Vec<Lit>> =
            s.db.stack.iter().map(|&c| s.db.lits(c).to_vec()).collect();
        prop_assert_eq!(got, expect);
        check_invariants(&s);
    }
}
