//! Proof-emission hook.
//!
//! The solver reports every deduced conflict clause and every database
//! deletion to a [`ProofSink`]. The `berkmin-drat` crate implements sinks
//! that record DRAT proofs and check them; the default [`NoProof`] sink
//! compiles away to nothing.

use berkmin_cnf::Lit;

/// Receiver for clause additions and deletions, in deduction order.
///
/// Every clause the solver reports as added is a *reverse unit propagation*
/// (RUP) consequence of the clauses added before it plus the original
/// formula, which is exactly what a DRAT checker verifies. The final added
/// clause of an UNSAT run is the empty clause.
pub trait ProofSink {
    /// Called when the solver deduces (and records) `lits` as a clause.
    /// `lits` is empty exactly when unsatisfiability has been established.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Called when the solver deletes a clause from its database.
    fn delete_clause(&mut self, lits: &[Lit]);
}

/// A sink that discards everything — the default when no proof is wanted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProof;

impl ProofSink for NoProof {
    #[inline]
    fn add_clause(&mut self, _lits: &[Lit]) {}

    #[inline]
    fn delete_clause(&mut self, _lits: &[Lit]) {}
}

impl<S: ProofSink + ?Sized> ProofSink for &mut S {
    fn add_clause(&mut self, lits: &[Lit]) {
        (**self).add_clause(lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        (**self).delete_clause(lits);
    }
}

impl<S: ProofSink + ?Sized> ProofSink for Box<S> {
    fn add_clause(&mut self, lits: &[Lit]) {
        (**self).add_clause(lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        (**self).delete_clause(lits);
    }
}

/// Shared-ownership sink: attach `Rc::clone(&sink)` to a
/// [`SolverBuilder`](crate::SolverBuilder) and keep the other handle to
/// read the recorded proof back after solving — the session replacement
/// for the per-call `&mut sink` the removed `solve_with_proof` took.
impl<S: ProofSink> ProofSink for std::rc::Rc<std::cell::RefCell<S>> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.borrow_mut().add_clause(lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.borrow_mut().delete_clause(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_cnf::Var;

    #[derive(Default)]
    struct Counting {
        adds: usize,
        dels: usize,
    }

    impl ProofSink for Counting {
        fn add_clause(&mut self, _lits: &[Lit]) {
            self.adds += 1;
        }
        fn delete_clause(&mut self, _lits: &[Lit]) {
            self.dels += 1;
        }
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counting::default();
        {
            // Route through the blanket `impl ProofSink for &mut S`.
            let mut sink = &mut c;
            ProofSink::add_clause(&mut sink, &[Lit::pos(Var::new(0))]);
            ProofSink::delete_clause(&mut sink, &[]);
        }
        assert_eq!((c.adds, c.dels), (1, 1));
    }

    #[test]
    fn no_proof_is_a_no_op() {
        let mut sink = NoProof;
        sink.add_clause(&[]);
        sink.delete_clause(&[]);
    }
}
