//! The watch structure: one typed owner for the two-watched-literal
//! indexes.
//!
//! [`Watches`] bundles the long-clause watch lists (with Chaff-style
//! blockers) and the inline binary watch lists. Attachment, detachment and
//! the post-GC rebuild all go through the one surface here, so BCP's
//! watch-relocation, garbage collection's watch rewrite, and the audit's
//! symmetry check can never disagree about the structure's shape.
//!
//! encapsulation-guard: every field of `Watches` is private by design.
//! `tests/encapsulation_guard.rs` greps the rest of `crates/core/src` for
//! raw watch-list indexing; new watch-touching code belongs behind a
//! method in this file.

use std::collections::{HashMap, HashSet};

use berkmin_cnf::{LBool, Lit};

use crate::clause_db::{ClauseDb, ClauseRef};
use crate::trail::Trail;

/// A watch-list entry for a clause of length ≥ 3: the clause plus a
/// *blocker* literal whose truth lets BCP skip the clause without touching
/// its memory (SATO/Chaff-style fast BCP, paper §2).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

/// A binary clause stored *inline* in the watch list: the other literal is
/// the watcher, so propagating through a binary clause never touches the
/// clause arena. `cref` exists only to serve as the reason/conflict handle
/// for conflict analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinWatcher {
    /// The clause's other literal — everything BCP needs.
    pub(crate) other: Lit,
    /// Arena record backing this clause (activity, stack age, proofs).
    pub(crate) cref: ClauseRef,
}

/// One entry yielded by [`Watches::for_each_watcher`]: either a
/// long-clause watcher or an inline binary watcher.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) enum WatchRef<'a> {
    /// A long-clause (length ≥ 3) watcher with its blocker.
    Long(&'a Watcher),
    /// An inline binary watcher.
    Binary(&'a BinWatcher),
}

/// The two-watched-literal indexes of the solver, indexed by literal code.
///
/// `long` lists hold the clauses of length ≥ 3 in which the *negation* of
/// the index literal is watched (visited when the index literal becomes
/// true); binary clauses live inline in the `binary` lists, which double
/// as the occurrence lists behind `nb_two` (paper §7): the binary clauses
/// containing `l` are exactly the entries of `binary[(¬l).code()]`.
#[derive(Default)]
pub(crate) struct Watches {
    long: Vec<Vec<Watcher>>,
    binary: Vec<Vec<BinWatcher>>,
}

impl Watches {
    /// Creates an empty watch structure covering no literals.
    pub(crate) fn new() -> Self {
        Watches::default()
    }

    /// Grows the per-literal lists to cover `n` variables (2n codes).
    pub(crate) fn grow(&mut self, n: usize) {
        self.long.resize(2 * n, Vec::new());
        self.binary.resize(2 * n, Vec::new());
    }

    /// Number of literal codes covered (2 × variables).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn num_codes(&self) -> usize {
        self.long.len()
    }

    /// Registers the two watched literals of `cref` (positions 0 and 1 of
    /// `lits`). Binary clauses go to the inline lists, longer clauses to
    /// the blocker-carrying long lists.
    pub(crate) fn attach(&mut self, cref: ClauseRef, lits: &[Lit]) {
        let (l0, l1) = (lits[0], lits[1]);
        if lits.len() == 2 {
            self.binary[(!l0).code()].push(BinWatcher { other: l1, cref });
            self.binary[(!l1).code()].push(BinWatcher { other: l0, cref });
        } else {
            self.long[(!l0).code()].push(Watcher { cref, blocker: l1 });
            self.long[(!l1).code()].push(Watcher { cref, blocker: l0 });
        }
    }

    /// Removes every watcher entry of `cref` from the lists of its two
    /// watched literals (positions 0 and 1 of `lits`) — the inverse of
    /// [`Watches::attach`], for detaching a single clause without the full
    /// [`Watches::rebuild`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn detach(&mut self, cref: ClauseRef, lits: &[Lit]) {
        for &watched in &lits[..2] {
            let code = (!watched).code();
            if lits.len() == 2 {
                self.binary[code].retain(|w| w.cref != cref);
            } else {
                self.long[code].retain(|w| w.cref != cref);
            }
        }
    }

    /// Clears every list and re-attaches each live clause of `db`. Only
    /// valid at decision level 0 with an empty propagation queue (i.e.
    /// during database reduction / garbage collection).
    pub(crate) fn rebuild(&mut self, db: &ClauseDb) {
        for w in &mut self.long {
            w.clear();
        }
        for w in &mut self.binary {
            w.clear();
        }
        for cref in db.iter_live() {
            debug_assert!(db.len(cref) >= 2);
            self.attach(cref, db.lits(cref));
        }
    }

    /// The long-clause watchers visited when the literal of `code` becomes
    /// true.
    #[inline]
    pub(crate) fn long(&self, code: usize) -> &[Watcher] {
        &self.long[code]
    }

    /// The inline binary watchers visited when the literal of `code`
    /// becomes true.
    #[inline]
    pub(crate) fn binary(&self, code: usize) -> &[BinWatcher] {
        &self.binary[code]
    }

    /// Takes ownership of a long list for BCP's relocation pass (the hot
    /// `mem::take` pattern); return it with [`Watches::put_long`].
    #[inline]
    pub(crate) fn take_long(&mut self, code: usize) -> Vec<Watcher> {
        std::mem::take(&mut self.long[code])
    }

    /// Puts a long list taken by [`Watches::take_long`] back in place.
    #[inline]
    pub(crate) fn put_long(&mut self, code: usize, ws: Vec<Watcher>) {
        debug_assert!(self.long[code].is_empty());
        self.long[code] = ws;
    }

    /// Takes ownership of a binary list for BCP's binary pass; return it
    /// with [`Watches::put_binary`].
    #[inline]
    pub(crate) fn take_binary(&mut self, code: usize) -> Vec<BinWatcher> {
        std::mem::take(&mut self.binary[code])
    }

    /// Puts a binary list taken by [`Watches::take_binary`] back in place.
    #[inline]
    pub(crate) fn put_binary(&mut self, code: usize, ws: Vec<BinWatcher>) {
        debug_assert!(self.binary[code].is_empty());
        self.binary[code] = ws;
    }

    /// Appends one long watcher to the list of `code` — BCP's watch
    /// relocation target.
    #[inline]
    pub(crate) fn push_long(&mut self, code: usize, w: Watcher) {
        self.long[code].push(w);
    }

    /// Visits every watcher entry (long and binary) together with the
    /// clause literal it watches.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn for_each_watcher<'a>(&'a self, mut f: impl FnMut(Lit, WatchRef<'a>)) {
        for code in 0..self.long.len().min(self.binary.len()) {
            // `long[l]` is visited when `l` becomes true, i.e. it holds
            // the clauses containing `¬l` — the negation is the watched
            // clause literal.
            let watched = !Lit::from_code(code as u32);
            for w in &self.long[code] {
                f(watched, WatchRef::Long(w));
            }
            for w in &self.binary[code] {
                f(watched, WatchRef::Binary(w));
            }
        }
    }

    /// Table-size self-check against the solver's variable count
    /// (`tables:`-prefixed, so the auditor can stop before deeper checks
    /// would index out of bounds).
    pub(crate) fn self_check_sizes(&self, num_vars: usize, out: &mut Vec<String>) {
        for (name, len) in [
            ("watches", self.long.len()),
            ("bin_watches", self.binary.len()),
        ] {
            if len != 2 * num_vars {
                out.push(format!(
                    "tables: {name} covers {len} literal codes, expected {}",
                    2 * num_vars
                ));
            }
        }
    }

    /// Watch-list structure check, plus the semantic two-watched-literal
    /// contract when the propagation queue is drained: every live clause
    /// is watched exactly twice, long clauses at their first two literals,
    /// binary clauses inline with the correct partner, blockers inside
    /// their clause, no watcher dangling into garbage.
    pub(crate) fn self_check(
        &self,
        db: &ClauseDb,
        trail: &Trail,
        live: &HashSet<ClauseRef>,
        ok: bool,
        out: &mut Vec<String>,
    ) {
        let mut watch_count: HashMap<ClauseRef, usize> = HashMap::new();
        for code in 0..self.long.len().min(self.binary.len()) {
            // `long[l]` is visited when `l` becomes true, i.e. it holds
            // the clauses containing `¬l` — `watched` is the clause literal.
            let watched = !Lit::from_code(code as u32);
            for w in &self.long[code] {
                if !live.contains(&w.cref) {
                    out.push(format!(
                        "watches[{code}]: dangling long watcher {:?}",
                        w.cref
                    ));
                    continue;
                }
                let lits = db.lits(w.cref);
                if lits.len() < 3 {
                    out.push(format!(
                        "watches[{code}]: binary clause {:?} in the long lists",
                        w.cref
                    ));
                }
                if lits[0] != watched && lits[1] != watched {
                    out.push(format!(
                        "watches[{code}]: clause {:?} is not watched at its \
                         first two literals",
                        w.cref
                    ));
                }
                if !lits.contains(&w.blocker) {
                    out.push(format!(
                        "watches[{code}]: blocker of {:?} is outside the clause",
                        w.cref
                    ));
                }
                *watch_count.entry(w.cref).or_insert(0) += 1;
            }
            for w in &self.binary[code] {
                if !live.contains(&w.cref) {
                    out.push(format!(
                        "bin_watches[{code}]: dangling binary watcher {:?}",
                        w.cref
                    ));
                    continue;
                }
                let lits = db.lits(w.cref);
                if lits.len() != 2 {
                    out.push(format!(
                        "bin_watches[{code}]: long clause {:?} in the binary lists",
                        w.cref
                    ));
                } else if !(lits.contains(&watched) && lits.contains(&w.other)) {
                    out.push(format!(
                        "bin_watches[{code}]: inline watcher does not encode \
                         clause {:?}",
                        w.cref
                    ));
                }
                *watch_count.entry(w.cref).or_insert(0) += 1;
            }
        }
        for &cref in live {
            let n = watch_count.get(&cref).copied().unwrap_or(0);
            if n != 2 {
                out.push(format!(
                    "watches: live clause {cref:?} is watched {n} time(s), \
                     expected exactly 2"
                ));
            }
        }
        // The semantic contract only holds once BCP has drained the queue;
        // a refuted solver keeps a falsified clause by design.
        if ok && trail.queue_drained() {
            for &cref in live {
                let lits = db.lits(cref);
                let satisfied = lits.iter().any(|&l| trail.lit_value(l) == LBool::True);
                let watches_ok = trail.lit_value(lits[0]) != LBool::False
                    && trail.lit_value(lits[1]) != LBool::False;
                if !satisfied && !watches_ok {
                    out.push(format!(
                        "watch semantics: clause {cref:?} {lits:?} has a \
                         falsified watched literal but no satisfying literal \
                         on a fully propagated trail"
                    ));
                }
            }
        }
    }

    /// Empties the long watch list of `code` (test-only): lets the
    /// auditors prove they catch a missing watch.
    #[cfg(test)]
    pub(crate) fn test_clear_long(&mut self, code: usize) {
        self.long[code].clear();
    }
}

impl std::fmt::Debug for Watches {
    /// Summarizes the watch-list population: covered codes, total entries,
    /// and how many lists are non-empty.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let long_entries: usize = self.long.iter().map(Vec::len).sum();
        let bin_entries: usize = self.binary.iter().map(Vec::len).sum();
        let populated = self.long.iter().filter(|w| !w.is_empty()).count()
            + self.binary.iter().filter(|w| !w.is_empty()).count();
        f.debug_struct("Watches")
            .field("codes", &self.long.len())
            .field("long_watchers", &long_entries)
            .field("binary_watchers", &bin_entries)
            .field("populated_lists", &populated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause_db::ClauseDb;
    use berkmin_cnf::Lit;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn detach_is_the_inverse_of_attach() {
        let mut db = ClauseDb::new();
        let mut w = Watches::new();
        w.grow(3);
        let long = db.add_original(&[lit(1), lit(2), lit(3)]);
        let bin = db.add_original(&[lit(-1), lit(2)]);
        w.attach(long, db.lits(long));
        w.attach(bin, db.lits(bin));
        let mut count = 0;
        w.for_each_watcher(|_, _| count += 1);
        assert_eq!(count, 4, "each clause is watched twice");

        let lits: Vec<Lit> = db.lits(long).to_vec();
        w.detach(long, &lits);
        let lits: Vec<Lit> = db.lits(bin).to_vec();
        w.detach(bin, &lits);
        let mut count = 0;
        w.for_each_watcher(|_, _| count += 1);
        assert_eq!(count, 0, "detach removed every entry");
    }
}
