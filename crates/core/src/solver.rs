//! The solver facade: composes the state subsystems and exposes the
//! public session API.
//!
//! The heavy machinery lives in the subsystem modules — assignment state
//! in [`crate::trail`], watched-literal indexes in [`crate::watch`], the
//! cadence/budget scheduler in [`crate::limits`], the CDCL loop in
//! [`crate::search`]. This module owns the [`Solver`] struct that wires
//! them together plus the thin API that does not run search: construction,
//! clause ingestion, assumption staging, freeze/melt, accessors, and the
//! `solve()` entry point.

use berkmin_cnf::{Cnf, LBool, Lit, Var};

use crate::clause_db::{ClauseDb, ClauseRef};
use crate::config::{ActivityIndex, Budget, SolverConfig};
use crate::heap::VarHeap;
use crate::limits::SearchLimits;
use crate::preprocess::Reconstructor;
use crate::proof::{NoProof, ProofSink};
use crate::rng::XorShift64;
use crate::search::{SolveEvents, SolveStatus};
use crate::stats::Stats;
use crate::trail::Trail;
use crate::watch::Watches;

/// The BerkMin CDCL SAT-solver.
///
/// Construct through [`SolverBuilder`](crate::SolverBuilder) (which owns
/// the configuration, proof sink and solve-event hooks), or with the
/// [`Solver::new`] / [`Solver::with_config`] shortcuts. Per call, stage
/// assumptions with [`Solver::assume`] and run [`Solver::solve`] — the one
/// entry point for plain, assumption, and proof-logged solving alike.
///
/// # Examples
///
/// ```
/// use berkmin::{Solver, SolverConfig};
/// use berkmin_cnf::{Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let x = cnf.fresh_var();
/// let y = cnf.fresh_var();
/// cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
/// cnf.add_clause([Lit::neg(x)]);
///
/// let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
/// let status = solver.solve();
/// let model = status.model().expect("satisfiable");
/// assert!(cnf.is_satisfied_by(model));
/// ```
pub struct Solver {
    pub(crate) config: SolverConfig,
    pub(crate) db: ClauseDb,
    /// The two-watched-literal indexes (long lists with blockers, inline
    /// binary lists) — see [`crate::watch`].
    pub(crate) watches: Watches,
    /// The assignment state: values, levels, reasons, the chronological
    /// trail with its decision markers, and the BCP queue head — see
    /// [`crate::trail`].
    pub(crate) trail: Trail,
    /// The search scheduler: per-call budget baseline, restart clock and
    /// maintenance cadence — see [`crate::limits`].
    pub(crate) limits: SearchLimits,
    /// `var_activity(x)` counters (paper §4).
    pub(crate) var_activity: Vec<u64>,
    /// `lit_activity(l)` counters indexed by literal code (paper §7).
    pub(crate) lit_activity: Vec<u64>,
    /// VSIDS per-literal counters (zChaff baseline).
    pub(crate) vsids: Vec<u64>,
    pub(crate) heap: VarHeap,
    pub(crate) seen: Vec<bool>,
    /// LBD computation scratch: `lbd_stamp[level] == lbd_stamp_gen` marks a
    /// decision level as already counted for the clause under measurement
    /// (the Glucose stamping trick — no clearing pass needed).
    pub(crate) lbd_stamp: Vec<u64>,
    /// Generation counter for [`Solver::lbd_stamp`].
    pub(crate) lbd_stamp_gen: u64,
    /// Scratch buffer the share-import source fills at restart boundaries
    /// (kept on the solver to avoid a per-restart allocation).
    pub(crate) import_buf: Vec<Vec<Lit>>,
    pub(crate) rng: XorShift64,
    pub(crate) stats: Stats,
    pub(crate) ok: bool,
    pub(crate) num_vars: usize,
    /// Current old-clause activity threshold (paper §8: starts at 60, rises).
    pub(crate) old_act_threshold: u32,
    /// Set once the empty clause has been reported to the proof sink.
    pub(crate) emitted_empty: bool,
    /// Assumptions of the current [`Solver::solve`] call, enqueued lazily
    /// as pseudo-decisions at levels `1..=k` below any real decision.
    pub(crate) assumptions: Vec<Lit>,
    /// Failed-assumption core of the last assumption-UNSAT answer (empty
    /// after an absolute refutation or a SAT/Unknown answer).
    pub(crate) failed: Vec<Lit>,
    /// Assumptions staged by [`Solver::assume`] since the last solve call;
    /// consumed (IPASIR-style) by the next [`Solver::solve`].
    pub(crate) pending_assumptions: Vec<Lit>,
    /// The construction-time proof sink every [`Solver::solve`] call
    /// reports to ([`NoProof`] unless attached via
    /// [`SolverBuilder::proof`](crate::SolverBuilder::proof)).
    pub(crate) proof: Box<dyn ProofSink>,
    /// Terminate / learnt-clause hooks (see [`SolveEvents`]).
    pub(crate) events: SolveEvents,
    /// `frozen[v]`: the preprocessor may not eliminate `v` (user-frozen
    /// via [`Solver::freeze`], or auto-frozen as an assumption variable).
    pub(crate) frozen: Vec<bool>,
    /// `eliminated[v]`: `v` was dissolved by bounded variable elimination
    /// — absent from every live clause, watcher, trail entry and heap
    /// slot; mentioning it again panics (see [`Solver::freeze`]).
    pub(crate) eliminated: Vec<bool>,
    /// Reconstruction stack extending SAT models over eliminated variables.
    pub(crate) reconstructor: Reconstructor,
}

impl std::fmt::Debug for Solver {
    /// The solver holds closures and a `dyn` proof sink, so `Debug`
    /// prints a summary rather than the raw fields: the subsystem
    /// summaries (trail heights per level, watch-list population) and the
    /// scheduler's next-due actions answer "what level am I at and why".
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars)
            .field("num_live_clauses", &self.db.num_live())
            .field("num_learnt_clauses", &self.db.num_learnt())
            .field("ok", &self.ok)
            .field("trail", &self.trail)
            .field("watches", &self.watches)
            .field("limits", &self.limits)
            .field("next_due", &self.limits.next_due(&self.stats, &self.config))
            .field("pending_assumptions", &self.pending_assumptions)
            .field("events", &self.events)
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Solver {
    /// Creates a solver for `cnf` under `config`.
    pub fn new(cnf: &Cnf, config: SolverConfig) -> Self {
        let mut s = Solver::with_config(config);
        s.ensure_vars(cnf.num_vars());
        for clause in cnf {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Creates an empty solver under `config` (see [`Solver::add_clause`]).
    pub fn with_config(config: SolverConfig) -> Self {
        let old_act_threshold = match config.db_policy {
            crate::DbPolicy::BerkMin { old_act_init, .. } => old_act_init,
            _ => 0,
        };
        let rng = XorShift64::new(config.seed);
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Watches::new(),
            trail: Trail::new(),
            limits: SearchLimits::new(),
            var_activity: Vec::new(),
            lit_activity: Vec::new(),
            vsids: Vec::new(),
            heap: VarHeap::new(),
            seen: Vec::new(),
            lbd_stamp: vec![0],
            lbd_stamp_gen: 0,
            import_buf: Vec::new(),
            rng,
            stats: Stats::new(),
            ok: true,
            num_vars: 0,
            old_act_threshold,
            emitted_empty: false,
            assumptions: Vec::new(),
            failed: Vec::new(),
            pending_assumptions: Vec::new(),
            proof: Box::new(NoProof),
            events: SolveEvents::default(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            reconstructor: Reconstructor::default(),
        }
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the per-variable tables to cover `n` variables without
    /// adding any clause, keeping the solver's variable space — and
    /// therefore its models — in sync with external allocators (e.g.
    /// Tseitin or activation literals).
    pub fn reserve_vars(&mut self, n: usize) {
        self.ensure_vars(n);
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The configuration this solver runs under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the resource budget. Budgets are accounted **per solve
    /// call**: every call measures its own spend against the configured
    /// limits, so an aborted run can simply be called again — with or
    /// without a new budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// The failed-assumption core of the most recent assumption-carrying
    /// [`Solver::solve`] call that returned [`SolveStatus::Unsat`]: a
    /// subset `C` of the assumptions such that the formula conjoined with
    /// `C` is unsatisfiable, extracted by final-conflict analysis. Empty
    /// when the formula is unsatisfiable outright (no assumptions needed),
    /// and after any SAT or Unknown answer.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Number of variables currently queued in the decision heap (only
    /// populated under [`ActivityIndex::Heap`]); lets incremental callers
    /// check that heuristic state survives between solve calls.
    pub fn decision_heap_len(&self) -> usize {
        self.heap.len()
    }

    /// `false` once the clause set has been proven contradictory.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Current assignment of `var`.
    pub fn value(&self, var: Var) -> LBool {
        self.trail.value_opt(var)
    }

    /// Current `var_activity` counter of `var` (paper §4) — how much the
    /// variable has participated in conflict-making, after aging.
    pub fn var_activity(&self, var: Var) -> u64 {
        self.var_activity.get(var.index()).copied().unwrap_or(0)
    }

    /// Number of live clauses (original + learnt) currently in the database.
    pub fn num_live_clauses(&self) -> usize {
        self.db.num_live()
    }

    /// Number of live learnt clauses (the conflict-clause stack size).
    pub fn num_learnt_clauses(&self) -> usize {
        self.db.num_learnt()
    }

    /// Number of live original (problem) clauses.
    pub fn num_original_clauses(&self) -> usize {
        self.db.num_original()
    }

    /// Grows per-variable tables to cover `n` variables.
    pub(crate) fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.watches.grow(n);
        self.trail.grow(n);
        self.var_activity.resize(n, 0);
        self.lit_activity.resize(2 * n, 0);
        self.vsids.resize(2 * n, 0);
        self.seen.resize(n, false);
        self.frozen.resize(n, false);
        self.eliminated.resize(n, false);
        // Decision levels range over 0..=n, one stamp slot per level.
        self.lbd_stamp.resize(n + 1, 0);
        self.heap.grow(n);
        if self.config.activity_index == ActivityIndex::Heap {
            for i in self.num_vars..n {
                self.heap.insert(Var::new(i as u32), &self.var_activity);
            }
        }
        self.num_vars = n;
    }

    /// Adds a clause to the original formula.
    ///
    /// May be called before the first solve or between solves
    /// (incremental use); leftover search state is undone first.
    /// Tautologies are dropped, duplicate literals merged, literals false
    /// at level 0 stripped. Returns `false` if the formula has become
    /// trivially unsatisfiable (an empty clause arose).
    ///
    /// # Panics
    ///
    /// Panics if the clause mentions an eliminated variable — see the
    /// freeze/melt contract on [`Solver::freeze`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        let max_var = ls.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.ensure_vars(max_var);
        if let Some(l) = ls.iter().find(|l| self.eliminated[l.var().index()]) {
            panic!(
                "add_clause mentions eliminated variable {:?}: freeze it \
                 before solving, or disable variable elimination \
                 (SimplifyConfig::var_elim)",
                l.var()
            );
        }
        self.stats.initial_clauses += 1;
        if !self.ok {
            return false;
        }
        ls.sort_unstable();
        ls.dedup();
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology carries no constraint
        }
        if ls.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        ls.retain(|&l| self.lit_value(l) != LBool::False);
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(ls[0], None);
                true
            }
            _ => {
                let cref = self.db.add_original(&ls);
                self.attach(cref);
                let live = self.db.num_live() as u64;
                self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
                true
            }
        }
    }

    /// Current decision level (0 = root).
    #[inline]
    pub(crate) fn decision_level(&self) -> usize {
        self.trail.decision_level()
    }

    /// Value of a literal under the current partial assignment.
    #[inline]
    pub(crate) fn lit_value(&self, l: Lit) -> LBool {
        self.trail.lit_value(l)
    }

    /// Assigns `l` true with `reason`, pushing it on the trail.
    #[inline]
    pub(crate) fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        self.trail.assign(l, reason);
    }

    /// Opens a new decision level and assigns the decision literal (the
    /// internal trail operation behind each search decision).
    #[inline]
    pub(crate) fn push_decision(&mut self, l: Lit) {
        self.trail.push_decision(l);
    }

    /// Undoes all assignments above `level`, returning freed variables
    /// to the decision heap (under [`ActivityIndex::Heap`]).
    pub(crate) fn cancel_until(&mut self, level: usize) {
        let heap = &mut self.heap;
        let var_activity = &self.var_activity;
        let use_heap = self.config.activity_index == ActivityIndex::Heap;
        self.trail.backtrack_to(level, |v| {
            if use_heap {
                heap.insert(v, var_activity);
            }
        });
    }

    /// Bumps `var_activity(v)` by 1 (paper §4) and fixes up the heap index.
    #[inline]
    pub(crate) fn bump_var(&mut self, v: Var) {
        self.var_activity[v.index()] += 1;
        if self.config.activity_index == ActivityIndex::Heap {
            self.heap.bumped(v, &self.var_activity);
        }
    }

    /// Stages an assumption for the next [`Solver::solve`] call
    /// (IPASIR-style). Assumptions accumulate until the next solve, which
    /// consumes them all — afterwards the solver is unconstrained again.
    /// During that call they act as *pseudo-decisions* at levels `1..=k`
    /// below every real decision. They are **not** clauses: nothing is
    /// added to the database, learnt clauses stay consequences of the
    /// formula alone, and the next call may assume a different set while
    /// reusing the warm database, activities and saved polarities.
    ///
    /// # Examples
    ///
    /// ```
    /// use berkmin::{Solver, SolverConfig};
    /// use berkmin_cnf::Lit;
    ///
    /// let mut solver = Solver::with_config(SolverConfig::berkmin());
    /// solver.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    /// solver.assume(Lit::from_dimacs(-1));
    /// let status = solver.solve(); // SAT; the model sets x2
    /// assert!(status.model().unwrap().satisfies(Lit::from_dimacs(2)));
    /// assert!(solver.solve().is_sat()); // assumptions were consumed
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lit`'s variable has been eliminated by the preprocessor
    /// — see the freeze/melt contract on [`Solver::freeze`].
    pub fn assume(&mut self, lit: Lit) {
        if self
            .eliminated
            .get(lit.var().index())
            .copied()
            .unwrap_or(false)
        {
            panic!(
                "assume mentions eliminated variable {:?}: freeze it before \
                 solving, or disable variable elimination \
                 (SimplifyConfig::var_elim)",
                lit.var()
            );
        }
        self.pending_assumptions.push(lit);
    }

    /// Protects `var` from bounded variable elimination.
    ///
    /// **The freeze/melt contract.** With
    /// [`SimplifyConfig::var_elim`](crate::SimplifyConfig) enabled, the
    /// preprocessor may dissolve a variable into resolvents; an eliminated
    /// variable is gone from the formula, and mentioning it again in
    /// [`Solver::add_clause`] or [`Solver::assume`] panics (its deleted
    /// defining clauses cannot be restored soundly under a DRAT proof).
    /// Incremental users must therefore freeze every variable they intend
    /// to constrain or assume *after* the next solve call. Assumption
    /// variables of each call are frozen automatically, as are variables
    /// with no occurrences. [`Solver::melt`] lifts the protection again
    /// once a variable's incremental role is over.
    pub fn freeze(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
        self.frozen[var.index()] = true;
    }

    /// Lifts a [`Solver::freeze`]: the next simplifier run may eliminate
    /// `var` again.
    pub fn melt(&mut self, var: Var) {
        if let Some(f) = self.frozen.get_mut(var.index()) {
            *f = false;
        }
    }

    /// Whether `var` is currently protected from elimination.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen.get(var.index()).copied().unwrap_or(false)
    }

    /// Whether the preprocessor has eliminated `var` (see
    /// [`Solver::freeze`] for the contract this implies).
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated.get(var.index()).copied().unwrap_or(false)
    }

    /// Solves the formula under the assumptions staged by
    /// [`Solver::assume`] since the last call (consuming them), reporting
    /// learnt clauses and deletions to the construction-time proof sink.
    ///
    /// May be called repeatedly: a previous answer's search tree is undone
    /// first, so clauses can be added between calls (incremental use)
    /// while learnt clauses, activities and saved heuristic state stay
    /// warm. Budgets are accounted per call, so a budget-aborted run
    /// continues by calling again (optionally after [`Solver::set_budget`]).
    ///
    /// Returns [`SolveStatus::Unsat`] both when the formula is refuted
    /// outright and when it merely conflicts with the assumptions;
    /// [`Solver::failed_assumptions`] distinguishes the two. An
    /// assumption-UNSAT answer emits **no** empty clause to the proof sink
    /// (the formula itself is not refuted); only an absolute refutation
    /// concludes the proof.
    pub fn solve(&mut self) -> SolveStatus {
        // The sink is swapped out for the duration of the call so the
        // search (which borrows `self` mutably) can report to it.
        let mut sink = std::mem::replace(&mut self.proof, Box::new(NoProof));
        let status = self.solve_session(&mut *sink);
        self.proof = sink;
        status
    }
}
