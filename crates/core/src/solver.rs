//! The solver object: state, BCP, and the main CDCL loop.

use berkmin_cnf::{Assignment, Cnf, LBool, Lit, Var};

use crate::clause_db::{ClauseDb, ClauseRef};
use crate::config::{ActivityIndex, Budget, DecisionStrategy, RestartPolicy, SolverConfig};
use crate::heap::VarHeap;
use crate::preprocess::Reconstructor;
use crate::proof::{NoProof, ProofSink};
use crate::rng::XorShift64;
use crate::stats::Stats;
use crate::telemetry::{SolveEvent, SolveObserver, SolveVerdict};

/// Why a run stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The conflict budget was exhausted — the deterministic analog of the
    /// paper's wall-clock timeouts ("aborted" rows in Tables 2, 4, 7).
    ConflictBudget,
    /// The decision budget was exhausted.
    DecisionBudget,
    /// The propagation budget was exhausted.
    PropagationBudget,
    /// The terminate callback (see
    /// [`SolverBuilder::on_terminate`](crate::SolverBuilder::on_terminate))
    /// asked the solver to stop. Budgets are unaffected: a later
    /// [`Solver::solve`] call gets its usual per-call allowance.
    Callback,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::ConflictBudget => write!(f, "conflict budget exhausted"),
            StopReason::DecisionBudget => write!(f, "decision budget exhausted"),
            StopReason::PropagationBudget => write!(f, "propagation budget exhausted"),
            StopReason::Callback => write!(f, "terminate callback requested stop"),
        }
    }
}

/// A boxed terminate callback: polled at solve entry, at restart
/// boundaries, and every 1024 conflicts; returning `true` aborts with
/// [`StopReason::Callback`].
pub type TerminateCallback = Box<dyn FnMut() -> bool>;

/// A boxed learnt-clause callback: receives each conflict-derived learnt
/// clause (asserting literal first) whose length is within the cap it was
/// registered with.
pub type LearntCallback = Box<dyn FnMut(&[Lit])>;

/// A boxed share-export callback: receives each conflict-derived learnt
/// clause that passes the export filter (length ≤ 2, or LBD within the
/// registered cap), together with its LBD — the portfolio's outbound half
/// of learnt-clause sharing.
pub type ExportCallback = Box<dyn FnMut(&[Lit], u32)>;

/// A boxed share-import source: polled at solve entry and at every restart
/// boundary, it pushes candidate clauses into the supplied buffer; the solver integrates them
/// at decision level 0 (level-0-simplified, attached as learnt clauses).
/// Every pushed clause **must** be implied by the original formula — the
/// portfolio's inbound half of learnt-clause sharing.
pub type ImportCallback = Box<dyn FnMut(&mut Vec<Vec<Lit>>)>;

/// The solve-event hooks a solver carries (installed at construction time
/// through [`SolverBuilder`](crate::SolverBuilder), replaceable later via
/// [`Solver::set_terminate`] / [`Solver::set_learnt_callback`]). Callbacks
/// receive no solver reference — they observe only what they captured plus
/// the arguments passed, so they cannot perturb the search.
#[derive(Default)]
pub(crate) struct SolveEvents {
    /// Polled at solve entry, at every restart boundary, and every 1024
    /// conflicts (so a restart-free search cannot starve it); returning
    /// `true` aborts the call with [`StopReason::Callback`].
    pub(crate) terminate: Option<TerminateCallback>,
    /// Fired once per conflict-derived learnt clause of length ≤ the cap
    /// (asserting literal first), right after the clause is reported to the
    /// proof sink and before search resumes.
    pub(crate) on_learnt: Option<(usize, LearntCallback)>,
    /// Share-export hook: fired (after `on_learnt`) for every learnt clause
    /// with `len ≤ 2 || lbd ≤ cap`, carrying the clause and its LBD.
    pub(crate) export: Option<(u32, ExportCallback)>,
    /// Share-import source: polled at solve entry and at every restart
    /// boundary (after §8 database reduction); fetched clauses are
    /// integrated at level 0.
    pub(crate) import: Option<ImportCallback>,
    /// Structured telemetry observer (see [`crate::telemetry`]): receives
    /// typed [`SolveEvent`]s. Every emission site checks this `Option`
    /// once, so an observer-less solver pays nothing.
    pub(crate) observer: Option<Box<dyn SolveObserver>>,
}

impl std::fmt::Debug for SolveEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveEvents")
            .field("terminate", &self.terminate.is_some())
            .field("on_learnt", &self.on_learnt.as_ref().map(|(cap, _)| *cap))
            .field("export", &self.export.as_ref().map(|(cap, _)| *cap))
            .field("import", &self.import.is_some())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// Result of [`Solver::solve`].
///
/// For runs under assumptions (staged with [`Solver::assume`]),
/// [`SolveStatus::Unsat`] means *unsatisfiable under those assumptions*;
/// consult [`Solver::failed_assumptions`] to distinguish an absolute
/// refutation (empty core) from an assumption conflict (non-empty core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveStatus {
    /// Satisfiable; carries a model that satisfies every original clause.
    Sat(Assignment),
    /// Proven unsatisfiable.
    Unsat,
    /// Gave up because a [`Budget`] limit was hit.
    Unknown(StopReason),
}

impl SolveStatus {
    /// `true` iff the status is [`SolveStatus::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveStatus::Sat(_))
    }

    /// `true` iff the status is [`SolveStatus::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveStatus::Unsat)
    }

    /// `true` iff the run was aborted on a budget.
    pub fn is_unknown(&self) -> bool {
        matches!(self, SolveStatus::Unknown(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveStatus::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A watch-list entry for a clause of length ≥ 3: the clause plus a
/// *blocker* literal whose truth lets BCP skip the clause without touching
/// its memory (SATO/Chaff-style fast BCP, paper §2).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub cref: ClauseRef,
    pub blocker: Lit,
}

/// A binary clause stored *inline* in the watch list: the other literal is
/// the watcher, so propagating through a binary clause never touches the
/// clause arena. `cref` exists only to serve as the reason/conflict handle
/// for conflict analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinWatcher {
    /// The clause's other literal — everything BCP needs.
    pub other: Lit,
    /// Arena record backing this clause (activity, stack age, proofs).
    pub cref: ClauseRef,
}

/// The BerkMin CDCL SAT-solver.
///
/// Construct through [`SolverBuilder`](crate::SolverBuilder) (which owns
/// the configuration, the proof sink and the solve-event hooks), or with
/// the [`Solver::new`] / [`Solver::with_config`] shortcuts when none of
/// those attachments are needed. Per call, stage assumptions with
/// [`Solver::assume`] and then run [`Solver::solve`] — the one entry point
/// for plain, assumption, and proof-logged solving alike.
///
/// # Examples
///
/// ```
/// use berkmin::{Solver, SolverConfig};
/// use berkmin_cnf::{Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let x = cnf.fresh_var();
/// let y = cnf.fresh_var();
/// cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
/// cnf.add_clause([Lit::neg(x)]);
///
/// let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
/// let status = solver.solve();
/// let model = status.model().expect("satisfiable");
/// assert!(cnf.is_satisfied_by(model));
/// ```
pub struct Solver {
    pub(crate) config: SolverConfig,
    pub(crate) db: ClauseDb,
    /// Watch lists indexed by literal code: `watches[l.code()]` holds the
    /// clauses of length ≥ 3 in which `¬l` is watched (visited when `l`
    /// becomes true). Binary clauses live in [`Solver::bin_watches`].
    pub(crate) watches: Vec<Vec<Watcher>>,
    /// Inline binary watch lists: `bin_watches[l.code()]` holds, for every
    /// live binary clause containing `¬l`, the clause's *other* literal
    /// (plus its arena handle) — visited when `l` becomes true, without any
    /// arena access. These double as the occurrence lists behind `nb_two`
    /// (paper §7): the binary clauses containing `l` are exactly the
    /// entries of `bin_watches[(¬l).code()]`.
    pub(crate) bin_watches: Vec<Vec<BinWatcher>>,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    /// `var_activity(x)` counters (paper §4).
    pub(crate) var_activity: Vec<u64>,
    /// `lit_activity(l)` counters indexed by literal code (paper §7).
    pub(crate) lit_activity: Vec<u64>,
    /// VSIDS per-literal counters (zChaff baseline).
    pub(crate) vsids: Vec<u64>,
    pub(crate) heap: VarHeap,
    pub(crate) seen: Vec<bool>,
    /// LBD computation scratch: `lbd_stamp[level] == lbd_stamp_gen` marks a
    /// decision level as already counted for the clause under measurement
    /// (the Glucose stamping trick — no clearing pass needed).
    pub(crate) lbd_stamp: Vec<u64>,
    /// Generation counter for [`Solver::lbd_stamp`].
    pub(crate) lbd_stamp_gen: u64,
    /// Scratch buffer the share-import source fills at restart boundaries
    /// (kept on the solver to avoid a per-restart allocation).
    import_buf: Vec<Vec<Lit>>,
    pub(crate) rng: XorShift64,
    pub(crate) stats: Stats,
    pub(crate) ok: bool,
    pub(crate) num_vars: usize,
    pub(crate) conflicts_since_restart: u64,
    /// Current old-clause activity threshold (paper §8: starts at 60, rises).
    pub(crate) old_act_threshold: u32,
    /// Set once the empty clause has been reported to the proof sink.
    emitted_empty: bool,
    /// Assumptions of the current [`Solver::solve_with_assumptions`] call,
    /// enqueued lazily as pseudo-decisions at levels `1..=assumptions.len()`
    /// below any real decision.
    pub(crate) assumptions: Vec<Lit>,
    /// Failed-assumption core of the last assumption-UNSAT answer (empty
    /// after an absolute refutation or a SAT/Unknown answer).
    pub(crate) failed: Vec<Lit>,
    /// Stats snapshot taken at solve entry: budgets are per-call, so each
    /// check compares against the growth since this baseline rather than
    /// the lifetime totals (which would make a second call inherit the
    /// previous call's spend).
    budget_base: BudgetBase,
    /// Assumptions staged by [`Solver::assume`] since the last solve call;
    /// consumed (IPASIR-style) by the next [`Solver::solve`].
    pending_assumptions: Vec<Lit>,
    /// The construction-time proof sink every [`Solver::solve`] call
    /// reports to ([`NoProof`] unless a sink was attached via
    /// [`SolverBuilder::proof`](crate::SolverBuilder::proof)).
    proof: Box<dyn ProofSink>,
    /// Terminate / learnt-clause hooks (see [`SolveEvents`]).
    events: SolveEvents,
    /// `frozen[v]`: the preprocessor may not eliminate `v` (user-frozen
    /// via [`Solver::freeze`], or auto-frozen as an assumption variable).
    pub(crate) frozen: Vec<bool>,
    /// `eliminated[v]`: `v` was dissolved by bounded variable elimination —
    /// absent from every live clause, the watches, the trail and the heap;
    /// mentioning it again in [`Solver::add_clause`]/[`Solver::assume`]
    /// panics (see the freeze/melt contract on [`Solver::freeze`]).
    pub(crate) eliminated: Vec<bool>,
    /// Reconstruction stack extending SAT models over eliminated variables.
    pub(crate) reconstructor: Reconstructor,
    /// Whether the preprocessor has run at least once (the default
    /// configuration simplifies only the first solve call).
    pub(crate) simplified_once: bool,
}

impl std::fmt::Debug for Solver {
    /// The solver holds closures and a `dyn` proof sink, so `Debug` prints
    /// a summary of the search state rather than the raw fields.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars)
            .field("num_live_clauses", &self.db.num_live())
            .field("num_learnt_clauses", &self.db.num_learnt())
            .field("decision_level", &self.decision_level())
            .field("ok", &self.ok)
            .field("pending_assumptions", &self.pending_assumptions)
            .field("events", &self.events)
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Conflicts between terminate-callback polls inside a search tree. Restart
/// boundaries also poll, but a policy like [`RestartPolicy::Never`] (or a
/// huge fixed interval) would otherwise never hand control back.
const TERMINATE_POLL_CONFLICTS: u64 = 1024;

/// Per-solve-call baseline of the budgeted counters (plus restarts, which
/// are not budgeted but are reported as a per-call delta in
/// [`SolveEvent::SolveDone`]).
#[derive(Debug, Clone, Copy, Default)]
struct BudgetBase {
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
}

impl Solver {
    /// Creates a solver for `cnf` under `config`.
    pub fn new(cnf: &Cnf, config: SolverConfig) -> Self {
        let mut s = Solver::with_config(config);
        s.ensure_vars(cnf.num_vars());
        for clause in cnf {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Creates an empty solver (no variables, no clauses) under `config`;
    /// add clauses with [`Solver::add_clause`].
    pub fn with_config(config: SolverConfig) -> Self {
        let old_act_threshold = match config.db_policy {
            crate::DbPolicy::BerkMin { old_act_init, .. } => old_act_init,
            _ => 0,
        };
        let rng = XorShift64::new(config.seed);
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            var_activity: Vec::new(),
            lit_activity: Vec::new(),
            vsids: Vec::new(),
            heap: VarHeap::new(),
            seen: Vec::new(),
            lbd_stamp: vec![0],
            lbd_stamp_gen: 0,
            import_buf: Vec::new(),
            rng,
            stats: Stats::new(),
            ok: true,
            num_vars: 0,
            conflicts_since_restart: 0,
            old_act_threshold,
            emitted_empty: false,
            assumptions: Vec::new(),
            failed: Vec::new(),
            budget_base: BudgetBase::default(),
            pending_assumptions: Vec::new(),
            proof: Box::new(NoProof),
            events: SolveEvents::default(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            reconstructor: Reconstructor::default(),
            simplified_once: false,
        }
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the per-variable tables to cover `n` variables without adding
    /// any clause. Incremental callers that allocate variables externally
    /// (e.g. Tseitin or activation literals) use this to keep the solver's
    /// variable space — and therefore its models — in sync with theirs.
    pub fn reserve_vars(&mut self, n: usize) {
        self.ensure_vars(n);
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The configuration this solver runs under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the resource budget. Budgets are accounted **per solve
    /// call**: every call measures its own spend against the configured
    /// limits, so an aborted run can simply be called again (learnt clauses
    /// and heuristic state carry over) — with or without a new budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// The failed-assumption core of the most recent assumption-carrying
    /// [`Solver::solve`] call that returned
    /// [`SolveStatus::Unsat`]: a subset `C` of the assumptions such that the
    /// formula conjoined with `C` is unsatisfiable, extracted by
    /// final-conflict analysis over the implication graph.
    ///
    /// Empty when the formula is unsatisfiable outright (no assumptions
    /// needed), and after any SAT or Unknown answer.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Number of variables currently queued in the decision heap (only
    /// populated under [`ActivityIndex::Heap`]). Exposed so incremental
    /// callers can check that heuristic state survives between solve calls.
    pub fn decision_heap_len(&self) -> usize {
        self.heap.len()
    }

    /// `false` once the clause set has been proven contradictory.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Current assignment of `var` (for inspection/debugging).
    pub fn value(&self, var: Var) -> LBool {
        self.assigns
            .get(var.index())
            .copied()
            .unwrap_or(LBool::Undef)
    }

    /// Current `var_activity` counter of `var` (paper §4) — how much the
    /// variable has participated in conflict-making, after aging. Exposed
    /// for instrumentation (e.g. the Fig. 1 idle/active experiment).
    pub fn var_activity(&self, var: Var) -> u64 {
        self.var_activity.get(var.index()).copied().unwrap_or(0)
    }

    /// Number of live clauses (original + learnt) currently in the database.
    pub fn num_live_clauses(&self) -> usize {
        self.db.num_live()
    }

    /// Number of live learnt clauses — the current conflict-clause stack
    /// size (paper §5/§8).
    pub fn num_learnt_clauses(&self) -> usize {
        self.db.num_learnt()
    }

    /// Number of live original (problem) clauses.
    pub fn num_original_clauses(&self) -> usize {
        self.db.num_original()
    }

    /// Grows per-variable tables to cover `n` variables.
    pub(crate) fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.watches.resize(2 * n, Vec::new());
        self.bin_watches.resize(2 * n, Vec::new());
        self.assigns.resize(n, LBool::Undef);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
        self.var_activity.resize(n, 0);
        self.lit_activity.resize(2 * n, 0);
        self.vsids.resize(2 * n, 0);
        self.seen.resize(n, false);
        self.frozen.resize(n, false);
        self.eliminated.resize(n, false);
        // Decision levels range over 0..=n, one stamp slot per level.
        self.lbd_stamp.resize(n + 1, 0);
        self.heap.grow(n);
        if self.config.activity_index == ActivityIndex::Heap {
            for i in self.num_vars..n {
                self.heap.insert(Var::new(i as u32), &self.var_activity);
            }
        }
        self.num_vars = n;
    }

    /// Adds a clause to the original formula.
    ///
    /// May be called before the first solve or between solves (incremental
    /// use); any leftover search state from a previous SAT answer is undone
    /// first. Tautologies are dropped, duplicate literals merged, literals
    /// false at level 0 stripped. Returns `false` if the formula has become
    /// trivially unsatisfiable (an empty clause arose).
    ///
    /// # Panics
    ///
    /// Panics if the clause mentions a variable the preprocessor has
    /// eliminated — see the freeze/melt contract on [`Solver::freeze`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        let max_var = ls.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.ensure_vars(max_var);
        if let Some(l) = ls.iter().find(|l| self.eliminated[l.var().index()]) {
            panic!(
                "add_clause mentions eliminated variable {:?}: freeze it \
                 before solving, or disable variable elimination \
                 (SimplifyConfig::var_elim)",
                l.var()
            );
        }
        self.stats.initial_clauses += 1;
        if !self.ok {
            return false;
        }
        ls.sort_unstable();
        ls.dedup();
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology carries no constraint
        }
        if ls.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        ls.retain(|&l| self.lit_value(l) != LBool::False);
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(ls[0], None);
                true
            }
            _ => {
                let cref = self.db.add_original(&ls);
                self.attach(cref);
                let live = self.db.num_live() as u64;
                self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
                true
            }
        }
    }

    /// Current decision level (0 = root).
    #[inline]
    pub(crate) fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Value of a literal under the current partial assignment.
    #[inline]
    pub(crate) fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            !v
        } else {
            v
        }
    }

    /// Assigns `l` true with `reason`, pushing it on the trail.
    pub(crate) fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(
            self.lit_value(l).is_undef(),
            "enqueue of assigned literal {l:?}"
        );
        let v = l.var().index();
        self.assigns[v] = LBool::from(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Opens a new decision level and assigns the decision literal. (The
    /// *session* method [`Solver::assume`] merely stages an assumption for
    /// the next solve call; this is the internal trail operation.)
    pub(crate) fn push_decision(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        self.unchecked_enqueue(l, None);
    }

    /// Undoes all assignments above `level`.
    pub(crate) fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if self.config.activity_index == ActivityIndex::Heap {
                self.heap.insert(v, &self.var_activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    /// Registers the two watched literals of `cref` (positions 0 and 1).
    /// Binary clauses go to the inline [`Solver::bin_watches`] lists, longer
    /// clauses to the blocker-carrying [`Solver::watches`] lists.
    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        debug_assert!(!self.db.is_garbage(cref), "attach of deleted {cref:?}");
        let (l0, l1, binary) = {
            let lits = self.db.lits(cref);
            (lits[0], lits[1], lits.len() == 2)
        };
        if binary {
            self.bin_watches[(!l0).code()].push(BinWatcher { other: l1, cref });
            self.bin_watches[(!l1).code()].push(BinWatcher { other: l0, cref });
        } else {
            self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
        }
    }

    /// Rebuilds every watch list (long and binary) from the live clause
    /// set. Only valid at decision level 0 with an empty propagation queue
    /// (i.e. during database reduction).
    pub(crate) fn rebuild_watches(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bin_watches {
            w.clear();
        }
        let live: Vec<ClauseRef> = self.db.iter_live().collect();
        for cref in live {
            debug_assert!(self.db.len(cref) >= 2);
            self.attach(cref);
        }
    }

    /// Boolean constraint propagation with two watched literals, structured
    /// as blocker-check → binary-pass → long-clause-pass: for each newly
    /// true literal the inline binary watchers are drained first (no arena
    /// access at all), then the long-clause watchers with the Chaff blocker
    /// fast path in front of any arena read.
    ///
    /// Returns the conflicting clause, if any. On conflict the propagation
    /// queue is drained so the caller sees a consistent trail.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        'queue: while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;

            // --- binary pass: the watcher *is* the other literal. ---
            let bins = std::mem::take(&mut self.bin_watches[p.code()]);
            for w in &bins {
                match self.lit_value(w.other) {
                    LBool::True => {}
                    LBool::Undef => {
                        self.stats.propagations += 1;
                        self.unchecked_enqueue(w.other, Some(w.cref));
                    }
                    LBool::False => {
                        conflict = Some(w.cref);
                        break;
                    }
                }
            }
            self.bin_watches[p.code()] = bins;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                break 'queue;
            }

            // --- long-clause pass. ---
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                // Fast path: the blocker literal already satisfies the clause.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let c = self.db.lits_mut(cref);
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], false_lit, "watch invariant violated");
                }
                let first = self.db.lits(cref)[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to move the watch to.
                let mut relocated = None;
                for (k, &lk) in self.db.lits(cref).iter().enumerate().skip(2) {
                    if self.lit_value(lk) != LBool::False {
                        relocated = Some((k, lk));
                        break;
                    }
                }
                if let Some((k, lk)) = relocated {
                    self.db.lits_mut(cref).swap(1, k);
                    self.watches[(!lk).code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit (or conflicting) under the current trail.
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    debug_assert!(self.watches[p.code()].is_empty());
                    self.watches[p.code()] = ws;
                    break 'queue;
                }
                self.stats.propagations += 1;
                self.unchecked_enqueue(first, Some(cref));
            }
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
        }
        conflict
    }

    /// Runs the compacting clause-arena garbage collector: reclaims every
    /// record marked deleted (emitting its DRAT `d` line), slides the
    /// survivors to the front of the arena, and rewrites every outstanding
    /// [`ClauseRef`] — the conflict-clause stack, the trail's reason
    /// pointers, and (by rebuilding) the watch lists. A reason whose clause
    /// was deleted belongs to a level-0 fact, whose reason is never
    /// consulted again, so it is dropped.
    ///
    /// Only valid at decision level 0 with a fully propagated trail; run at
    /// every §8 database reduction.
    pub(crate) fn collect_garbage<S: ProofSink + ?Sized>(&mut self, proof: &mut S) {
        debug_assert_eq!(self.decision_level(), 0);
        self.db.compact_stack();
        if self.db.garbage_words() == 0 {
            // Nothing was deleted or shrunk: every outstanding reference
            // (watches included) is still valid — skip the whole collection.
            return;
        }
        let (map, reclaimed) = self.db.collect(proof);
        self.stats.gc_runs += 1;
        self.stats.gc_words_reclaimed += reclaimed as u64;
        for r in &mut self.reason {
            if let Some(cref) = *r {
                *r = map.remap_live(cref);
            }
        }
        self.rebuild_watches();
    }

    /// Stages an assumption for the next [`Solver::solve`] call
    /// (IPASIR-style). Assumptions accumulate until the next solve, which
    /// consumes them all — afterwards the solver is unconstrained again.
    ///
    /// During that call they act as *pseudo-decisions* at levels
    /// `1..=k` below every real decision, so the search explores only
    /// total assignments extending them. They are **not** clauses: nothing
    /// is added to the database, the learnt clauses derived during the run
    /// are consequences of the formula alone, and the next call may use a
    /// completely different assumption set while reusing the warm
    /// learnt-clause database, activities and saved polarities.
    ///
    /// # Examples
    ///
    /// ```
    /// use berkmin::{Solver, SolverConfig};
    /// use berkmin_cnf::Lit;
    ///
    /// let mut solver = Solver::with_config(SolverConfig::berkmin());
    /// solver.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    /// solver.assume(Lit::from_dimacs(-1));
    /// let status = solver.solve(); // SAT; the model sets x2
    /// assert!(status.model().unwrap().satisfies(Lit::from_dimacs(2)));
    /// assert!(solver.solve().is_sat()); // assumptions were consumed
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lit`'s variable has been eliminated by the preprocessor —
    /// see the freeze/melt contract on [`Solver::freeze`]. (Assumption
    /// variables of a solve call are frozen automatically, so this can only
    /// fire for a variable assumed for the *first* time after elimination.)
    pub fn assume(&mut self, lit: Lit) {
        if self
            .eliminated
            .get(lit.var().index())
            .copied()
            .unwrap_or(false)
        {
            panic!(
                "assume mentions eliminated variable {:?}: freeze it before \
                 solving, or disable variable elimination \
                 (SimplifyConfig::var_elim)",
                lit.var()
            );
        }
        self.pending_assumptions.push(lit);
    }

    /// Protects `var` from bounded variable elimination.
    ///
    /// **The freeze/melt contract.** With
    /// [`SimplifyConfig::var_elim`](crate::SimplifyConfig) enabled, the
    /// preprocessor may dissolve a variable into resolvents; an eliminated
    /// variable is gone from the formula, and mentioning it again in
    /// [`Solver::add_clause`] or [`Solver::assume`] panics (its deleted
    /// defining clauses cannot be restored soundly under a DRAT proof).
    /// Incremental users must therefore freeze every variable they intend
    /// to constrain or assume *after* the next solve call. Assumption
    /// variables of each call are frozen automatically, as are variables
    /// with no occurrences (e.g. [`Solver::reserve_vars`] headroom — there
    /// is nothing to dissolve). [`Solver::melt`] lifts the protection
    /// again once a variable's incremental role is over.
    pub fn freeze(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
        self.frozen[var.index()] = true;
    }

    /// Lifts a [`Solver::freeze`]: the next simplifier run may eliminate
    /// `var` again.
    pub fn melt(&mut self, var: Var) {
        if let Some(f) = self.frozen.get_mut(var.index()) {
            *f = false;
        }
    }

    /// Whether `var` is currently protected from elimination.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen.get(var.index()).copied().unwrap_or(false)
    }

    /// Whether the preprocessor has eliminated `var` (see
    /// [`Solver::freeze`] for the contract this implies).
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated.get(var.index()).copied().unwrap_or(false)
    }

    /// Solves the formula under the assumptions staged by
    /// [`Solver::assume`] since the last call (consuming them), reporting
    /// learnt clauses and deletions to the construction-time proof sink
    /// (see [`SolverBuilder::proof`](crate::SolverBuilder::proof)).
    ///
    /// May be called repeatedly: a previous answer's search tree is undone
    /// first, so clauses can be added between calls (incremental use) while
    /// learnt clauses, variable activities and saved heuristic state stay
    /// warm. Budgets are accounted per call, so a budget-aborted run
    /// continues by simply calling again (optionally after
    /// [`Solver::set_budget`]).
    ///
    /// Returns [`SolveStatus::Unsat`] both when the formula is refuted
    /// outright and when it merely conflicts with the assumptions;
    /// [`Solver::failed_assumptions`] distinguishes the two (empty vs
    /// non-empty core). An assumption-UNSAT answer emits **no** empty
    /// clause to the proof sink (the formula itself is not refuted); only
    /// an absolute refutation concludes the proof.
    pub fn solve(&mut self) -> SolveStatus {
        // The sink is swapped out for the duration of the call so the
        // search (which borrows `self` mutably throughout) can report to
        // it; `NoProof` stands in should anything inspect `self.proof`.
        let mut sink = std::mem::replace(&mut self.proof, Box::new(NoProof));
        let status = self.solve_session(&mut *sink);
        self.proof = sink;
        status
    }

    /// Deprecated pre-session entry point: stages `assumptions` and runs
    /// [`Solver::solve`] (so the construction-time proof sink, terminate
    /// callback and learnt-clause callback all still apply).
    #[deprecated(note = "stage assumptions with `assume(lit)` and call `solve()`")]
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveStatus {
        for &a in assumptions {
            self.assume(a);
        }
        self.solve()
    }

    /// Deprecated pre-session entry point: runs one [`Solver::solve`] call
    /// reporting to `proof` instead of the construction-time sink (attach
    /// the sink once via [`SolverBuilder::proof`](crate::SolverBuilder::proof)
    /// instead).
    #[deprecated(
        note = "attach the sink at construction time with `SolverBuilder::proof` and call `solve()`"
    )]
    pub fn solve_with_proof<S: ProofSink>(&mut self, proof: &mut S) -> SolveStatus {
        self.solve_session(proof)
    }

    /// Deprecated pre-session entry point: stages `assumptions` and runs
    /// one [`Solver::solve`] call reporting to `proof`.
    #[deprecated(note = "use `SolverBuilder::proof`, `assume(lit)` and `solve()`")]
    pub fn solve_with_assumptions_and_proof<S: ProofSink>(
        &mut self,
        assumptions: &[Lit],
        proof: &mut S,
    ) -> SolveStatus {
        for &a in assumptions {
            self.assume(a);
        }
        self.solve_session(proof)
    }

    /// One solve session: consumes the pending assumptions, emits the
    /// [`SolveEvent::SolveStart`]/[`SolveEvent::SolveDone`] bracket, and
    /// runs the CDCL loop ([`Solver::search`]), reporting to `proof`. The
    /// single implementation behind [`Solver::solve`] and the deprecated
    /// wrappers.
    fn solve_session(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        self.begin_solve();
        if self.events.observer.is_some() {
            let event = SolveEvent::SolveStart {
                call: self.stats.solve_calls,
                num_vars: self.num_vars,
                num_clauses: self.db.num_live(),
                assumptions: self.assumptions.len(),
            };
            self.emit(event);
        }
        let status = self.search(proof);
        if self.events.observer.is_some() {
            let event = SolveEvent::SolveDone {
                verdict: SolveVerdict::from(&status),
                conflicts: self.stats.conflicts - self.budget_base.conflicts,
                decisions: self.stats.decisions - self.budget_base.decisions,
                propagations: self.stats.propagations - self.budget_base.propagations,
                restarts: self.stats.restarts - self.budget_base.restarts,
            };
            self.emit(event);
        }
        status
    }

    /// The CDCL search proper: entry checks, import poll, then the
    /// propagate/analyze/decide loop until an answer or a stop.
    fn search(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        if self.should_terminate() {
            return SolveStatus::Unknown(StopReason::Callback);
        }
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        if self.decision_level() == 0 && self.propagate().is_some() {
            self.ok = false;
            return self.conclude_unsat(proof);
        }
        // Preprocess at solve entry, over the propagated level-0 trail:
        // subsumption, strengthening and bounded variable elimination (see
        // `crate::preprocess`), with every change reported to the proof
        // sink and eliminated variables pushed onto the reconstruction
        // stack.
        self.simplify_formula(proof);
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        // Import shared clauses at solve entry as well as at restart
        // boundaries: a budget-sliced driver (the deterministic portfolio
        // schedule) may never search long enough to restart, and entry is
        // an equally valid level-0 "between search trees" point.
        self.import_shared_clauses();
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return self.conclude_unsat(proof);
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                proof.add_clause(&learnt);
                if let Some((cap, callback)) = &mut self.events.on_learnt {
                    if learnt.len() <= *cap {
                        callback(&learnt);
                    }
                }
                // Share export: short clauses are always worth the wire,
                // longer ones only when their glue is low (paper-era
                // portfolio practice; the LBD cap is the one knob).
                let mut exported = false;
                if let Some((max_lbd, callback)) = &mut self.events.export {
                    if learnt.len() <= 2 || lbd <= *max_lbd {
                        self.stats.clauses_exported += 1;
                        callback(&learnt, lbd);
                        exported = true;
                    }
                }
                if exported && self.events.observer.is_some() {
                    let event = SolveEvent::ShareExport {
                        len: learnt.len(),
                        lbd,
                    };
                    self.emit(event);
                }
                self.cancel_until(bt_level);
                self.record_learnt(learnt);
                self.on_conflict_maintenance();
                self.paranoid_audit("after conflict handling");
                if self.events.observer.is_some() {
                    let per_call = self.spent(self.stats.conflicts, self.budget_base.conflicts);
                    if self.config.progress_every > 0 && per_call % self.config.progress_every == 0
                    {
                        let event = SolveEvent::Progress {
                            conflicts: self.stats.conflicts,
                            trail: self.trail.len(),
                            heap: self.heap.len(),
                            learnt: self.db.num_learnt(),
                            avg_lbd: self.stats.avg_lbd(),
                        };
                        self.emit(event);
                    }
                }
                // Restart boundaries alone can starve the terminate
                // callback (RestartPolicy::Never, FixedInterval(u64::MAX),
                // or a huge Luby leg), so it is also polled on a fixed
                // conflict cadence. Budgets stay untouched.
                if self.spent(self.stats.conflicts, self.budget_base.conflicts)
                    % TERMINATE_POLL_CONFLICTS
                    == 0
                    && self.should_terminate()
                {
                    return SolveStatus::Unknown(StopReason::Callback);
                }
                if self.spent(self.stats.conflicts, self.budget_base.conflicts)
                    >= self.config.budget.max_conflicts
                {
                    return SolveStatus::Unknown(StopReason::ConflictBudget);
                }
            } else {
                self.paranoid_audit("after propagation");
                if self.spent(self.stats.propagations, self.budget_base.propagations)
                    >= self.config.budget.max_propagations
                {
                    return SolveStatus::Unknown(StopReason::PropagationBudget);
                }
                if self.restart_due() {
                    // The terminate callback is polled at every restart
                    // boundary — the natural "between search trees" point
                    // the IC3/BMC drivers expect. Budgets are untouched.
                    if self.should_terminate() {
                        return SolveStatus::Unknown(StopReason::Callback);
                    }
                    self.restart(proof);
                    if !self.ok {
                        // An imported clause collapsed to the empty clause
                        // under the level-0 assignment: absolute refutation.
                        return self.conclude_unsat(proof);
                    }
                    self.paranoid_audit("after restart");
                    continue;
                }
                // Enqueue pending assumptions as pseudo-decisions: the
                // assumption at index `i` owns decision level `i + 1`. An
                // already-implied assumption opens a *dummy* level (keeping
                // index and level in lockstep); a falsified one means the
                // formula conflicts with the assumption set — extract the
                // core and answer UNSAT without touching `ok`.
                let mut asserted_assumption = false;
                while self.decision_level() < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level()];
                    match self.lit_value(a) {
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::Undef => {
                            self.push_decision(a);
                            asserted_assumption = true;
                            break;
                        }
                        LBool::False => {
                            self.failed = self.analyze_final(a);
                            self.stats.assumption_conflicts += 1;
                            self.cancel_until(0);
                            self.paranoid_audit("after failed-assumption backtrack");
                            return SolveStatus::Unsat;
                        }
                    }
                }
                if asserted_assumption {
                    continue; // propagate the assumption before deciding
                }
                if self.spent(self.stats.decisions, self.budget_base.decisions)
                    >= self.config.budget.max_decisions
                {
                    return SolveStatus::Unknown(StopReason::DecisionBudget);
                }
                match self.decide() {
                    None => {
                        self.paranoid_audit("at SAT");
                        return SolveStatus::Sat(self.extract_model());
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        if self.config.record_decisions {
                            self.stats.decision_log.push(l.var());
                        }
                        self.push_decision(l);
                    }
                }
            }
        }
    }

    /// Per-call budget spend: how much `counter` has grown since the
    /// baseline snapshot taken at solve entry.
    #[inline]
    fn spent(&self, counter: u64, base: u64) -> u64 {
        counter - base
    }

    /// Resets the per-call state at the top of every solve session: the
    /// previous search tree is undone, the pending assumptions are consumed
    /// and installed (their variables materialized), the stale failed core
    /// is dropped, and the budget baseline and restart scratch are re-armed
    /// so no limit or conflict-count leaks in from an earlier call.
    fn begin_solve(&mut self) {
        self.cancel_until(0);
        self.assumptions = std::mem::take(&mut self.pending_assumptions);
        let max_var = self
            .assumptions
            .iter()
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        self.ensure_vars(max_var);
        self.failed.clear();
        self.conflicts_since_restart = 0;
        self.budget_base = BudgetBase {
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
            restarts: self.stats.restarts,
        };
        self.stats.solve_calls += 1;
        debug_assert!(
            self.seen.iter().all(|&s| !s),
            "conflict-analysis scratch leaked across solve calls"
        );
    }

    fn conclude_unsat(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        if !self.emitted_empty {
            proof.add_clause(&[]);
            self.emitted_empty = true;
        }
        SolveStatus::Unsat
    }

    /// Delivers `event` to the observer, if one is attached. Emission
    /// sites that would *construct* a non-trivial event first check
    /// `self.events.observer.is_some()` so an observer-less solver pays
    /// only that one branch.
    #[inline]
    pub(crate) fn emit(&mut self, event: SolveEvent) {
        if let Some(observer) = &mut self.events.observer {
            observer.on_event(&event);
        }
    }

    /// Whether a telemetry observer is attached (the emission-site gate
    /// for code outside this module).
    #[inline]
    pub(crate) fn has_observer(&self) -> bool {
        self.events.observer.is_some()
    }

    /// Installs (or clears) the structured telemetry observer — the typed
    /// counterpart of the `c`-line progress output. See
    /// [`crate::telemetry`] for the event vocabulary and ordering
    /// guarantees. Usually installed at construction time via
    /// [`SolverBuilder::on_event`](crate::SolverBuilder::on_event).
    pub fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver>>) {
        self.events.observer = observer;
    }

    /// Polls the terminate callback, if any.
    fn should_terminate(&mut self) -> bool {
        match &mut self.events.terminate {
            Some(callback) => callback(),
            None => false,
        }
    }

    /// Installs (or clears) the terminate callback — polled at solve entry,
    /// at every restart boundary, and every 1024 conflicts (so even a
    /// restart-free search honors it); returning `true` makes the current
    /// and any later [`Solver::solve`] call return
    /// [`SolveStatus::Unknown`]\([`StopReason::Callback`]\) until the
    /// callback is cleared or starts returning `false`. Budgets are never
    /// consumed by a callback stop. Usually installed at construction time
    /// via [`SolverBuilder::on_terminate`](crate::SolverBuilder::on_terminate).
    pub fn set_terminate(&mut self, callback: Option<TerminateCallback>) {
        self.events.terminate = callback;
    }

    /// Installs (or clears) the learnt-clause callback: fired once per
    /// conflict-derived learnt clause of length ≤ `max_len` (asserting
    /// literal first), after the clause is reported to the proof sink and
    /// before search resumes. Every delivered clause is a logical
    /// consequence of the original formula (never of the assumptions).
    /// Usually installed at construction time via
    /// [`SolverBuilder::on_learnt`](crate::SolverBuilder::on_learnt).
    pub fn set_learnt_callback(&mut self, callback: Option<(usize, LearntCallback)>) {
        self.events.on_learnt = callback;
    }

    /// Installs (or clears) the share-export callback: fired once per
    /// conflict-derived learnt clause that passes the sharing filter
    /// (length ≤ 2, or LBD ≤ `max_lbd`), with the clause's literals and its
    /// glue. Every exported clause is a logical consequence of the original
    /// formula, so it is sound for any solver working on the same formula
    /// to add it. Usually installed at construction time via
    /// [`SolverBuilder::share_export`](crate::SolverBuilder::share_export).
    pub fn set_export_callback(&mut self, callback: Option<(u32, ExportCallback)>) {
        self.events.export = callback;
    }

    /// Installs (or clears) the share-import source: polled at solve entry
    /// and at every restart boundary (trail at level 0) with a scratch
    /// buffer the source fills with foreign clauses. **Every supplied clause must be implied by the
    /// original formula** — the solver attaches them without re-deriving
    /// them, so an unsound import corrupts verdicts. For the same reason an
    /// import source cannot be combined with a proof sink (the imports are
    /// not RUP-derivable in this solver's proof);
    /// [`SolverBuilder::build`](crate::SolverBuilder::build) enforces this.
    /// Usually installed at construction time via
    /// [`SolverBuilder::share_import`](crate::SolverBuilder::share_import).
    pub fn set_import_source(&mut self, source: Option<ImportCallback>) {
        self.events.import = source;
    }

    /// Replaces the construction-time proof sink, returning the previous
    /// one — how a caller that attached a shared sink reclaims sole
    /// ownership (e.g. to `Rc::try_unwrap` it) without dropping the solver.
    pub fn replace_proof_sink(&mut self, sink: Box<dyn ProofSink>) -> Box<dyn ProofSink> {
        std::mem::replace(&mut self.proof, sink)
    }

    /// Installs a freshly learnt clause: records activities, attaches
    /// watches, pushes it on the conflict-clause stack and asserts its
    /// first literal. Assumes the trail has been backtracked to the
    /// asserting level already.
    pub(crate) fn record_learnt(&mut self, lits: Vec<Lit>) {
        self.stats.learnt_total += 1;
        self.stats.learnt_lits_total += lits.len() as u64;
        for &l in &lits {
            // lit_activity censuses every deduced conflict clause (§7).
            self.lit_activity[l.code()] += 1;
            self.vsids[l.code()] += 1;
        }
        if lits.len() == 1 {
            // Unit conflict clause: becomes a retained level-0 fact (§8).
            self.stats.learnt_units += 1;
            debug_assert_eq!(self.decision_level(), 0);
            self.unchecked_enqueue(lits[0], None);
        } else {
            let asserting = lits[0];
            let cref = self.db.add_learnt(&lits);
            self.attach(cref);
            self.unchecked_enqueue(asserting, Some(cref));
        }
        let live = self.db.num_live() as u64;
        self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
    }

    /// Periodic work after each conflict: activity aging (§1/§5) and VSIDS
    /// halving for the Chaff baseline.
    fn on_conflict_maintenance(&mut self) {
        let c = self.stats.conflicts;
        if self.config.activity_decay_interval > 0
            && c % self.config.activity_decay_interval == 0
            && self.config.activity_decay_divisor > 1
        {
            let d = self.config.activity_decay_divisor;
            for a in &mut self.var_activity {
                *a /= d;
            }
            if self.config.activity_index == ActivityIndex::Heap {
                self.heap.rebuild(&self.var_activity);
            }
        }
        if self.config.decision == DecisionStrategy::Vsids
            && self.config.vsids_decay_interval > 0
            && c % self.config.vsids_decay_interval == 0
        {
            for a in &mut self.vsids {
                *a /= 2;
            }
        }
    }

    /// Whether the restart policy calls for abandoning the current tree.
    fn restart_due(&self) -> bool {
        if self.decision_level() == 0 && self.conflicts_since_restart == 0 {
            return false;
        }
        match self.config.restart {
            RestartPolicy::FixedInterval(n) => self.conflicts_since_restart >= n,
            RestartPolicy::Luby(base) => {
                self.conflicts_since_restart >= base * luby(self.stats.restarts + 1)
            }
            RestartPolicy::Never => false,
        }
    }

    /// Abandons the current search tree and runs database management (§8),
    /// then integrates any clauses offered by the share-import source —
    /// the "between search trees" point where foreign clauses can be
    /// attached with the trail at level 0.
    fn restart(&mut self, mut proof: &mut dyn ProofSink) {
        self.stats.restarts += 1;
        self.conflicts_since_restart = 0;
        self.cancel_until(0);
        if self.events.observer.is_some() {
            let event = SolveEvent::Restart {
                restarts: self.stats.restarts,
                conflicts: self.stats.conflicts,
            };
            self.emit(event);
        }
        self.reduce_db(&mut proof);
        self.import_shared_clauses();
    }

    /// Drains the share-import source and installs its clauses at decision
    /// level 0. Each clause is simplified against the level-0 assignment
    /// (satisfied ⇒ skipped, false literals stripped), then attached as a
    /// *learnt* clause — imports compete under the §8 retention policy like
    /// any other conflict clause instead of bloating the original formula.
    /// A clause degenerating to a unit becomes a level-0 fact (propagated
    /// by the main loop); degenerating to the empty clause refutes the
    /// formula (`ok = false` — legal because import sources only supply
    /// formula-implied clauses).
    ///
    /// Imported clauses are **not** reported to the proof sink: they are
    /// not RUP-derivable from this solver's own deductions, so a DRAT log
    /// would become unsound. [`SolverBuilder`](crate::SolverBuilder)
    /// therefore rejects attaching both a proof sink and an import source.
    fn import_shared_clauses(&mut self) {
        if self.events.import.is_none() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let imported_before = self.stats.clauses_imported;
        let mut buf = std::mem::take(&mut self.import_buf);
        buf.clear();
        if let Some(source) = &mut self.events.import {
            source(&mut buf);
        }
        'clauses: for lits in &mut buf {
            lits.sort_unstable();
            lits.dedup();
            if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                continue; // tautology (defensive; learnt clauses never are)
            }
            if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
                continue 'clauses; // already satisfied at level 0
            }
            lits.retain(|&l| self.lit_value(l) != LBool::False);
            match lits.len() {
                0 => {
                    self.ok = false;
                    self.stats.clauses_imported += 1;
                    break;
                }
                1 => {
                    self.stats.clauses_imported += 1;
                    self.unchecked_enqueue(lits[0], None);
                }
                _ => {
                    self.stats.clauses_imported += 1;
                    let cref = self.db.add_learnt(lits);
                    self.attach(cref);
                    let live = self.db.num_live() as u64;
                    self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
                }
            }
        }
        buf.clear();
        self.import_buf = buf;
        let imported = self.stats.clauses_imported - imported_before;
        if imported > 0 && self.events.observer.is_some() {
            self.emit(SolveEvent::ShareImport { count: imported });
        }
    }

    /// Bumps `var_activity(v)` by 1 (paper §4) and fixes up the heap index.
    #[inline]
    pub(crate) fn bump_var(&mut self, v: Var) {
        self.var_activity[v.index()] += 1;
        if self.config.activity_index == ActivityIndex::Heap {
            self.heap.bumped(v, &self.var_activity);
        }
    }

    fn extract_model(&self) -> Assignment {
        let mut model = Assignment::new(self.num_vars);
        for (i, &v) in self.assigns.iter().enumerate() {
            // Unconstrained variables default to false.
            model.assign(Var::new(i as u32), v == LBool::True);
        }
        // Extend the model back over the variables the preprocessor
        // eliminated, in reverse elimination order, so it satisfies the
        // *original* formula rather than just the simplified one.
        self.reconstructor.extend_model(&mut model);
        model
    }
}

/// The Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
pub(crate) fn luby(i: u64) -> u64 {
    // Find the subsequence containing index i.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let mut i = i;
    let mut kk = k;
    while (1u64 << kk) - 1 != i {
        i -= (1u64 << (kk - 1)) - 1;
        kk = 1;
        while (1u64 << kk) - 1 < i {
            kk += 1;
        }
    }
    1u64 << (kk - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        let x = Lit::from_dimacs(1);
        s.add_clause([x]);
        match s.solve() {
            SolveStatus::Sat(m) => assert!(m.satisfies(x)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1)]);
        s.add_clause([Lit::from_dimacs(-1)]);
        assert!(s.solve().is_unsat());
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        assert!(!s.add_clause([]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(-1)]);
        assert_eq!(s.db.num_live(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(1)]);
        // Collapses to a unit clause, asserted immediately.
        assert_eq!(s.db.num_live(), 0);
        assert_eq!(s.value(Var::new(0)), LBool::True);
    }

    #[test]
    fn propagation_chain_resolves_without_decisions() {
        // x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3): all forced.
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1)]);
        s.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(2)]);
        s.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(3)]);
        let status = s.solve();
        let m = status.model().unwrap();
        assert!(m.satisfies(Lit::from_dimacs(3)));
        assert_eq!(s.stats().decisions, 0);
    }

    #[test]
    fn budget_abort_reports_unknown() {
        // A formula needing work: small pigeonhole, 1-conflict budget.
        let mut s = Solver::with_config(SolverConfig::berkmin().with_budget(Budget::conflicts(1)));
        // PHP(2): 3 pigeons, 2 holes.
        let lit = |p: usize, h: usize| Lit::from_dimacs((p * 2 + h + 1) as i32);
        for p in 0..3 {
            s.add_clause([lit(p, 0), lit(p, 1)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause([!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        match s.solve() {
            SolveStatus::Unknown(StopReason::ConflictBudget) => {}
            other => panic!("expected budget abort, got {other:?}"),
        }
    }
}
