//! The engine abstraction: an object-safe, IPASIR-shaped incremental
//! solving interface.
//!
//! [`SatEngine`] is what generic drivers program against — the BMC driver,
//! the bench runner and the CLI all take *any* engine, so alternative
//! configurations (or entirely different solver backends) slot in behind
//! one trait object. [`Solver`] implements it; boxed and borrowed engines
//! forward, so `Box<dyn SatEngine>` works everywhere a concrete solver
//! does.

use berkmin_cnf::{ClauseSink, LBool, Lit, Var};

use crate::search::SolveStatus;
use crate::solver::Solver;
use crate::stats::Stats;
use crate::telemetry::SolveObserver;

/// An incremental SAT engine: add clauses, stage assumptions, solve,
/// inspect — repeat. Object-safe by design, so heterogeneous drivers can
/// hold a `Box<dyn SatEngine>`.
///
/// # Contract
///
/// * [`SatEngine::add_clause`] may be called at any time; clauses
///   accumulate monotonically (there is no retraction — use assumptions
///   and activation literals for temporary constraints).
/// * [`SatEngine::assume`] stages a literal for the **next**
///   [`SatEngine::solve`] call only; the call consumes all staged
///   assumptions.
/// * After an `Unsat` answer, [`SatEngine::failed_assumptions`] is a
///   subset of the staged assumptions that is itself unsatisfiable with
///   the formula (empty on absolute refutation).
/// * After a `Sat` answer, [`SatEngine::value`] reports the model's
///   assignment for every reserved variable.
///
/// # Examples
///
/// ```
/// use berkmin::{SatEngine, SolverBuilder};
/// use berkmin_cnf::Lit;
///
/// let mut engine: Box<dyn SatEngine> = SolverBuilder::new().build_engine();
/// engine.add_clause(&[Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// engine.assume(Lit::from_dimacs(-1));
/// let status = engine.solve();
/// assert!(status.model().unwrap().satisfies(Lit::from_dimacs(2)));
/// ```
pub trait SatEngine {
    /// Grows the variable space to at least `n` variables (models then
    /// cover them even if no clause mentions them).
    fn reserve_vars(&mut self, n: usize);

    /// Adds a clause to the formula. Returns `false` if the formula has
    /// become trivially unsatisfiable (an empty clause arose).
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Stages an assumption for the next [`SatEngine::solve`] call.
    fn assume(&mut self, lit: Lit);

    /// Solves under the staged assumptions (consuming them).
    fn solve(&mut self) -> SolveStatus;

    /// The last model's assignment of `var` ([`LBool::Undef`] if unknown).
    fn value(&self, var: Var) -> LBool;

    /// The failed-assumption core of the last assumption-UNSAT answer.
    fn failed_assumptions(&self) -> &[Lit];

    /// Search statistics accumulated so far.
    fn stats(&self) -> &Stats;

    /// Attaches (or clears) a structured telemetry observer (see
    /// [`crate::telemetry`]). The observer must be `Send` because the
    /// portfolio engine forwards its workers' events across threads; a
    /// single-threaded [`Solver`] also accepts non-`Send` observers
    /// through [`Solver::set_observer`] directly.
    fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver + Send>>);
}

impl SatEngine for Solver {
    fn reserve_vars(&mut self, n: usize) {
        Solver::reserve_vars(self, n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn assume(&mut self, lit: Lit) {
        Solver::assume(self, lit);
    }

    fn solve(&mut self) -> SolveStatus {
        Solver::solve(self)
    }

    fn value(&self, var: Var) -> LBool {
        Solver::value(self, var)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        Solver::failed_assumptions(self)
    }

    fn stats(&self) -> &Stats {
        Solver::stats(self)
    }

    fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver + Send>>) {
        // Coerce away the `Send` bound the trait imposes for the
        // portfolio's benefit — a plain solver never moves its observer.
        Solver::set_observer(
            self,
            observer.map(|b| {
                let b: Box<dyn SolveObserver> = b;
                b
            }),
        );
    }
}

impl<E: SatEngine + ?Sized> SatEngine for Box<E> {
    fn reserve_vars(&mut self, n: usize) {
        (**self).reserve_vars(n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        (**self).add_clause(lits)
    }

    fn assume(&mut self, lit: Lit) {
        (**self).assume(lit);
    }

    fn solve(&mut self) -> SolveStatus {
        (**self).solve()
    }

    fn value(&self, var: Var) -> LBool {
        (**self).value(var)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        (**self).failed_assumptions()
    }

    fn stats(&self) -> &Stats {
        (**self).stats()
    }

    fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver + Send>>) {
        (**self).set_observer(observer);
    }
}

impl<E: SatEngine + ?Sized> SatEngine for &mut E {
    fn reserve_vars(&mut self, n: usize) {
        (**self).reserve_vars(n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        (**self).add_clause(lits)
    }

    fn assume(&mut self, lit: Lit) {
        (**self).assume(lit);
    }

    fn solve(&mut self) -> SolveStatus {
        (**self).solve()
    }

    fn value(&self, var: Var) -> LBool {
        (**self).value(var)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        (**self).failed_assumptions()
    }

    fn stats(&self) -> &Stats {
        (**self).stats()
    }

    fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver + Send>>) {
        (**self).set_observer(observer);
    }
}

/// Streaming DIMACS straight into the solver's clause database: with this
/// impl, [`berkmin_cnf::dimacs::stream_into`] feeds a file into a
/// [`Solver`] without materializing any intermediate formula.
impl ClauseSink for Solver {
    fn header(&mut self, num_vars: usize, _num_clauses: usize) {
        Solver::reserve_vars(self, num_vars);
    }

    fn clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }
}

/// The same streaming ingestion for a boxed engine (what the CLI holds).
impl ClauseSink for Box<dyn SatEngine> {
    fn header(&mut self, num_vars: usize, _num_clauses: usize) {
        self.reserve_vars(num_vars);
    }

    fn clause(&mut self, lits: &[Lit]) {
        SatEngine::add_clause(self, lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;

    /// Compile-time proof that the trait stays object-safe (the whole point
    /// of the redesign): a `&dyn` / `Box<dyn>` must always be formable.
    #[allow(dead_code)]
    fn assert_object_safe(engine: &mut dyn SatEngine) -> &mut dyn SatEngine {
        engine
    }

    #[test]
    fn boxed_engine_solves_through_the_trait() {
        let mut engine: Box<dyn SatEngine> = Box::new(Solver::with_config(SolverConfig::berkmin()));
        assert!(engine.add_clause(&[Lit::from_dimacs(1), Lit::from_dimacs(2)]));
        engine.assume(Lit::from_dimacs(-1));
        match engine.solve() {
            SolveStatus::Sat(m) => assert!(m.satisfies(Lit::from_dimacs(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        assert_eq!(engine.value(Var::new(1)), LBool::True);
        assert_eq!(engine.stats().solve_calls, 1);
    }

    #[test]
    fn failed_assumptions_flow_through_the_trait() {
        let mut engine: Box<dyn SatEngine> = Box::new(Solver::with_config(SolverConfig::berkmin()));
        engine.add_clause(&[Lit::from_dimacs(1)]);
        engine.assume(Lit::from_dimacs(-1));
        assert!(engine.solve().is_unsat());
        assert_eq!(engine.failed_assumptions(), &[Lit::from_dimacs(-1)]);
    }

    #[test]
    fn empty_clause_via_trait_reports_false() {
        let mut engine: Box<dyn SatEngine> = Box::new(Solver::with_config(SolverConfig::berkmin()));
        assert!(!engine.add_clause(&[]));
        assert!(engine.solve().is_unsat());
    }
}
