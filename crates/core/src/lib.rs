//! # BerkMin — a fast and robust CDCL SAT-solver
//!
//! A from-scratch Rust reproduction of the solver described in
//! E. Goldberg & Y. Novikov, *"BerkMin: A Fast and Robust Sat-Solver"*
//! (DATE 2002; extended journal version in Discrete Applied Mathematics
//! 155, 2007). The solver inherits clause recording, watched-literal BCP,
//! restarts and conflict-clause aging from GRASP/SATO/Chaff, and implements
//! BerkMin's four contributions, each individually switchable through
//! [`SolverConfig`]:
//!
//! 1. **Sensitivity** (§4) — variable activities credited from *all clauses
//!    responsible for a conflict*, not just the learnt clause
//!    ([`Sensitivity`]).
//! 2. **Mobility** (§5) — branching on the most active free variable of the
//!    *current top clause* of the chronologically ordered conflict-clause
//!    stack ([`DecisionStrategy`]); the skin effect (§6) is measured in
//!    [`Stats::top_distance_hist`].
//! 3. **Database symmetrization** (§7) — branch polarity chosen to
//!    counterbalance the clause-census asymmetry introduced by restarts
//!    ([`TopClausePolarity`]), with the `nb_two` binary-clause cost function
//!    for free-variable decisions ([`FreeVarPolarity`]).
//! 4. **Database management** (§8) — age/length/activity-based clause
//!    retention with a rising old-clause threshold ([`DbPolicy`]).
//!
//! # Quick start
//!
//! ```
//! use berkmin::{Solver, SolverConfig, SolveStatus};
//! use berkmin_cnf::{Cnf, Lit, Var};
//!
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y ∨ z)
//! let mut cnf = Cnf::new();
//! let [x, y, z] = [0, 1, 2].map(|i| Var::new(i));
//! cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
//! cnf.add_clause([Lit::neg(x), Lit::pos(y)]);
//! cnf.add_clause([Lit::neg(y), Lit::pos(z)]);
//!
//! let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
//! match solver.solve() {
//!     SolveStatus::Sat(model) => assert!(cnf.is_satisfied_by(&model)),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```
//!
//! # Reproducing the paper's ablations
//!
//! Every comparison arm in the paper's Tables 1–5 is a [`SolverConfig`]
//! preset; see that type's documentation for the mapping. Resource budgets
//! ([`Budget`]) provide deterministic, machine-independent "timeouts".
//!
//! # Incremental solving
//!
//! The solver is a long-lived object: [`Solver::add_clause`] may be called
//! between solves, and [`Solver::solve_with_assumptions`] answers
//! satisfiability under a set of assumption literals enqueued as
//! pseudo-decisions below every real decision — the learnt-clause database,
//! variable activities and polarity state stay warm across calls. When the
//! assumptions are to blame for an UNSAT answer,
//! [`Solver::failed_assumptions`] returns the failed core extracted by
//! final-conflict analysis.
//!
//! # Proof logging
//!
//! [`Solver::solve_with_proof`] streams every learnt clause and deletion to
//! a [`ProofSink`]; the `berkmin-drat` crate turns that stream into a
//! checkable DRAT proof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod clause_db;
mod config;
mod decide;
#[cfg(test)]
mod gc_props;
mod heap;
mod polarity;
mod proof;
mod reduce;
mod rng;
mod solver;
mod stats;

pub use config::{
    ActivityIndex, Budget, DbPolicy, DecisionStrategy, FreeVarPolarity, RestartPolicy, Sensitivity,
    SolverConfig, TopClausePolarity,
};
pub use proof::{NoProof, ProofSink};
pub use solver::{SolveStatus, Solver, StopReason};
pub use stats::Stats;

// Re-export the vocabulary crate so downstream users need only one import.
pub use berkmin_cnf as cnf;
