//! # BerkMin — a fast and robust CDCL SAT-solver
//!
//! A from-scratch Rust reproduction of the solver described in
//! E. Goldberg & Y. Novikov, *"BerkMin: A Fast and Robust Sat-Solver"*
//! (DATE 2002; extended journal version in Discrete Applied Mathematics
//! 155, 2007). The solver inherits clause recording, watched-literal BCP,
//! restarts and conflict-clause aging from GRASP/SATO/Chaff, and implements
//! BerkMin's four contributions, each individually switchable through
//! [`SolverConfig`]:
//!
//! 1. **Sensitivity** (§4) — variable activities credited from *all clauses
//!    responsible for a conflict*, not just the learnt clause
//!    ([`Sensitivity`]).
//! 2. **Mobility** (§5) — branching on the most active free variable of the
//!    *current top clause* of the chronologically ordered conflict-clause
//!    stack ([`DecisionStrategy`]); the skin effect (§6) is measured in
//!    [`Stats::top_distance_hist`].
//! 3. **Database symmetrization** (§7) — branch polarity chosen to
//!    counterbalance the clause-census asymmetry introduced by restarts
//!    ([`TopClausePolarity`]), with the `nb_two` binary-clause cost function
//!    for free-variable decisions ([`FreeVarPolarity`]).
//! 4. **Database management** (§8) — age/length/activity-based clause
//!    retention with a rising old-clause threshold ([`DbPolicy`]).
//!
//! # Quick start: the builder/session flow
//!
//! A solver is assembled once through [`SolverBuilder`] — configuration,
//! proof sink, reserved variables, initial clauses and event hooks all
//! attach at construction — and then driven as a *session*: stage
//! assumptions with [`Solver::assume`], call [`Solver::solve`] (the one
//! entry point), inspect, repeat.
//!
//! ```
//! use berkmin::{SolverBuilder, SolverConfig, SolveStatus};
//! use berkmin_cnf::Lit;
//!
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y ∨ z)
//! let [x, y, z] = [1, 2, 3].map(Lit::from_dimacs);
//! let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
//!     .clause([x, y])
//!     .clause([!x, y])
//!     .clause([!y, z])
//!     .build();
//!
//! match solver.solve() {
//!     SolveStatus::Sat(model) => assert!(model.satisfies(z)),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//!
//! // Incremental: assumptions are per-call, clauses accumulate.
//! solver.assume(!z);
//! assert!(solver.solve().is_unsat());
//! assert_eq!(solver.failed_assumptions(), &[!z]);
//! assert!(solver.solve().is_sat());
//! ```
//!
//! # Engine genericity
//!
//! [`SatEngine`] is the object-safe face of the session API
//! (`add_clause` / `assume` / `solve` / `value` / `failed_assumptions` /
//! `stats`): drivers written against `dyn SatEngine` — the BMC driver, the
//! bench harness, the CLI — accept any configuration (or backend) behind
//! one trait object, built with [`SolverBuilder::build_engine`].
//!
//! # Solve events
//!
//! Two IPASIR-style hooks install at construction time:
//! [`SolverBuilder::on_terminate`] (polled at solve entry, every restart
//! boundary and every 1024 conflicts; aborts with [`StopReason::Callback`]
//! without touching budgets) and [`SolverBuilder::on_learnt`] (delivers every
//! conflict-derived learnt clause up to a length cap — each one a
//! consequence of the formula alone, never of the assumptions).
//!
//! # Telemetry
//!
//! A structured observer installs via [`SolverBuilder::on_event`] (or
//! [`SatEngine::set_observer`] on any engine, including the portfolio):
//! every [`SolveEvent`] the search emits — solve-call brackets, restarts,
//! reductions, periodic progress ticks, sharing traffic, worker-tagged
//! portfolio events — flows to the [`SolveObserver`]. Without an observer
//! the solver constructs no events at all. [`StatsSnapshot`] renders (and
//! parses back) a [`Stats`] block as JSON for machine consumption; see
//! [`telemetry`] for the full vocabulary.
//!
//! # Proof logging
//!
//! A [`ProofSink`] attached via [`SolverBuilder::proof`] receives every
//! learnt clause and deletion of every solve call; the `berkmin-drat`
//! crate turns that stream into a checkable DRAT proof. Wrap the sink in
//! `Rc<RefCell<...>>` (which itself implements `ProofSink`) to keep a
//! reading handle.
//!
//! # Streaming ingestion
//!
//! [`Solver`] implements [`berkmin_cnf::ClauseSink`], so
//! [`berkmin_cnf::dimacs::stream_into`] parses a DIMACS file straight into
//! the clause database — no intermediate [`berkmin_cnf::Cnf`] is built.
//!
//! # Reproducing the paper's ablations
//!
//! Every comparison arm in the paper's Tables 1–5 is a [`SolverConfig`]
//! preset; see that type's documentation for the mapping. Resource budgets
//! ([`Budget`]) provide deterministic, machine-independent "timeouts".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod audit;
mod builder;
mod clause_db;
mod config;
mod decide;
mod engine;
#[cfg(test)]
mod gc_props;
mod heap;
mod limits;
mod polarity;
mod portfolio;
mod preprocess;
mod proof;
mod reduce;
mod rng;
mod search;
mod solver;
mod stats;
pub mod telemetry;
mod trail;
mod watch;

pub use audit::AuditReport;
pub use builder::SolverBuilder;
pub use clause_db::ClauseRef;
pub use config::{
    ActivityIndex, Budget, DbPolicy, DecisionStrategy, FreeVarPolarity, RestartPolicy, Sensitivity,
    SimplifyConfig, SolverConfig, TopClausePolarity,
};
pub use engine::SatEngine;
pub use portfolio::{PortfolioConfig, PortfolioEngine, WorkerOutcome, WorkerReport};
pub use proof::{NoProof, ProofSink};
pub use search::{
    ExportCallback, ImportCallback, LearntCallback, SolveStatus, StopReason, TerminateCallback,
};
pub use solver::Solver;
pub use stats::Stats;
pub use telemetry::{SolveEvent, SolveObserver, SolveVerdict, StatsSnapshot};
pub use trail::Trail;

// Re-export the vocabulary crate (and the clause-stream trait most
// engine users want in scope) so downstream users need only one import.
pub use berkmin_cnf as cnf;
pub use berkmin_cnf::ClauseSink;
