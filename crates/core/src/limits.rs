//! The search scheduler: every "is it time yet?" decision in one place.
//!
//! [`SearchLimits`] owns the per-call budget baseline, the
//! conflicts-since-restart counter and the run-once preprocessing latch,
//! and answers every cadence question the CDCL loop asks: restart due?
//! activity decay due? terminate-callback poll due? progress tick due?
//! budget exhausted? Before this module those checks were scattered
//! across `begin_solve`, `on_conflict_maintenance`, `restart_due` and
//! inline modulo arithmetic in the search loop — each with its own copy
//! of the baseline bookkeeping.
//!
//! The conflict-cadence answers come back batched in a [`DueActions`]
//! value from [`SearchLimits::on_conflict`], computed once per conflict at
//! the moment the conflict counter ticks (the counters do not move again
//! until the conflict is fully handled, so the batch stays coherent while
//! the loop works through it).

use crate::config::{Budget, DecisionStrategy, RestartPolicy, SolverConfig};
use crate::stats::Stats;

/// Conflicts between terminate-callback polls inside a search tree. Restart
/// boundaries also poll, but a policy like [`RestartPolicy::Never`] (or a
/// huge fixed interval) would otherwise never hand control back.
pub(crate) const TERMINATE_POLL_CONFLICTS: u64 = 1024;

/// Per-solve-call baseline of the budgeted counters (plus restarts, which
/// are not budgeted but are reported as a per-call delta in
/// [`SolveEvent::SolveDone`](crate::telemetry::SolveEvent)).
#[derive(Debug, Clone, Copy, Default)]
struct BudgetBase {
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
}

/// The batch of maintenance actions that fall due at one conflict —
/// [`SearchLimits::on_conflict`]'s answer, consumed by the search loop in
/// its fixed order (decays with the conflict handling, then the progress
/// tick, then the terminate poll, then the budget check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DueActions {
    /// Age every `var_activity` counter (paper §1/§5) and rebuild the heap.
    pub(crate) decay_var_activity: bool,
    /// Halve the VSIDS counters (Chaff baseline cadence).
    pub(crate) decay_vsids: bool,
    /// Emit a [`SolveEvent::Progress`](crate::telemetry::SolveEvent) tick
    /// (if an observer is attached).
    pub(crate) progress_tick: bool,
    /// Poll the terminate callback (the every-1024-conflicts cadence).
    pub(crate) poll_terminate: bool,
    /// The per-call conflict budget is exhausted — stop after this
    /// conflict is handled.
    pub(crate) conflict_budget_exhausted: bool,
}

/// The search scheduler: per-call budget accounting, restart pacing and
/// periodic-maintenance cadence for one solver.
#[derive(Debug, Default)]
pub(crate) struct SearchLimits {
    /// Stats snapshot taken at solve entry: budgets are per-call, so each
    /// check compares against the growth since this baseline rather than
    /// the lifetime totals (which would make a second call inherit the
    /// previous call's spend).
    base: BudgetBase,
    /// Conflicts since the last restart (or solve entry) — the restart
    /// policies' clock.
    conflicts_since_restart: u64,
    /// Whether the preprocessor has run at least once (the default
    /// configuration simplifies only the first solve call).
    simplified_once: bool,
}

impl SearchLimits {
    /// Creates a scheduler with no spend recorded.
    pub(crate) fn new() -> Self {
        SearchLimits::default()
    }

    /// Re-arms the scheduler at solve entry: snapshots the budget baseline
    /// and resets the restart clock, so no limit or conflict count leaks
    /// in from an earlier call.
    pub(crate) fn begin_call(&mut self, stats: &Stats) {
        self.conflicts_since_restart = 0;
        self.base = BudgetBase {
            conflicts: stats.conflicts,
            decisions: stats.decisions,
            propagations: stats.propagations,
            restarts: stats.restarts,
        };
    }

    /// Registers one conflict and returns the batch of maintenance actions
    /// that fall due at it. Call right after `stats.conflicts` ticks.
    pub(crate) fn on_conflict(&mut self, stats: &Stats, config: &SolverConfig) -> DueActions {
        self.conflicts_since_restart += 1;
        let c = stats.conflicts;
        let per_call = c - self.base.conflicts;
        DueActions {
            decay_var_activity: config.activity_decay_interval > 0
                && c % config.activity_decay_interval == 0
                && config.activity_decay_divisor > 1,
            decay_vsids: config.decision == DecisionStrategy::Vsids
                && config.vsids_decay_interval > 0
                && c % config.vsids_decay_interval == 0,
            progress_tick: config.progress_every > 0 && per_call % config.progress_every == 0,
            poll_terminate: per_call % TERMINATE_POLL_CONFLICTS == 0,
            conflict_budget_exhausted: per_call >= config.budget.max_conflicts,
        }
    }

    /// Whether the restart policy calls for abandoning the current tree.
    pub(crate) fn restart_due(
        &self,
        decision_level: usize,
        stats: &Stats,
        policy: RestartPolicy,
    ) -> bool {
        if decision_level == 0 && self.conflicts_since_restart == 0 {
            return false;
        }
        match policy {
            RestartPolicy::FixedInterval(n) => self.conflicts_since_restart >= n,
            RestartPolicy::Luby(base) => {
                self.conflicts_since_restart >= base * luby(stats.restarts + 1)
            }
            RestartPolicy::Never => false,
        }
    }

    /// Resets the restart clock — call when a restart is performed.
    pub(crate) fn on_restart(&mut self) {
        self.conflicts_since_restart = 0;
    }

    /// Conflicts spent by the current solve call.
    #[inline]
    pub(crate) fn conflicts_spent(&self, stats: &Stats) -> u64 {
        stats.conflicts - self.base.conflicts
    }

    /// Decisions spent by the current solve call.
    #[inline]
    pub(crate) fn decisions_spent(&self, stats: &Stats) -> u64 {
        stats.decisions - self.base.decisions
    }

    /// Propagations spent by the current solve call.
    #[inline]
    pub(crate) fn propagations_spent(&self, stats: &Stats) -> u64 {
        stats.propagations - self.base.propagations
    }

    /// Restarts performed by the current solve call.
    #[inline]
    pub(crate) fn restarts_spent(&self, stats: &Stats) -> u64 {
        stats.restarts - self.base.restarts
    }

    /// Whether the per-call decision budget is exhausted.
    #[inline]
    pub(crate) fn decision_budget_exhausted(&self, stats: &Stats, budget: &Budget) -> bool {
        self.decisions_spent(stats) >= budget.max_decisions
    }

    /// Whether the per-call propagation budget is exhausted.
    #[inline]
    pub(crate) fn propagation_budget_exhausted(&self, stats: &Stats, budget: &Budget) -> bool {
        self.propagations_spent(stats) >= budget.max_propagations
    }

    /// Whether preprocessing should run at this solve entry: always under
    /// `inprocess`, otherwise only once per solver lifetime. Marks the
    /// latch, so ask exactly once per call.
    pub(crate) fn simplify_due(&mut self, inprocess: bool) -> bool {
        if self.simplified_once && !inprocess {
            return false;
        }
        self.simplified_once = true;
        true
    }

    /// Human-readable "what falls due next" summary for `Debug` output:
    /// conflicts until the next restart, activity decay and terminate
    /// poll, given the current counters.
    pub(crate) fn next_due(&self, stats: &Stats, config: &SolverConfig) -> String {
        let restart = match config.restart {
            RestartPolicy::FixedInterval(n) => Some(n.saturating_sub(self.conflicts_since_restart)),
            RestartPolicy::Luby(base) => {
                Some((base * luby(stats.restarts + 1)).saturating_sub(self.conflicts_since_restart))
            }
            RestartPolicy::Never => None,
        };
        let decay = if config.activity_decay_interval > 0 && config.activity_decay_divisor > 1 {
            Some(config.activity_decay_interval - stats.conflicts % config.activity_decay_interval)
        } else {
            None
        };
        let poll =
            TERMINATE_POLL_CONFLICTS - self.conflicts_spent(stats) % TERMINATE_POLL_CONFLICTS;
        match (restart, decay) {
            (Some(r), Some(d)) => {
                format!("restart in {r} conflicts, decay in {d}, terminate poll in {poll}")
            }
            (Some(r), None) => format!("restart in {r} conflicts, terminate poll in {poll}"),
            (None, Some(d)) => format!("no restarts, decay in {d}, terminate poll in {poll}"),
            (None, None) => format!("no restarts, terminate poll in {poll}"),
        }
    }
}

/// The Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
pub(crate) fn luby(i: u64) -> u64 {
    // Find the subsequence containing index i.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let mut i = i;
    let mut kk = k;
    while (1u64 << kk) - 1 != i {
        i -= (1u64 << (kk - 1)) - 1;
        kk = 1;
        while (1u64 << kk) - 1 < i {
            kk += 1;
        }
    }
    1u64 << (kk - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn budget_baseline_is_per_call() {
        let mut stats = Stats::new();
        stats.conflicts = 100;
        stats.decisions = 40;
        let mut limits = SearchLimits::new();
        limits.begin_call(&stats);
        assert_eq!(limits.conflicts_spent(&stats), 0);
        stats.conflicts = 103;
        assert_eq!(limits.conflicts_spent(&stats), 3);
        let budget = Budget {
            max_decisions: 5,
            ..Budget::unlimited()
        };
        stats.decisions = 44;
        assert!(!limits.decision_budget_exhausted(&stats, &budget));
        stats.decisions = 45;
        assert!(limits.decision_budget_exhausted(&stats, &budget));
    }

    #[test]
    fn simplify_latch_fires_once_unless_inprocessing() {
        let mut limits = SearchLimits::new();
        assert!(limits.simplify_due(false));
        assert!(!limits.simplify_due(false));
        assert!(limits.simplify_due(true), "inprocessing re-arms every call");
        let mut inproc = SearchLimits::new();
        assert!(inproc.simplify_due(true));
        assert!(inproc.simplify_due(true));
    }

    #[test]
    fn restart_clock_ticks_on_conflicts_and_resets() {
        let mut stats = Stats::new();
        let config = SolverConfig::berkmin();
        let mut limits = SearchLimits::new();
        limits.begin_call(&stats);
        // A quiescent solver at level 0 never restarts.
        assert!(!limits.restart_due(0, &stats, RestartPolicy::FixedInterval(1)));
        stats.conflicts += 1;
        limits.on_conflict(&stats, &config);
        assert!(limits.restart_due(3, &stats, RestartPolicy::FixedInterval(1)));
        assert!(!limits.restart_due(3, &stats, RestartPolicy::FixedInterval(2)));
        assert!(!limits.restart_due(3, &stats, RestartPolicy::Never));
        limits.on_restart();
        assert!(!limits.restart_due(0, &stats, RestartPolicy::FixedInterval(1)));
    }
}
