//! Conflict analysis: 1-UIP learning with BerkMin's sensitivity rule.
//!
//! The reverse-BCP walk below is a chain of resolutions starting from the
//! conflicting clause (paper §2). Every clause entering that chain — the
//! conflicting clause plus each reason clause resolved on — is a *clause
//! responsible for the conflict*. BerkMin's sensitivity improvement (§4)
//! bumps `var_activity` once per literal occurrence in each responsible
//! clause; the Chaff-like ablation bumps only the variables of the final
//! conflict clause.

use berkmin_cnf::Lit;

use crate::clause_db::ClauseRef;
use crate::config::Sensitivity;
use crate::solver::Solver;

impl Solver {
    /// Analyzes `confl` and returns `(learnt_clause, backtrack_level, lbd)`.
    ///
    /// The learnt clause is in asserting form: `learnt[0]` is the 1-UIP
    /// literal (unassigned after backtracking to the returned level) and,
    /// when the clause has length ≥ 2, `learnt[1]` is a literal from the
    /// backtrack level, making positions 0 and 1 valid watches.
    ///
    /// `lbd` is the clause's literal block distance ("glue"): the number of
    /// distinct decision levels among its literals at deduction time. It is
    /// the quality signal portfolio workers use to decide which clauses are
    /// worth exporting (low glue ⇒ likely useful to other search trees).
    pub(crate) fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize, u32) {
        let current_level = self.decision_level();
        debug_assert!(
            current_level > 0,
            "conflicts at level 0 terminate the search"
        );

        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for the UIP
        let mut to_clear: Vec<u32> = Vec::new();
        let mut counter = 0usize; // unresolved current-level literals
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut cref = confl;

        loop {
            // --- responsible-clause bookkeeping (paper §4, §8) ---
            self.stats.responsible_clauses += 1;
            // clause_activity(C): conflicts C has been responsible for.
            self.db.bump_activity(cref);
            if self.config.sensitivity == Sensitivity::Berkmin {
                // Bump once per literal occurrence in the responsible clause,
                // including the resolved-on variable (§4's worked example
                // bumps a and c, which never reach the conflict clause).
                let n = self.db.lits(cref).len();
                for k in 0..n {
                    let v = self.db.lits(cref)[k].var();
                    self.bump_var(v);
                }
            }

            // --- resolve: merge this clause's literals ---
            // For a reason clause, the implied literal `p` itself is being
            // resolved on and is skipped. Binary clauses propagate straight
            // from the watch lists without reordering the arena record, so
            // `p` is not guaranteed to sit at position 0 — match it by
            // value. The conflicting clause (`p == None`) contributes all.
            let n = self.db.lits(cref).len();
            for k in 0..n {
                let q = self.db.lits(cref)[k];
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.trail.level_of(v) > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v.raw());
                    if self.trail.level_of(v) as usize == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }

            // --- pick the next current-level literal off the trail ---
            loop {
                idx -= 1;
                if self.seen[self.trail.lit_at(idx).var().index()] {
                    break;
                }
            }
            let pl = self.trail.lit_at(idx);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                // pl is the first unique implication point.
                learnt[0] = !pl;
                break;
            }
            cref = self
                .trail
                .reason_of(pl.var())
                .expect("implied literal above level 0 must have a reason");
            p = Some(pl);
        }

        if self.config.minimize_learnt {
            self.minimize(&mut learnt);
        }

        // Chaff-like sensitivity: bump only the conflict clause's variables.
        if self.config.sensitivity == Sensitivity::ConflictClauseOnly {
            for &l in &learnt {
                self.bump_var(l.var());
            }
        }

        // Position a highest-level literal at index 1 and derive the
        // backtrack level (non-chronological backtracking, §2).
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.trail.level_of(learnt[i].var()) > self.trail.level_of(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.trail.level_of(learnt[1].var()) as usize
        };

        for v in to_clear {
            self.seen[v as usize] = false;
        }

        // LBD ("glue"): count distinct decision levels across the learnt
        // literals with a generation-stamped scratch array — bumping the
        // generation invalidates every stamp at once, no clearing pass.
        self.lbd_stamp_gen += 1;
        let mut lbd = 0u32;
        for &l in &learnt {
            let lvl = self.trail.level_of(l.var()) as usize;
            if self.lbd_stamp[lvl] != self.lbd_stamp_gen {
                self.lbd_stamp[lvl] = self.lbd_stamp_gen;
                lbd += 1;
            }
        }
        self.stats.lbd_sum += lbd as u64;
        self.stats.lbd_max = self.stats.lbd_max.max(lbd);

        (learnt, bt_level, lbd)
    }

    /// Final-conflict analysis for assumption-based solving: called when the
    /// pending assumption `failed` is already false under the trail built
    /// from the earlier assumptions. Walks the implication graph of `¬failed`
    /// backwards and collects every assumption pseudo-decision it rests on,
    /// returning the failed core `{failed} ∪ {assumptions implying ¬failed}`
    /// — a subset of the assumption set whose conjunction with the formula
    /// is unsatisfiable (the incremental analog of MiniSat's
    /// `analyzeFinal`).
    ///
    /// Only assumption levels exist below the walk's horizon (real decisions
    /// are only ever taken once every assumption is enqueued), so every
    /// reason-less trail literal above level 0 the walk marks *is* an
    /// assumption.
    pub(crate) fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            // ¬failed is a root-level fact: the formula alone refutes the
            // assumption, no other assumption shares the blame.
            return core;
        }
        self.seen[failed.var().index()] = true;
        let bound = self.trail.level_start(0);
        for i in (bound..self.trail.len()).rev() {
            let x = self.trail.lit_at(i).var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.trail.reason_of(x) {
                None => {
                    debug_assert!(self.trail.level_of(x) > 0, "root facts have level 0");
                    core.push(self.trail.lit_at(i));
                }
                Some(rc) => {
                    let n = self.db.lits(rc).len();
                    for k in 0..n {
                        let q = self.db.lits(rc)[k];
                        if q.var() != x && self.trail.level_of(q.var()) > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[failed.var().index()] = false;
        core
    }

    /// Local (non-recursive) conflict-clause minimization: drop any literal
    /// whose reason clause is entirely subsumed by the remaining literals
    /// and level-0 facts. A post-paper technique (MiniSat), kept behind
    /// [`crate::SolverConfig::minimize_learnt`] for the extension ablation.
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        let mut j = 1;
        for i in 1..learnt.len() {
            let v = learnt[i].var();
            let removable = match self.trail.reason_of(v) {
                None => false, // decision literal: must stay
                Some(rc) => {
                    let lits = self.db.lits(rc);
                    lits.iter().all(|&q| {
                        q.var() == v
                            || self.seen[q.var().index()]
                            || self.trail.level_of(q.var()) == 0
                    })
                }
            };
            if !removable {
                learnt[j] = learnt[i];
                j += 1;
            }
        }
        learnt.truncate(j);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Sensitivity, SolverConfig};
    use crate::search::SolveStatus;
    use crate::solver::Solver;
    use berkmin_cnf::{Lit, Var};

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    /// The paper's §2 worked example: F = (a∨¬b)(b∨¬c∨y)(c∨¬d∨x)(c∨d)
    /// with x=0, y=0 forced; branching a=0 yields a conflict whose clause
    /// is c∨x (modulo the exact resolution order).
    fn paper_example_solver(cfg: SolverConfig) -> Solver {
        let mut s = Solver::with_config(cfg);
        // Vars: a=1, b=2, c=3, d=4, x=5, y=6 (DIMACS numbering).
        s.add_clause([lit(1), lit(-2)]);
        s.add_clause([lit(2), lit(-3), lit(6)]);
        s.add_clause([lit(3), lit(-4), lit(5)]);
        s.add_clause([lit(3), lit(4)]);
        s.add_clause([lit(-5)]); // x = 0
        s.add_clause([lit(-6)]); // y = 0
        s
    }

    #[test]
    fn paper_example_is_satisfiable_overall() {
        let mut s = paper_example_solver(SolverConfig::berkmin());
        // a=1,b=*,c=1 satisfies everything; solver must find some model.
        match s.solve() {
            SolveStatus::Sat(m) => {
                assert!(m.satisfies(lit(3)), "c must be 1 in any model with x=y=0");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn conflict_analysis_learns_and_recovers() {
        // Force the conflict by deciding a=0 manually.
        let mut s = paper_example_solver(SolverConfig::berkmin());
        assert!(s.propagate().is_none());
        s.push_decision(lit(-1));
        let confl = s.propagate().expect("a=0 must conflict (paper §2)");
        let (learnt, bt, lbd) = s.analyze(confl);
        // The conflict sits entirely inside level 1, and level-0 literals
        // never enter the learnt clause, so the glue is exactly 1.
        assert_eq!(lbd, 1);
        assert_eq!(s.stats.lbd_sum, 1);
        assert_eq!(s.stats.lbd_max, 1);
        // The conflict is confined to level 1, so we backtrack to 0 and the
        // learnt clause is the unit ¬(a=0) consequence chain: it must force
        // progress, i.e. assert c (and possibly a).
        assert_eq!(bt, 0);
        assert!(!learnt.is_empty());
        // Asserting literal must be unassigned after backtracking.
        s.cancel_until(bt);
        assert!(s.lit_value(learnt[0]).is_undef());
        s.record_learnt(learnt);
        assert!(
            s.propagate().is_none(),
            "learnt unit must propagate cleanly"
        );
        // c must now be forced true at level 0.
        assert_eq!(s.lit_value(lit(3)), berkmin_cnf::LBool::True);
    }

    #[test]
    fn berkmin_sensitivity_bumps_resolved_variables() {
        // In the paper's resolution example the variables a and c take part
        // in responsible clauses but not in the conflict clause; BerkMin
        // bumps them, the Chaff-like rule does not (§4).
        let run = |sens: Sensitivity| -> Vec<u64> {
            let mut cfg = SolverConfig::berkmin();
            cfg.sensitivity = sens;
            let mut s = paper_example_solver(cfg);
            assert!(s.propagate().is_none());
            s.push_decision(lit(-1));
            let confl = s.propagate().unwrap();
            let (learnt, bt, _lbd) = s.analyze(confl);
            s.cancel_until(bt);
            s.record_learnt(learnt);
            s.var_activity.clone()
        };
        let berkmin = run(Sensitivity::Berkmin);
        let chaff = run(Sensitivity::ConflictClauseOnly);
        // Variable d (index 3) is resolved away: it appears in two
        // responsible clauses, so BerkMin credits it while Chaff cannot.
        assert!(berkmin[Var::new(3).index()] >= 2);
        assert_eq!(chaff[Var::new(3).index()], 0);
        // Total credited activity is strictly larger under BerkMin.
        assert!(berkmin.iter().sum::<u64>() > chaff.iter().sum::<u64>());
    }

    #[test]
    fn clause_activity_counts_responsibility() {
        let mut s = paper_example_solver(SolverConfig::berkmin());
        assert!(s.propagate().is_none());
        s.push_decision(lit(-1));
        let confl = s.propagate().unwrap();
        let before: u32 = s.db.iter_live().map(|c| s.db.activity(c)).sum();
        assert_eq!(before, 0);
        let (learnt, bt, _lbd) = s.analyze(confl);
        let after: u32 = s.db.iter_live().map(|c| s.db.activity(c)).sum();
        assert!(
            after >= 2,
            "at least conflicting + one reason clause credited"
        );
        s.cancel_until(bt);
        s.record_learnt(learnt);
    }

    #[test]
    fn minimization_never_changes_verdicts() {
        // Same instance solved with and without minimization must agree.
        let mut plain = paper_example_solver(SolverConfig::berkmin());
        let mut cfg = SolverConfig::berkmin();
        cfg.minimize_learnt = true;
        let mut min = paper_example_solver(cfg);
        assert_eq!(plain.solve().is_sat(), min.solve().is_sat());
    }
}
