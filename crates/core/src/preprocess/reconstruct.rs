//! Model reconstruction over eliminated variables.
//!
//! Bounded variable elimination removes a variable `x` by replacing the
//! clauses containing `x` with their pairwise resolvents. A model of the
//! reduced formula says nothing about `x`; to answer SAT against the
//! *original* formula the solver must extend the model with a value for
//! `x` that satisfies the deleted clauses. The [`Reconstructor`] records,
//! per eliminated variable, the deleted clauses of **one** side (all those
//! containing the side literal `l`) and replays them in reverse
//! elimination order: set `l` false by default, flip it true iff some
//! recorded clause has every *other* literal false. The clauses of the
//! opposite side are then satisfied automatically — any countermodel would
//! falsify a resolvent, which the search model is known to satisfy.

use berkmin_cnf::{Assignment, Lit};

/// The reconstruction stack: per eliminated variable, the side literal and
/// the deleted clauses containing it, in elimination order. Storage is
/// flat (one literal pool, one clause-range table, one entry table) so
/// recording costs no per-clause allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Reconstructor {
    /// Literal pool backing every recorded clause.
    lits: Vec<Lit>,
    /// Recorded clauses as `[start, end)` ranges into [`Reconstructor::lits`].
    clauses: Vec<(u32, u32)>,
    /// One entry per eliminated variable, in elimination order: the side
    /// literal plus its `[start, end)` range into
    /// [`Reconstructor::clauses`].
    entries: Vec<(Lit, u32, u32)>,
}

impl Reconstructor {
    /// Number of recorded elimination entries.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Records the elimination of `side.var()`: `clauses` are the deleted
    /// clauses containing the literal `side` (the smaller occurrence side).
    pub(crate) fn record<'a, I>(&mut self, side: Lit, clauses: I)
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        let first = self.clauses.len() as u32;
        for clause in clauses {
            debug_assert!(clause.contains(&side), "recorded clause misses {side:?}");
            let start = self.lits.len() as u32;
            self.lits.extend_from_slice(clause);
            self.clauses.push((start, self.lits.len() as u32));
        }
        self.entries.push((side, first, self.clauses.len() as u32));
    }

    /// Appends `other`'s entries after this stack's own (rebasing its
    /// ranges). Used by the portfolio engine, which simplifies through a
    /// throwaway solver per call and accumulates the elimination history
    /// across calls — `other`'s eliminations happened *later*, so appending
    /// keeps the reverse replay order correct.
    pub(crate) fn absorb(&mut self, other: &Reconstructor) {
        let lit_base = self.lits.len() as u32;
        let clause_base = self.clauses.len() as u32;
        self.lits.extend_from_slice(&other.lits);
        self.clauses.extend(
            other
                .clauses
                .iter()
                .map(|&(s, e)| (s + lit_base, e + lit_base)),
        );
        self.entries.extend(
            other
                .entries
                .iter()
                .map(|&(l, f, la)| (l, f + clause_base, la + clause_base)),
        );
    }

    /// Extends `model` (a total assignment of the simplified formula) over
    /// every eliminated variable, walking the entries in reverse
    /// elimination order. After the walk the model satisfies every clause
    /// that was ever deleted by elimination.
    pub(crate) fn extend_model(&self, model: &mut Assignment) {
        for &(side, first, last) in self.entries.iter().rev() {
            // Default: make the side literal false …
            model.assign(side.var(), side.is_negative());
            // … unless some recorded clause needs it true (all its other
            // literals are false under the extended-so-far model).
            let forced = self.clauses[first as usize..last as usize]
                .iter()
                .any(|&(s, e)| {
                    self.lits[s as usize..e as usize]
                        .iter()
                        .all(|&l| l == side || !model.satisfies(l))
                });
            if forced {
                model.assign(side.var(), side.is_positive());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_cnf::Var;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn default_leaves_side_literal_false() {
        // Eliminate x1 whose positive side was {(x1 ∨ x2)}; model has x2
        // true, so the clause is satisfied and x1 stays false.
        let mut r = Reconstructor::default();
        r.record(lit(1), [&[lit(1), lit(2)][..]]);
        let mut model = Assignment::new(2);
        model.assign(Var::new(1), true);
        r.extend_model(&mut model);
        assert!(model.satisfies(lit(-1)));
    }

    #[test]
    fn clause_with_other_literals_false_forces_side_true() {
        let mut r = Reconstructor::default();
        r.record(lit(1), [&[lit(1), lit(2)][..]]);
        let mut model = Assignment::new(2);
        model.assign(Var::new(1), false); // x2 false ⇒ clause needs x1
        r.extend_model(&mut model);
        assert!(model.satisfies(lit(1)));
    }

    #[test]
    fn negative_side_literal_is_handled() {
        // Side literal ¬x1 with clause (¬x1 ∨ x2), x2 false ⇒ x1 = false.
        let mut r = Reconstructor::default();
        r.record(lit(-1), [&[lit(-1), lit(2)][..]]);
        let mut model = Assignment::new(2);
        model.assign(Var::new(1), false);
        r.extend_model(&mut model);
        assert!(model.satisfies(lit(-1)));
    }

    #[test]
    fn absorb_appends_and_rebases_ranges() {
        // Same scenario as the reverse-order test, but split across two
        // stacks merged with `absorb` — replay must behave identically.
        let mut a = Reconstructor::default();
        a.record(lit(1), [&[lit(1), lit(2)][..]]);
        let mut b = Reconstructor::default();
        b.record(lit(2), [&[lit(2), lit(3)][..]]);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        let mut model = Assignment::new(3);
        model.assign(Var::new(2), false);
        a.extend_model(&mut model);
        assert!(model.satisfies(lit(2)));
        assert!(model.satisfies(lit(-1)));
    }

    #[test]
    fn reverse_order_lets_later_entries_feed_earlier_ones() {
        // Eliminate x1 first (side clause (x1 ∨ x2)), then x2 (side clause
        // (x2 ∨ x3)). Reconstruction must value x2 before x1 consults it.
        let mut r = Reconstructor::default();
        r.record(lit(1), [&[lit(1), lit(2)][..]]);
        r.record(lit(2), [&[lit(2), lit(3)][..]]);
        let mut model = Assignment::new(3);
        model.assign(Var::new(2), false); // x3 false
        r.extend_model(&mut model);
        // x2 forced true by (x2 ∨ x3); then (x1 ∨ x2) is satisfied, so x1
        // keeps its default false.
        assert!(model.satisfies(lit(2)));
        assert!(model.satisfies(lit(-1)));
    }
}
