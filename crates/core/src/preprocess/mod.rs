//! SatELite-style preprocessing/inprocessing over occurrence lists.
//!
//! The simplifier runs at solve entry (and, with
//! [`SimplifyConfig::inprocess`](crate::SimplifyConfig), at every later
//! call) over the live *original* clauses, performing three passes under
//! one occurrence index:
//!
//! * **Backward subsumption** — a clause `A ⊆ B` kills `B`; candidate sets
//!   come from the occurrence list of `A`'s rarest literal, pre-filtered by
//!   64-bit signatures ([`occur`]).
//! * **Self-subsuming resolution** — if `(A \ {l}) ∪ {¬l} ⊆ B` then
//!   resolving `A` against `B` on `l` yields `B \ {¬l}`, which subsumes
//!   `B`: `B` is strengthened in place by dropping `¬l`.
//! * **Bounded variable elimination** — a variable whose resolvent set
//!   stays under the configured caps is dissolved: the pairwise resolvents
//!   replace the clauses containing it ([`eliminate`]), and the deleted
//!   clauses of one side go onto the reconstruction stack
//!   ([`reconstruct`]) so SAT models extend back over the variable.
//!
//! Every transformation is reported to the proof sink — strengthened
//! clauses and resolvents as `add` lines (each is RUP against the clauses
//! present at emission time), removals as `d` lines (mostly batched through
//! the arena collector at the end of the run). Unit consequences discovered
//! by the simplifier are enqueued at level 0 and applied to the index
//! eagerly; after the final garbage collection they are propagated through
//! the rebuilt watch lists so the search starts from a fixpoint.
//!
//! The watch-safety contract: any clause this module rewrites or creates is
//! stripped of **all** literals false at level 0 before it lands in the
//! arena, so [`Solver::rebuild_watches`] (which blindly watches positions
//! 0 and 1) can never install a watch on an already-false literal of an
//! unsatisfied clause.

mod eliminate;
mod occur;
mod reconstruct;
mod subsume;

pub(crate) use reconstruct::Reconstructor;

use berkmin_cnf::{LBool, Lit, Var};

use crate::clause_db::ClauseRef;
use crate::config::ActivityIndex;
use crate::proof::ProofSink;
use crate::solver::Solver;
use crate::telemetry::SolveEvent;

use occur::OccIndex;

/// Working state of one simplifier run: the occurrence index plus the two
/// work queues (clauses pending a subsumption scan, variables touched since
/// the last elimination sweep) and the trail cursor of unit application.
pub(crate) struct SimpState {
    /// Occurrence index over the live original clauses.
    pub(crate) idx: OccIndex,
    /// Dense ids queued for a (re-)subsumption scan.
    pub(crate) queue: Vec<u32>,
    /// Variables touched by a deletion/strengthening since the last
    /// elimination sweep — the only candidates later rounds revisit.
    touched: Vec<Var>,
    /// Dedup marks for [`SimpState::touched`].
    touched_mark: Vec<bool>,
    /// Trail cursor: units below this index have been applied to the index.
    pub(crate) applied: usize,
}

impl SimpState {
    fn new(num_vars: usize) -> Self {
        SimpState {
            idx: OccIndex::new(num_vars),
            queue: Vec::new(),
            touched: Vec::new(),
            touched_mark: vec![false; num_vars],
            applied: 0,
        }
    }

    /// Marks `v` as touched (idempotent until the next drain).
    pub(crate) fn touch(&mut self, v: Var) {
        if !self.touched_mark[v.index()] {
            self.touched_mark[v.index()] = true;
            self.touched.push(v);
        }
    }

    /// Drains the touched-variable queue for an elimination sweep.
    pub(crate) fn drain_touched(&mut self) -> Vec<Var> {
        for v in &self.touched {
            self.touched_mark[v.index()] = false;
        }
        std::mem::take(&mut self.touched)
    }
}

impl Solver {
    /// Runs the configured simplification passes. Called at solve entry
    /// with the trail at level 0 and fully propagated; afterwards the
    /// clause arena is compacted, the watch lists rebuilt, and every unit
    /// consequence propagated (a level-0 conflict clears
    /// [`Solver::is_ok`]).
    pub(crate) fn simplify_formula(&mut self, proof: &mut dyn ProofSink) {
        let cfg = self.config.simplify;
        if !cfg.enable || (!cfg.subsumption && !cfg.var_elim) || !self.ok {
            return;
        }
        if !self.limits.simplify_due(cfg.inprocess) {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(self.trail.queue_drained(), "trail must be propagated");

        // The current call's assumption variables must survive: freeze them
        // (permanently — a later call may assume them again).
        for i in 0..self.assumptions.len() {
            let v = self.assumptions[i].var();
            self.frozen[v.index()] = true;
        }

        let observing = self.has_observer();
        let clauses_before = self.db.num_live() as u64;
        let base = (
            self.stats.clauses_subsumed,
            self.stats.clauses_strengthened,
            self.stats.vars_eliminated,
            self.stats.elim_resolvents,
        );

        // Index every live original clause as-is; stale literals (falsified
        // by units learnt since insertion) are stripped by the initial
        // apply_units sweep over the whole trail.
        let mut st = SimpState::new(self.num_vars);
        let live: Vec<ClauseRef> = self.db.iter_live().collect();
        for cref in live {
            if self.db.is_learnt(cref) {
                continue;
            }
            st.idx.add(cref, self.db.lits(cref));
        }
        st.queue = (0..st.idx.clauses.len() as u32).collect();

        let mut rounds = 0u32;
        while rounds < cfg.rounds && self.ok {
            rounds += 1;
            let mark = (
                self.stats.clauses_subsumed,
                self.stats.clauses_strengthened,
                self.stats.vars_eliminated,
                self.trail.len(),
            );
            self.apply_units(&mut st, proof);
            if self.ok && cfg.subsumption {
                self.subsumption_pass(&mut st, proof);
            }
            if self.ok && cfg.var_elim {
                self.elimination_pass(&mut st, proof, rounds == 1);
                if self.ok {
                    self.apply_units(&mut st, proof);
                }
            }
            let now = (
                self.stats.clauses_subsumed,
                self.stats.clauses_strengthened,
                self.stats.vars_eliminated,
                self.trail.len(),
            );
            if now == mark {
                break;
            }
        }

        if self.stats.vars_eliminated > base.2 {
            // Learnt clauses mentioning an eliminated variable are sound
            // but useless (the variable is unbranchable and unconstrained):
            // drop them so no live clause mentions an eliminated variable.
            let learnts: Vec<ClauseRef> = self
                .db
                .iter_live()
                .filter(|&c| self.db.is_learnt(c))
                .collect();
            for cref in learnts {
                let dead = self
                    .db
                    .lits(cref)
                    .iter()
                    .any(|l| self.eliminated[l.var().index()]);
                if dead {
                    self.db.delete(cref);
                    self.stats.deleted_clauses += 1;
                }
            }
            // An eliminated variable must never surface as a branching
            // candidate again.
            if self.config.activity_index == ActivityIndex::Heap {
                for i in 0..self.num_vars {
                    if self.eliminated[i] {
                        self.heap.remove(Var::new(i as u32), &self.var_activity);
                    }
                }
            }
        }

        // Reclaim every record deleted above (emitting its `d` line) and
        // rebuild the watch lists over the survivors, then run the unit
        // consequences through BCP so the search resumes at a fixpoint.
        self.collect_garbage(proof);
        if self.ok && self.propagate().is_some() {
            self.ok = false;
        }

        if observing {
            let event = SolveEvent::Simplify {
                rounds,
                subsumed: self.stats.clauses_subsumed - base.0,
                strengthened: self.stats.clauses_strengthened - base.1,
                eliminated: self.stats.vars_eliminated - base.2,
                resolvents: self.stats.elim_resolvents - base.3,
                clauses_before,
                clauses_after: self.db.num_live() as u64,
            };
            self.emit(event);
        }
        if self.ok {
            self.paranoid_audit("after simplify");
        }
    }

    /// Applies every unassimilated level-0 unit to the occurrence index:
    /// clauses satisfied by the unit are deleted, clauses containing its
    /// negation are strengthened (which may enqueue further units — the
    /// loop runs to the trail's end).
    pub(crate) fn apply_units(&mut self, st: &mut SimpState, proof: &mut dyn ProofSink) {
        while st.applied < self.trail.len() {
            let l = self.trail.lit_at(st.applied);
            st.applied += 1;
            for id in st.idx.compact_occ(l) {
                let cref = st.idx.cref(id);
                st.idx.kill(id);
                for &x in self.db.lits(cref) {
                    st.touch(x.var());
                }
                self.db.delete(cref);
                self.stats.deleted_clauses += 1;
            }
            st.idx.clear_occ(l);
            for id in st.idx.compact_occ(!l) {
                if !st.idx.is_live(id) {
                    continue;
                }
                self.strengthen_clause(st, id, !l, proof);
                if !self.ok {
                    return;
                }
            }
            st.idx.clear_occ(!l);
        }
    }

    /// Rewrites clause `id` to its current literal set minus `remove` and
    /// minus every literal false at level 0, reporting the change to the
    /// proof sink (`add` of the new set, then `d` of the old — the order
    /// that keeps the stream RUP-checkable). A clause that is satisfied at
    /// level 0 is deleted instead; one that degenerates to a unit asserts
    /// the unit and dissolves; the empty clause clears [`Solver::is_ok`].
    pub(crate) fn strengthen_clause(
        &mut self,
        st: &mut SimpState,
        id: u32,
        remove: Lit,
        proof: &mut dyn ProofSink,
    ) {
        let cref = st.idx.cref(id);
        let old: Vec<Lit> = self.db.lits(cref).to_vec();
        if old
            .iter()
            .any(|&l| l != remove && self.lit_value(l) == LBool::True)
        {
            // Satisfied at level 0: remove outright (`d` line at GC time).
            st.idx.kill(id);
            for &x in &old {
                st.touch(x.var());
            }
            self.db.delete(cref);
            self.stats.deleted_clauses += 1;
            return;
        }
        let new: Vec<Lit> = old
            .iter()
            .copied()
            .filter(|&l| l != remove && self.lit_value(l) != LBool::False)
            .collect();
        debug_assert!(new.len() < old.len(), "strengthening removed nothing");
        proof.add_clause(&new);
        match new.len() {
            0 => {
                self.ok = false;
                st.idx.kill(id);
                self.db.delete(cref);
            }
            1 => {
                if self.lit_value(new[0]).is_undef() {
                    self.unchecked_enqueue(new[0], None);
                }
                st.idx.kill(id);
                for &x in &old {
                    st.touch(x.var());
                }
                self.db.delete(cref);
                self.stats.deleted_clauses += 1;
            }
            n => {
                proof.delete_clause(&old);
                self.db.lits_mut(cref)[..n].copy_from_slice(&new);
                self.db.shrink(cref, n);
                for &l in &old {
                    if !new.contains(&l) {
                        st.idx.detach_lit(id, l, &new);
                        st.touch(l.var());
                    }
                }
                // The shorter clause may subsume clauses its old self could
                // not — give it another scan.
                st.queue.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimplifyConfig, SolverConfig};
    use crate::proof::NoProof;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver(simplify: SimplifyConfig) -> Solver {
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = simplify;
        Solver::with_config(cfg)
    }

    #[test]
    fn subsumed_clauses_are_removed_at_solve_entry() {
        let mut s = solver(SimplifyConfig::default());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]); // subsumed
        s.add_clause([lit(-1), lit(-2), lit(4)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_subsumed, 1);
        assert_eq!(s.num_original_clauses(), 2);
    }

    #[test]
    fn self_subsumption_strengthens_clauses() {
        // (x1 ∨ x2) and (¬x1 ∨ x2 ∨ x3): resolving on x1 gives (x2 ∨ x3),
        // which subsumes the second clause — it loses ¬x1.
        let mut s = solver(SimplifyConfig::default());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2), lit(3)]);
        s.add_clause([lit(-2), lit(-3)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_strengthened, 1);
    }

    #[test]
    fn variable_elimination_removes_the_variable() {
        // x2 occurs in (x1 ∨ x2) and (¬x2 ∨ x3): one resolvent (x1 ∨ x3),
        // growth 0 allows it (1 ≤ 1 + 1 + 0).
        let mut s = solver(SimplifyConfig::full());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(-1), lit(4)]);
        let status = s.solve();
        let model = status.model().expect("satisfiable");
        assert!(s.stats().vars_eliminated >= 1);
        // The reconstructed model must satisfy the original clauses.
        assert!(model.satisfies(lit(1)) || model.satisfies(lit(2)));
        assert!(model.satisfies(lit(-2)) || model.satisfies(lit(3)));
        assert!(model.satisfies(lit(-1)) || model.satisfies(lit(4)));
    }

    #[test]
    fn simplify_off_leaves_the_formula_alone() {
        let mut s = solver(SimplifyConfig::off());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_subsumed, 0);
        assert_eq!(s.num_original_clauses(), 2);
    }

    #[test]
    fn default_config_simplifies_only_the_first_call() {
        let mut s = solver(SimplifyConfig::default());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_subsumed, 1);
        s.add_clause([lit(4), lit(5)]);
        s.add_clause([lit(4), lit(5), lit(6)]);
        assert!(s.solve().is_sat());
        // Second call: no inprocessing under the default preset.
        assert_eq!(s.stats().clauses_subsumed, 1);
    }

    #[test]
    fn frozen_variables_survive_elimination() {
        let mut s = solver(SimplifyConfig::full());
        s.freeze(Var::new(1)); // protect x2
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        assert!(s.solve().is_sat());
        assert!(!s.is_eliminated(Var::new(1)));
        // The frozen variable can still be assumed afterwards.
        s.assume(lit(-2));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumption_variables_are_auto_frozen() {
        let mut s = solver(SimplifyConfig::full());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.assume(lit(2));
        let status = s.solve();
        assert!(status.is_sat());
        assert!(!s.is_eliminated(Var::new(1)));
        assert!(status.model().unwrap().satisfies(lit(2)));
    }

    #[test]
    fn unsat_survives_simplification_with_a_proof() {
        #[derive(Default)]
        struct Recording {
            adds: Vec<Vec<Lit>>,
            dels: Vec<Vec<Lit>>,
        }
        impl crate::proof::ProofSink for Recording {
            fn add_clause(&mut self, lits: &[Lit]) {
                self.adds.push(lits.to_vec());
            }
            fn delete_clause(&mut self, lits: &[Lit]) {
                self.dels.push(lits.to_vec());
            }
        }

        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(1), lit(2)],
            vec![lit(1), lit(2), lit(3)],
            vec![lit(-1), lit(2)],
            vec![lit(-2), lit(3)],
            vec![lit(-3), lit(-2)],
        ];
        let proof = std::rc::Rc::new(std::cell::RefCell::new(Recording::default()));
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = SimplifyConfig::full();
        let mut s = crate::builder::SolverBuilder::with_config(cfg)
            .proof(std::rc::Rc::clone(&proof))
            .build();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let status = s.solve();
        assert!(status.is_unsat());
        // The refutation ends in the empty clause, and the simplifier's
        // removals (the subsumed ternary at least) produced `d` lines.
        let proof = proof.borrow();
        assert_eq!(proof.adds.last().map(Vec::len), Some(0));
        assert!(!proof.dels.is_empty());
    }

    #[test]
    fn strengthen_clause_handles_satisfied_and_unit_cases() {
        let mut s = solver(SimplifyConfig::off());
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(4)]);
        assert!(s.propagate().is_none());
        let mut st = SimpState::new(s.num_vars);
        let crefs: Vec<ClauseRef> = s.db.iter_live().collect();
        let id = st.idx.add(crefs[0], s.db.lits(crefs[0]));
        // Remove x1, then x2: the clause degenerates to the unit x3.
        s.strengthen_clause(&mut st, id, lit(1), &mut NoProof);
        let id = st.idx.compact_occ(lit(2))[0];
        s.strengthen_clause(&mut st, id, lit(2), &mut NoProof);
        assert_eq!(s.value(Var::new(2)), LBool::True);
        assert!(!st.idx.is_live(id));
    }
}
