//! Occurrence lists and clause signatures — the simplifier's index.
//!
//! The index is rebuilt for each simplifier run: every live *original*
//! clause gets a dense id, a 64-bit signature, and an entry in the
//! occurrence list of each of its literals. Passes address clauses by
//! dense id; the arena [`ClauseRef`] is consulted only to read or rewrite
//! literals. Deletion is lazy (a `live` flag) except where a pass
//! invalidates a specific literal's list, which is pruned eagerly so the
//! lists stay an exact "clauses containing `l`" relation.

use berkmin_cnf::Lit;

use crate::clause_db::ClauseRef;

/// Per-clause bookkeeping of the simplifier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClauseInfo {
    /// Arena record backing this clause.
    pub(crate) cref: ClauseRef,
    /// Signature: OR of `1 << (lit.code() % 64)` over the literals. If
    /// `sig(A) & !sig(B) != 0` then `A ⊄ B` — the cheap pre-filter in
    /// front of every subset check.
    pub(crate) sig: u64,
    /// False once the clause has been deleted or dissolved.
    pub(crate) live: bool,
}

/// The simplifier's occurrence index over the original clauses.
#[derive(Debug, Default)]
pub(crate) struct OccIndex {
    /// Dense clause table.
    pub(crate) clauses: Vec<ClauseInfo>,
    /// `occ[l.code()]` = dense ids of live clauses containing literal `l`
    /// (may contain stale ids of deleted clauses; check `live`).
    occ: Vec<Vec<u32>>,
    /// Subset-check scratch, one stamp per literal code.
    stamp: Vec<u64>,
    /// Current stamp generation.
    stamp_gen: u64,
}

/// The signature bit of one literal.
#[inline]
fn sig_bit(l: Lit) -> u64 {
    1u64 << (l.code() % 64)
}

/// The signature of a literal set.
pub(crate) fn signature(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, &l| s | sig_bit(l))
}

impl OccIndex {
    /// An empty index covering `num_vars` variables.
    pub(crate) fn new(num_vars: usize) -> Self {
        OccIndex {
            clauses: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            stamp: vec![0; 2 * num_vars],
            stamp_gen: 0,
        }
    }

    /// Registers a clause, returning its dense id.
    pub(crate) fn add(&mut self, cref: ClauseRef, lits: &[Lit]) -> u32 {
        let id = self.clauses.len() as u32;
        self.clauses.push(ClauseInfo {
            cref,
            sig: signature(lits),
            live: true,
        });
        for &l in lits {
            self.occ[l.code()].push(id);
        }
        id
    }

    #[inline]
    pub(crate) fn is_live(&self, id: u32) -> bool {
        self.clauses[id as usize].live
    }

    #[inline]
    pub(crate) fn cref(&self, id: u32) -> ClauseRef {
        self.clauses[id as usize].cref
    }

    #[inline]
    pub(crate) fn sig(&self, id: u32) -> u64 {
        self.clauses[id as usize].sig
    }

    /// Marks a clause dead. Its occurrence entries are left to lazy
    /// filtering — every consumer checks [`OccIndex::is_live`].
    pub(crate) fn kill(&mut self, id: u32) {
        self.clauses[id as usize].live = false;
    }

    /// Clauses currently listed as containing `l` (ids may be stale).
    #[cfg(test)]
    pub(crate) fn occ(&self, l: Lit) -> &[u32] {
        &self.occ[l.code()]
    }

    /// Number of *live* clauses containing `l`.
    pub(crate) fn occ_len_live(&self, l: Lit) -> usize {
        self.occ[l.code()]
            .iter()
            .filter(|&&id| self.is_live(id))
            .count()
    }

    /// Drops dead ids from `l`'s list and returns the live ids.
    pub(crate) fn compact_occ(&mut self, l: Lit) -> Vec<u32> {
        let clauses = &self.clauses;
        self.occ[l.code()].retain(|&id| clauses[id as usize].live);
        self.occ[l.code()].clone()
    }

    /// Removes `id` from `l`'s occurrence list (after `l` was struck from
    /// the clause) and refreshes the clause's signature from `lits`.
    pub(crate) fn detach_lit(&mut self, id: u32, l: Lit, remaining: &[Lit]) {
        let list = &mut self.occ[l.code()];
        if let Some(p) = list.iter().position(|&x| x == id) {
            list.swap_remove(p);
        }
        self.clauses[id as usize].sig = signature(remaining);
    }

    /// Clears `l`'s occurrence list outright (every listed clause was just
    /// deleted, e.g. by unit application or variable elimination).
    pub(crate) fn clear_occ(&mut self, l: Lit) {
        self.occ[l.code()].clear();
    }

    /// The literal of `lits` with the shortest occurrence list — the
    /// cheapest candidate set for a backward-subsumption scan.
    pub(crate) fn min_occ_lit(&self, lits: &[Lit]) -> Lit {
        *lits
            .iter()
            .min_by_key(|l| self.occ[l.code()].len())
            .expect("clauses in the index have at least two literals")
    }

    /// Stamps `lits` as the current membership set for
    /// [`OccIndex::stamped`] queries.
    pub(crate) fn stamp_clause(&mut self, lits: &[Lit]) {
        self.stamp_gen += 1;
        for &l in lits {
            self.stamp[l.code()] = self.stamp_gen;
        }
    }

    /// Whether `l` belongs to the most recently stamped clause.
    #[inline]
    pub(crate) fn stamped(&self, l: Lit) -> bool {
        self.stamp[l.code()] == self.stamp_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn signatures_prefilter_subsets() {
        let a = signature(&[lit(1), lit(2)]);
        let b = signature(&[lit(1), lit(2), lit(3)]);
        // a ⊆ b ⇒ the filter must not reject.
        assert_eq!(a & !b, 0);
        // ¬x1 ∉ {x1,x2,x3} and the codes differ, so the filter rejects.
        let c = signature(&[lit(-1)]);
        assert_ne!(c & !b, 0);
    }

    #[test]
    fn occurrence_lists_track_membership_and_detach() {
        let mut idx = OccIndex::new(4);
        let cref = ClauseRef(0);
        let id = idx.add(cref, &[lit(1), lit(2), lit(3)]);
        assert_eq!(idx.occ(lit(2)), &[id]);
        assert_eq!(idx.occ_len_live(lit(2)), 1);
        idx.detach_lit(id, lit(2), &[lit(1), lit(3)]);
        assert!(idx.occ(lit(2)).is_empty());
        assert_eq!(idx.sig(id), signature(&[lit(1), lit(3)]));
        idx.kill(id);
        assert_eq!(idx.occ_len_live(lit(1)), 0);
        assert!(idx.compact_occ(lit(1)).is_empty());
    }

    #[test]
    fn stamping_answers_membership() {
        let mut idx = OccIndex::new(3);
        idx.stamp_clause(&[lit(1), lit(-2)]);
        assert!(idx.stamped(lit(1)));
        assert!(idx.stamped(lit(-2)));
        assert!(!idx.stamped(lit(2)));
        idx.stamp_clause(&[lit(3)]);
        assert!(!idx.stamped(lit(1)));
    }

    #[test]
    fn min_occ_lit_picks_the_rarest_literal() {
        let mut idx = OccIndex::new(3);
        idx.add(ClauseRef(0), &[lit(1), lit(2)]);
        idx.add(ClauseRef(8), &[lit(1), lit(3)]);
        assert_ne!(idx.min_occ_lit(&[lit(1), lit(2)]), lit(1));
    }
}
