//! Backward subsumption and self-subsuming resolution.
//!
//! The pass is queue-driven: every indexed clause starts queued, and any
//! clause the simplifier rewrites (strengthening) or creates (elimination
//! resolvents) is re-queued. For a queued clause `A`:
//!
//! * **Subsumption** — candidates are the occurrence list of `A`'s rarest
//!   literal (every superset of `A` must contain it). A candidate `B`
//!   survives the signature filter (`sig(A) & !sig(B) == 0`) and the
//!   length check only if it might really include `A`; the exact test
//!   stamps `B`'s literals and checks that every literal of `A` is
//!   stamped. `A ⊆ B` deletes `B`.
//! * **Self-subsuming resolution** — for each literal `l ∈ A`, candidates
//!   containing `¬l` are scanned with the signature of `A[l := ¬l]`; if
//!   `(A \ {l}) ∪ {¬l} ⊆ B`, resolving `A` with `B` on `l` yields
//!   `B \ {¬l}`, which subsumes `B` — so `B` is strengthened in place.
//!
//! Unit consequences enqueued by strengthening are assimilated between
//! queue pops, so the occurrence lists never go stale against the trail.

use berkmin_cnf::Lit;

use crate::proof::ProofSink;
use crate::solver::Solver;

use super::occur::signature;
use super::SimpState;

impl Solver {
    /// Drains the subsumption queue, interleaving unit application.
    pub(crate) fn subsumption_pass(&mut self, st: &mut SimpState, proof: &mut dyn ProofSink) {
        loop {
            self.apply_units(st, proof);
            if !self.ok {
                return;
            }
            let Some(id) = st.queue.pop() else {
                break;
            };
            if !st.idx.is_live(id) {
                continue;
            }
            self.backward_subsume(id, st, proof);
            if !self.ok {
                return;
            }
        }
    }

    /// One clause's backward scan: kill every live clause it subsumes, then
    /// strengthen every clause it self-subsumes.
    fn backward_subsume(&mut self, id: u32, st: &mut SimpState, proof: &mut dyn ProofSink) {
        let a: Vec<Lit> = self.db.lits(st.idx.cref(id)).to_vec();
        let asig = st.idx.sig(id);

        let pivot = st.idx.min_occ_lit(&a);
        for bid in st.idx.compact_occ(pivot) {
            if bid == id || !st.idx.is_live(bid) {
                continue;
            }
            if asig & !st.idx.sig(bid) != 0 {
                continue;
            }
            let bref = st.idx.cref(bid);
            if self.db.len(bref) < a.len() {
                continue;
            }
            st.idx.stamp_clause(self.db.lits(bref));
            if a.iter().all(|&l| st.idx.stamped(l)) {
                st.idx.kill(bid);
                for &l in self.db.lits(bref) {
                    st.touch(l.var());
                }
                self.db.delete(bref);
                self.stats.clauses_subsumed += 1;
                self.stats.deleted_clauses += 1;
            }
        }

        let mut alt = a.clone();
        for i in 0..a.len() {
            if !st.idx.is_live(id) {
                return; // defensive: A itself dissolved
            }
            let l = a[i];
            alt[i] = !l;
            let altsig = signature(&alt);
            for bid in st.idx.compact_occ(!l) {
                if !st.idx.is_live(bid) {
                    continue;
                }
                if altsig & !st.idx.sig(bid) != 0 {
                    continue;
                }
                let bref = st.idx.cref(bid);
                if self.db.len(bref) < a.len() {
                    continue;
                }
                st.idx.stamp_clause(self.db.lits(bref));
                if alt.iter().all(|&x| st.idx.stamped(x)) {
                    self.strengthen_clause(st, bid, !l, proof);
                    self.stats.clauses_strengthened += 1;
                    if !self.ok {
                        return;
                    }
                }
            }
            alt[i] = l;
        }
    }
}

#[cfg(test)]
mod tests {
    use berkmin_cnf::Lit;

    use crate::config::{SimplifyConfig, SolverConfig};
    use crate::solver::Solver;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver() -> Solver {
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = SimplifyConfig::default();
        Solver::with_config(cfg)
    }

    #[test]
    fn duplicate_clauses_collapse_to_one() {
        let mut s = solver();
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(3), lit(2), lit(1)]); // same clause, same form
        s.add_clause([lit(-1), lit(-2)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_subsumed, 1);
    }

    #[test]
    fn chained_strengthening_reaches_fixpoint() {
        // (x1 ∨ x2), (¬x1 ∨ x2 ∨ x3) → strengthen to (x2 ∨ x3);
        // (x2 ∨ x3) then subsumes (x2 ∨ x3 ∨ x4).
        let mut s = solver();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2), lit(3)]);
        s.add_clause([lit(2), lit(3), lit(4)]);
        s.add_clause([lit(-2), lit(5)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().clauses_strengthened, 1);
        assert_eq!(s.stats().clauses_subsumed, 1);
    }

    #[test]
    fn mutual_self_subsumption_derives_a_unit() {
        // (x1 ∨ x2) and (x1 ∨ ¬x2): strengthening either on x2 gives the
        // unit x1, asserted at level 0 before search starts.
        let mut s = solver();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        let status = s.solve();
        assert!(status.is_sat());
        assert!(status.model().unwrap().satisfies(lit(1)));
        assert!(s.stats().clauses_strengthened >= 1);
    }

    #[test]
    fn subsumption_detects_unsat_at_level_zero() {
        // Strengthening cascades to contradictory units: x1, ¬x1.
        let mut s = solver();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(-1), lit(-3)]);
        assert!(s.solve().is_unsat());
    }
}
