//! Bounded variable elimination (clause distribution).
//!
//! A variable `x` is *dissolved* by replacing the clauses containing it
//! with the pairwise resolvents of its positive and negative occurrence
//! sets — sound because any model of the resolvents extends to a model of
//! the originals by choosing `x` appropriately (which is exactly what the
//! reconstruction stack replays, see
//! [`reconstruct`](super::reconstruct)). "Bounded" is the SatELite
//! discipline: skip the variable unless each polarity's occurrence count,
//! every resolvent's length, and the total resolvent count stay under the
//! configured caps ([`SimplifyConfig`](crate::SimplifyConfig)), so the
//! formula never blows up.
//!
//! Proof order matters: every (non-tautological, non-satisfied) resolvent
//! is RUP **while its two parents are still present**, so the resolvents'
//! `add` lines are emitted before any parent clause is deleted.
//!
//! Skipped variables: frozen (user contract / assumptions), already
//! assigned (their occurrences dissolve through unit application), already
//! eliminated, and variables with no occurrences at all (`reserve_vars`
//! headroom — eliminating those would only pollute the reconstruction
//! stack).

use berkmin_cnf::{LBool, Lit, Var};

use crate::proof::ProofSink;
use crate::solver::Solver;

use super::SimpState;

/// The resolvent of `pc` (containing `v` positively) and `nc` (containing
/// `v` negatively) on `v`: the union of both clauses minus the pivot
/// literals, or `None` if it is a tautology.
fn resolve(pc: &[Lit], nc: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut r: Vec<Lit> = pc
        .iter()
        .chain(nc.iter())
        .copied()
        .filter(|l| l.var() != v)
        .collect();
    r.sort_unstable();
    r.dedup();
    if r.windows(2).any(|w| w[0].var() == w[1].var()) {
        return None;
    }
    Some(r)
}

impl Solver {
    /// One elimination sweep: tries every candidate variable once. The
    /// first sweep of a run considers all variables; later sweeps only the
    /// ones touched since (deletions open new pure/low-occurrence spots).
    pub(crate) fn elimination_pass(
        &mut self,
        st: &mut SimpState,
        proof: &mut dyn ProofSink,
        first: bool,
    ) {
        let candidates: Vec<Var> = if first {
            (0..self.num_vars).map(|i| Var::new(i as u32)).collect()
        } else {
            st.drain_touched()
        };
        for v in candidates {
            if !self.ok {
                return;
            }
            self.try_eliminate(v, st, proof);
        }
    }

    /// Attempts to eliminate `v`; a cap violation aborts with no state
    /// changed at all.
    fn try_eliminate(&mut self, v: Var, st: &mut SimpState, proof: &mut dyn ProofSink) {
        let cfg = self.config.simplify;
        if self.frozen[v.index()] || self.eliminated[v.index()] || !self.trail.value(v).is_undef() {
            return;
        }
        let p = Lit::pos(v);
        // Cheap cap check before compacting the (possibly long) lists.
        if st.idx.occ_len_live(p) > cfg.elim_occ_cap || st.idx.occ_len_live(!p) > cfg.elim_occ_cap {
            return;
        }
        let pos = st.idx.compact_occ(p);
        let neg = st.idx.compact_occ(!p);
        if pos.is_empty() && neg.is_empty() {
            return; // unconstrained headroom — nothing to dissolve
        }
        let budget = pos.len() + neg.len() + cfg.elim_growth;
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        for &pi in &pos {
            for &ni in &neg {
                let pc = self.db.lits(st.idx.cref(pi));
                let nc = self.db.lits(st.idx.cref(ni));
                if let Some(r) = resolve(pc, nc, v) {
                    if r.len() > cfg.elim_clause_cap {
                        return;
                    }
                    resolvents.push(r);
                    if resolvents.len() > budget {
                        return;
                    }
                }
            }
        }

        // Committed. Record the smaller side's clauses (verbatim, before
        // any deletion) for model reconstruction.
        let side = if pos.len() <= neg.len() { p } else { !p };
        let side_ids = if side == p { &pos } else { &neg };
        let side_clauses: Vec<Vec<Lit>> = side_ids
            .iter()
            .map(|&id| self.db.lits(st.idx.cref(id)).to_vec())
            .collect();
        self.reconstructor
            .record(side, side_clauses.iter().map(|c| c.as_slice()));

        // Add the resolvents while both parents are still present.
        for r in resolvents {
            if r.iter().any(|&l| self.lit_value(l) == LBool::True) {
                continue; // satisfied at level 0 — carries no constraint
            }
            let r: Vec<Lit> = r
                .into_iter()
                .filter(|&l| self.lit_value(l) != LBool::False)
                .collect();
            proof.add_clause(&r);
            self.stats.elim_resolvents += 1;
            match r.len() {
                0 => {
                    self.ok = false;
                    return; // parents stay; the formula is refuted anyway
                }
                1 => {
                    if self.lit_value(r[0]).is_undef() {
                        self.unchecked_enqueue(r[0], None);
                    }
                }
                _ => {
                    let cref = self.db.add_original(&r);
                    let id = st.idx.add(cref, &r);
                    st.queue.push(id);
                    for &l in &r {
                        st.touch(l.var());
                    }
                    let live = self.db.num_live() as u64;
                    self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
                }
            }
        }

        // Delete every clause containing the variable.
        for &id in pos.iter().chain(neg.iter()) {
            if !st.idx.is_live(id) {
                continue;
            }
            let cref = st.idx.cref(id);
            for &l in self.db.lits(cref) {
                st.touch(l.var());
            }
            st.idx.kill(id);
            self.db.delete(cref);
            self.stats.deleted_clauses += 1;
        }
        st.idx.clear_occ(p);
        st.idx.clear_occ(!p);
        self.eliminated[v.index()] = true;
        self.stats.vars_eliminated += 1;
    }
}

#[cfg(test)]
mod tests {
    use berkmin_cnf::{Lit, Var};

    use crate::config::{SimplifyConfig, SolverConfig};
    use crate::solver::Solver;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver(simplify: SimplifyConfig) -> Solver {
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = simplify;
        Solver::with_config(cfg)
    }

    #[test]
    fn resolve_drops_pivot_and_merges() {
        let r = super::resolve(&[lit(1), lit(2)], &[lit(-1), lit(3)], Var::new(0)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&lit(2)) && r.contains(&lit(3)));
    }

    #[test]
    fn resolve_detects_tautologies() {
        assert!(super::resolve(&[lit(1), lit(2)], &[lit(-1), lit(-2)], Var::new(0)).is_none());
    }

    #[test]
    fn pure_literals_are_eliminated_without_resolvents() {
        // x1 occurs only positively: both clauses dissolve, no resolvents.
        let mut s = solver(SimplifyConfig::full());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(3)]);
        s.add_clause([lit(-2), lit(-3)]);
        let status = s.solve();
        assert!(status.is_sat());
        assert!(s.is_eliminated(Var::new(0)));
        let m = status.model().unwrap();
        assert!(m.satisfies(lit(1)) || m.satisfies(lit(2)));
        assert!(m.satisfies(lit(1)) || m.satisfies(lit(3)));
    }

    #[test]
    fn occurrence_cap_blocks_busy_variables() {
        let mut cfg = SimplifyConfig::full();
        cfg.elim_occ_cap = 1;
        let mut s = solver(cfg);
        // x1 occurs positively twice — over the cap of 1.
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(3)]);
        s.add_clause([lit(-1), lit(4)]);
        assert!(s.solve().is_sat());
        assert!(!s.is_eliminated(Var::new(0)));
    }

    #[test]
    fn growth_cap_blocks_expanding_eliminations() {
        // x1: 3 positive × 2 negative occurrences = 6 distinct resolvents,
        // over the non-growing budget 3+2+0. Every other variable is frozen
        // so x1 stays the only candidate across rounds.
        let mut s = solver(SimplifyConfig::full());
        for v in 1..6 {
            s.freeze(Var::new(v));
        }
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(3)]);
        s.add_clause([lit(1), lit(6)]);
        s.add_clause([lit(-1), lit(4)]);
        s.add_clause([lit(-1), lit(5)]);
        assert!(s.solve().is_sat());
        assert!(!s.is_eliminated(Var::new(0)));
        assert_eq!(s.stats().vars_eliminated, 0);
    }

    #[test]
    fn elimination_keeps_unsat_unsat() {
        // x2 is eliminable; the rest is a contradiction on x1/x3.
        let mut s = solver(SimplifyConfig::full());
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(-3)]);
        s.add_clause([lit(1), lit(3)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn models_reconstruct_over_chains_of_eliminations() {
        // An equivalence chain x1 = x2 = x3 = x4 with no unit to collapse
        // it: elimination dissolves variable after variable (possibly the
        // whole chain), and the reconstructed model must still satisfy
        // every original clause — i.e. keep the chain consistent.
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(-1), lit(2)],
            vec![lit(1), lit(-2)],
            vec![lit(-2), lit(3)],
            vec![lit(2), lit(-3)],
            vec![lit(-3), lit(4)],
            vec![lit(3), lit(-4)],
        ];
        let mut s = solver(SimplifyConfig::full());
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let status = s.solve();
        let m = status.model().expect("satisfiable");
        assert!(s.stats().vars_eliminated >= 1, "the chain must eliminate");
        for c in &clauses {
            assert!(
                c.iter().any(|&l| m.satisfies(l)),
                "clause {c:?} violated by the reconstructed model"
            );
        }
    }
}
