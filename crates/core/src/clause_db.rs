//! Flat clause-arena storage and the chronologically ordered conflict-clause
//! stack.
//!
//! All clause literals live in **one contiguous buffer** (the arena) instead
//! of a slab of per-clause `Vec<Lit>`s, so BCP walks at most one cache line
//! away from a watcher instead of pointer-chasing through two indirections.
//! Each clause is a variable-length record:
//!
//! ```text
//!            ClauseRef(r) ──┐
//!                           ▼
//! arena:  … ┃ header ┃ activity ┃ lit0 ┃ lit1 ┃ … ┃ litN-1 ┃ header ┃ …
//!             │                   └─ watched ──┘
//!             └ len << 3 | FILLER | LEARNT | GARBAGE
//! ```
//!
//! The arena is a `Vec<Lit>`: `Lit` is a transparent `u32` index newtype, so
//! this is a flat `u32` buffer, and the header/activity words are raw `u32`s
//! packed through [`Lit::from_code`] (the crate forbids `unsafe`, which rules
//! out transmuting a `&[u32]` into `&[Lit]` — storing literals natively and
//! packing the two bookkeeping words is the safe dual of that layout).
//!
//! Deletion marks the `GARBAGE` header bit; space is reclaimed by the
//! **compacting collector** [`ClauseDb::collect`], run at every §8 database
//! reduction. The collector slides live records down in chronological order,
//! leaves a forwarding pointer in each moved record's old activity slot, and
//! reports every reclaimed clause to the proof sink as a DRAT `d` line.
//! Callers remap their outstanding [`ClauseRef`]s through the returned
//! [`GcMap`]. In-place strengthening ([`ClauseDb::shrink`]) never moves a
//! record: the tail the shorter clause no longer needs becomes a `FILLER`
//! pseudo-record the sweep skips.

use berkmin_cnf::Lit;

use crate::proof::ProofSink;

/// Handle to a clause: the word offset of its header in the arena.
///
/// Stable across additions and deletions, but **not** across garbage
/// collection — the collector hands back a remapping table through which
/// every outstanding reference is rewritten. Outside this crate the type
/// is opaque: it appears in the public API only as the reason handle of
/// [`Trail::reason_of`](crate::Trail::reason_of) /
/// [`Trail::assign`](crate::Trail::assign).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Header bit: the record is dead and will be reclaimed by the next GC.
const GARBAGE: u32 = 0b001;
/// Header bit: the clause is a deduced conflict clause (vs. original).
const LEARNT: u32 = 0b010;
/// Header bit: a header-only pad record left behind by [`ClauseDb::shrink`];
/// its `len` field counts the pad words that follow the header.
const FILLER: u32 = 0b100;
/// The clause length is stored above the three flag bits.
const LEN_SHIFT: u32 = 3;
/// Words before the literals: header + activity.
const HEADER_WORDS: usize = 2;

/// Total words occupied by the record whose header is `header`.
#[inline]
const fn record_words(header: u32) -> usize {
    let len = (header >> LEN_SHIFT) as usize;
    if header & FILLER != 0 {
        1 + len
    } else {
        HEADER_WORDS + len
    }
}

/// The clause database: original and learnt clauses in one flat arena, plus
/// the chronologically ordered stack of conflict clauses (paper §5: "the set
/// of conflict clauses is organized as a stack, each new conflict clause
/// being added to the top").
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    arena: Vec<Lit>,
    /// Learnt clauses in deduction order; the last element is the top of
    /// the stack. Purged of deleted clauses at every reduction so that
    /// "age" is always a position in the *current* stack (§8).
    pub stack: Vec<ClauseRef>,
    /// Arena words held by garbage and filler records, reclaimed at GC.
    garbage_words: usize,
    num_original_live: usize,
    num_learnt_live: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        ClauseDb::default()
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.idx()].code() as u32
    }

    #[inline]
    fn set_header(&mut self, cref: ClauseRef, header: u32) {
        self.arena[cref.idx()] = Lit::from_code(header);
    }

    /// Appends a record to the arena.
    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let cref = ClauseRef(self.arena.len() as u32);
        let flags = if learnt { LEARNT } else { 0 };
        self.arena
            .push(Lit::from_code((lits.len() as u32) << LEN_SHIFT | flags));
        self.arena.push(Lit::from_code(0)); // activity
        self.arena.extend_from_slice(lits);
        cref
    }

    /// Adds an original (problem) clause.
    pub fn add_original(&mut self, lits: &[Lit]) -> ClauseRef {
        self.num_original_live += 1;
        self.alloc(lits, false)
    }

    /// Adds a learnt clause and pushes it onto the top of the stack.
    pub fn add_learnt(&mut self, lits: &[Lit]) -> ClauseRef {
        self.num_learnt_live += 1;
        let cref = self.alloc(lits, true);
        self.stack.push(cref);
        cref
    }

    /// Marks a clause as garbage; the record (and its literals, still
    /// readable until then) is reclaimed by the next [`ClauseDb::collect`],
    /// which also emits the DRAT `d` line. The caller is responsible for
    /// stack compaction and watch rebuilding (done wholesale at reduction
    /// time).
    pub fn delete(&mut self, cref: ClauseRef) {
        let header = self.header(cref);
        debug_assert_eq!(header & (GARBAGE | FILLER), 0, "double delete of {cref:?}");
        self.set_header(cref, header | GARBAGE);
        self.garbage_words += record_words(header);
        debug_assert!(
            self.garbage_words <= self.arena.len(),
            "garbage accounting exceeds the arena"
        );
        if header & LEARNT != 0 {
            self.num_learnt_live -= 1;
        } else {
            self.num_original_live -= 1;
        }
    }

    /// Whether `cref` points at a garbage (deleted) record.
    #[inline]
    pub fn is_garbage(&self, cref: ClauseRef) -> bool {
        self.header(cref) & GARBAGE != 0
    }

    /// Shrinks a clause in place to its first `new_len` literals (the caller
    /// has already reordered them). The record never moves: the orphaned
    /// tail becomes a `FILLER` pseudo-record so the arena stays walkable.
    pub fn shrink(&mut self, cref: ClauseRef, new_len: usize) {
        let header = self.header(cref);
        let old_len = (header >> LEN_SHIFT) as usize;
        debug_assert!(
            (2..old_len).contains(&new_len),
            "shrink {old_len}→{new_len}"
        );
        let pad = old_len - new_len;
        self.set_header(
            cref,
            (new_len as u32) << LEN_SHIFT | (header & (LEARNT | GARBAGE)),
        );
        let tail = cref.idx() + HEADER_WORDS + new_len;
        self.arena[tail] = Lit::from_code((pad as u32 - 1) << LEN_SHIFT | FILLER | GARBAGE);
        self.garbage_words += pad;
        debug_assert_eq!(
            record_words(self.arena[tail].code() as u32),
            pad,
            "filler pad does not cover the orphaned tail"
        );
        debug_assert_eq!(self.len(cref), new_len, "shrunk header does not round-trip");
    }

    /// Drops deleted entries from the stack, preserving chronological order.
    pub fn compact_stack(&mut self) {
        let arena = &self.arena;
        self.stack
            .retain(|cref| arena[cref.idx()].code() as u32 & GARBAGE == 0);
    }

    /// Clause length (number of literals).
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.header(cref) >> LEN_SHIFT) as usize
    }

    /// Whether this is a deduced conflict clause (vs. an original clause).
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT != 0
    }

    /// `clause_activity(C)`: the number of conflicts this clause has been
    /// responsible for (§8).
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.idx() + 1].code() as u32
    }

    /// Credits the clause with one more conflict (§8).
    #[inline]
    pub fn bump_activity(&mut self, cref: ClauseRef) {
        let a = self.activity(cref).saturating_add(1);
        self.arena[cref.idx() + 1] = Lit::from_code(a);
    }

    /// The literal array; positions 0 and 1 are the watched literals.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let start = cref.idx() + HEADER_WORDS;
        &self.arena[start..start + self.len(cref)]
    }

    /// Mutable literal array (for watch reordering during BCP).
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let start = cref.idx() + HEADER_WORDS;
        let end = start + self.len(cref);
        &mut self.arena[start..end]
    }

    /// Number of live (non-deleted) clauses, original + learnt.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.num_original_live + self.num_learnt_live
    }

    /// Number of live learnt clauses.
    #[inline]
    pub fn num_learnt(&self) -> usize {
        self.num_learnt_live
    }

    /// Number of live original clauses.
    #[inline]
    pub fn num_original(&self) -> usize {
        self.num_original_live
    }

    /// Arena words currently held by garbage and filler records.
    #[inline]
    pub fn garbage_words(&self) -> usize {
        self.garbage_words
    }

    /// Iterates over live clause references in arena (allocation) order.
    pub fn iter_live(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < self.arena.len() {
                let header = self.arena[off].code() as u32;
                let cur = off;
                off += record_words(header);
                if header & (GARBAGE | FILLER) == 0 {
                    return Some(ClauseRef(cur as u32));
                }
            }
            None
        })
    }

    /// Structural arena audit: walks every record and cross-checks the
    /// header encoding against the database's running counters. Violations
    /// are appended to `out` as human-readable descriptions; an intact
    /// arena appends nothing. Part of
    /// [`Solver::audit_invariants`](crate::Solver::audit_invariants).
    pub fn audit(&self, out: &mut Vec<String>) {
        let mut off = 0usize;
        let mut garbage = 0usize;
        let mut original = 0usize;
        let mut learnt = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off].code() as u32;
            let words = record_words(header);
            if off + words > self.arena.len() {
                out.push(format!(
                    "arena: record at word {off} ({words} words) overruns the \
                     arena end ({})",
                    self.arena.len()
                ));
                return; // the walk is lost — no further record is trustworthy
            }
            if header & FILLER != 0 {
                if header & GARBAGE == 0 {
                    out.push(format!(
                        "arena: filler record at word {off} is not marked garbage"
                    ));
                }
                garbage += words;
            } else if header & GARBAGE != 0 {
                garbage += words;
            } else {
                let len = (header >> LEN_SHIFT) as usize;
                if len < 2 {
                    out.push(format!(
                        "arena: live record at word {off} stores {len} literal(s); \
                         unit/empty clauses must never reach the arena"
                    ));
                }
                if header & LEARNT != 0 {
                    learnt += 1;
                } else {
                    original += 1;
                }
            }
            off += words;
        }
        if garbage != self.garbage_words {
            out.push(format!(
                "arena: walked garbage ({garbage} words) disagrees with the \
                 running counter ({})",
                self.garbage_words
            ));
        }
        if original != self.num_original_live {
            out.push(format!(
                "arena: walked {original} live original clauses, counter says {}",
                self.num_original_live
            ));
        }
        if learnt != self.num_learnt_live {
            out.push(format!(
                "arena: walked {learnt} live learnt clauses, counter says {}",
                self.num_learnt_live
            ));
        }
    }

    /// Compacting garbage collection: slides every live record to the front
    /// of a fresh arena (preserving chronological order), reports each
    /// reclaimed clause to `proof` as a DRAT deletion, rewrites the stack,
    /// and returns a [`GcMap`] through which the caller must remap every
    /// other outstanding [`ClauseRef`] (watch lists, trail reasons).
    ///
    /// Returns the map plus the number of words reclaimed.
    pub fn collect<S: ProofSink + ?Sized>(&mut self, proof: &mut S) -> (GcMap, usize) {
        let live_words = self.arena.len() - self.garbage_words;
        let mut old = std::mem::replace(&mut self.arena, Vec::with_capacity(live_words));
        let reclaimed = self.garbage_words;
        self.garbage_words = 0;

        let mut off = 0usize;
        while off < old.len() {
            let header = old[off].code() as u32;
            let words = record_words(header);
            if header & FILLER != 0 {
                // Strengthening pads: no clause to report, nothing to move.
            } else if header & GARBAGE != 0 {
                // The record is still intact here — this is where the
                // database's deletions become DRAT `d` lines.
                let len = (header >> LEN_SHIFT) as usize;
                proof.delete_clause(&old[off + HEADER_WORDS..off + HEADER_WORDS + len]);
            } else {
                let new_ref = self.arena.len() as u32;
                self.arena.extend_from_slice(&old[off..off + words]);
                // Forwarding pointer in the old activity slot; the record
                // has already been copied out, so the slot is free.
                old[off + 1] = Lit::from_code(new_ref);
            }
            off += words;
        }

        let map = GcMap { old };
        for cref in &mut self.stack {
            *cref = map.remap(*cref);
        }
        (map, reclaimed)
    }
}

/// Forwarding table of one garbage collection: wraps the pre-GC arena, whose
/// live records now carry their post-GC offsets.
#[derive(Debug)]
pub(crate) struct GcMap {
    old: Vec<Lit>,
}

impl GcMap {
    /// New location of a clause that was live at collection time.
    #[inline]
    pub fn remap(&self, cref: ClauseRef) -> ClauseRef {
        debug_assert_eq!(
            self.old[cref.idx()].code() as u32 & (GARBAGE | FILLER),
            0,
            "remap of a collected {cref:?}"
        );
        ClauseRef(self.old[cref.idx() + 1].code() as u32)
    }

    /// New location of a clause, or `None` if it was collected — used for
    /// reason pointers whose clause was deleted (only legal for level-0
    /// facts, whose reasons are never consulted again).
    #[inline]
    pub fn remap_live(&self, cref: ClauseRef) -> Option<ClauseRef> {
        if self.old[cref.idx()].code() as u32 & GARBAGE != 0 {
            None
        } else {
            Some(self.remap(cref))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::{NoProof, ProofSink};
    use berkmin_cnf::Var;

    fn lits(ns: &[i32]) -> Vec<Lit> {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c = db.add_original(&lits(&[1, -2]));
        assert_eq!(db.lits(c), &[Lit::pos(Var::new(0)), Lit::neg(Var::new(1))]);
        assert_eq!(db.num_live(), 1);
        assert_eq!(db.num_original(), 1);
        assert!(!db.is_learnt(c));
        assert_eq!(db.len(c), 2);
    }

    #[test]
    fn learnt_clauses_stack_in_order() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(&lits(&[1, 2]));
        let b = db.add_learnt(&lits(&[2, 3]));
        assert_eq!(db.stack, vec![a, b]);
        assert_eq!(db.num_learnt(), 2);
        assert!(db.is_learnt(a));
    }

    #[test]
    fn delete_and_compact() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(&lits(&[1, 2]));
        let b = db.add_learnt(&lits(&[2, 3]));
        let c = db.add_learnt(&lits(&[3, 4]));
        db.delete(b);
        db.compact_stack();
        assert_eq!(db.stack, vec![a, c]);
        assert_eq!(db.num_learnt(), 2);
        assert_eq!(db.num_live(), 2);
    }

    #[test]
    fn collect_compacts_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(&lits(&[1, 2]));
        let b = db.add_learnt(&lits(&[2, 3, 4]));
        let c = db.add_learnt(&lits(&[3, 4]));
        db.delete(b);
        db.compact_stack();
        let (map, reclaimed) = db.collect(&mut NoProof);
        assert_eq!(reclaimed, HEADER_WORDS + 3);
        assert_eq!(db.garbage_words(), 0);
        let (a2, c2) = (map.remap(a), map.remap(c));
        assert_eq!(db.stack, vec![a2, c2]);
        assert_eq!(a2, a, "records before the hole do not move");
        assert!(c2 < c, "records after the hole slide down");
        assert_eq!(db.lits(a2), &lits(&[1, 2])[..]);
        assert_eq!(db.lits(c2), &lits(&[3, 4])[..]);
        assert_eq!(map.remap_live(b), None);
        assert_eq!(db.iter_live().count(), 2);
    }

    #[test]
    fn collect_emits_drat_deletions() {
        struct Rec(Vec<Vec<Lit>>);
        impl ProofSink for Rec {
            fn add_clause(&mut self, _lits: &[Lit]) {}
            fn delete_clause(&mut self, lits: &[Lit]) {
                self.0.push(lits.to_vec());
            }
        }
        let mut db = ClauseDb::new();
        let a = db.add_original(&lits(&[1, 2, 3]));
        db.add_learnt(&lits(&[2, 3]));
        db.delete(a);
        let mut sink = Rec(Vec::new());
        db.collect(&mut sink);
        assert_eq!(sink.0, vec![lits(&[1, 2, 3])]);
    }

    #[test]
    fn shrink_keeps_ref_and_arena_walkable() {
        let mut db = ClauseDb::new();
        let a = db.add_original(&lits(&[1, 2, 3, 4]));
        let b = db.add_original(&lits(&[5, 6]));
        db.shrink(a, 2);
        assert_eq!(db.lits(a), &lits(&[1, 2])[..]);
        assert_eq!(db.len(a), 2);
        assert_eq!(db.num_live(), 2, "shrinking is not deletion");
        let live: Vec<_> = db.iter_live().collect();
        assert_eq!(live, vec![a, b], "filler pad must be skipped");
        let (map, reclaimed) = db.collect(&mut NoProof);
        assert_eq!(reclaimed, 2);
        assert_eq!(db.lits(map.remap(b)), &lits(&[5, 6])[..]);
    }

    #[test]
    fn iter_live_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.add_original(&lits(&[1, 2]));
        let b = db.add_learnt(&lits(&[2, 3]));
        db.delete(a);
        let live: Vec<_> = db.iter_live().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn activity_is_mutable() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(&lits(&[1, 2]));
        for _ in 0..3 {
            db.bump_activity(a);
        }
        assert_eq!(db.activity(a), 3);
    }

    #[test]
    fn activity_survives_collection() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(&lits(&[1, 2]));
        let b = db.add_learnt(&lits(&[3, 4]));
        db.bump_activity(b);
        db.bump_activity(b);
        db.delete(a);
        db.compact_stack();
        let (map, _) = db.collect(&mut NoProof);
        assert_eq!(db.activity(map.remap(b)), 2);
    }
}
