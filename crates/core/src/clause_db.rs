//! Clause storage and the chronologically ordered conflict-clause stack.

use berkmin_cnf::Lit;

/// Stable handle to a clause in the [`ClauseDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A stored clause: literals plus the bookkeeping the paper's database
/// management needs (§8).
#[derive(Debug, Clone)]
pub(crate) struct StoredClause {
    /// Literal array; positions 0 and 1 are the watched literals.
    pub lits: Vec<Lit>,
    /// `clause_activity(C)`: the number of conflicts this clause has been
    /// responsible for (§8).
    pub activity: u32,
    /// Whether this is a deduced conflict clause (vs. an original clause).
    pub learnt: bool,
    /// Tombstone flag; space is reclaimed at the next reduction.
    pub deleted: bool,
}

/// The clause database: a slab of original and learnt clauses plus the
/// chronologically ordered stack of conflict clauses (paper §5: "the set of
/// conflict clauses is organized as a stack, each new conflict clause being
/// added to the top").
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<StoredClause>,
    free: Vec<u32>,
    /// Learnt clauses in deduction order; the last element is the top of
    /// the stack. Purged of deleted clauses at every reduction so that
    /// "age" is always a position in the *current* stack (§8).
    pub stack: Vec<ClauseRef>,
    num_original_live: usize,
    num_learnt_live: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        ClauseDb::default()
    }

    /// Adds a clause, recycling a tombstoned slot when available.
    fn alloc(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let stored = StoredClause {
            lits,
            activity: 0,
            learnt,
            deleted: false,
        };
        if let Some(slot) = self.free.pop() {
            self.clauses[slot as usize] = stored;
            ClauseRef(slot)
        } else {
            self.clauses.push(stored);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    /// Adds an original (problem) clause.
    pub fn add_original(&mut self, lits: Vec<Lit>) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        self.num_original_live += 1;
        self.alloc(lits, false)
    }

    /// Adds a learnt clause and pushes it onto the top of the stack.
    pub fn add_learnt(&mut self, lits: Vec<Lit>) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        self.num_learnt_live += 1;
        let cref = self.alloc(lits, true);
        self.stack.push(cref);
        cref
    }

    /// Tombstones a clause. The caller is responsible for stack compaction
    /// and watch rebuilding (done wholesale at reduction time).
    pub fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.idx()];
        debug_assert!(!c.deleted, "double delete of {cref:?}");
        c.deleted = true;
        if c.learnt {
            self.num_learnt_live -= 1;
        } else {
            self.num_original_live -= 1;
        }
        self.free.push(cref.0);
    }

    /// Drops deleted entries from the stack, preserving chronological order.
    pub fn compact_stack(&mut self) {
        let clauses = &self.clauses;
        self.stack.retain(|cref| !clauses[cref.idx()].deleted);
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &StoredClause {
        &self.clauses[cref.idx()]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut StoredClause {
        &mut self.clauses[cref.idx()]
    }

    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        &self.clauses[cref.idx()].lits
    }

    /// Number of live (non-deleted) clauses, original + learnt.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.num_original_live + self.num_learnt_live
    }

    /// Number of live learnt clauses.
    #[inline]
    pub fn num_learnt(&self) -> usize {
        self.num_learnt_live
    }

    /// Number of live original clauses.
    #[inline]
    pub fn num_original(&self) -> usize {
        self.num_original_live
    }

    /// Iterates over live clause references.
    pub fn iter_live(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_cnf::Var;

    fn lits(ns: &[i32]) -> Vec<Lit> {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c = db.add_original(lits(&[1, -2]));
        assert_eq!(db.lits(c), &[Lit::pos(Var::new(0)), Lit::neg(Var::new(1))]);
        assert_eq!(db.num_live(), 1);
        assert_eq!(db.num_original(), 1);
    }

    #[test]
    fn learnt_clauses_stack_in_order() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(lits(&[1, 2]));
        let b = db.add_learnt(lits(&[2, 3]));
        assert_eq!(db.stack, vec![a, b]);
        assert_eq!(db.num_learnt(), 2);
    }

    #[test]
    fn delete_and_compact() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(lits(&[1, 2]));
        let b = db.add_learnt(lits(&[2, 3]));
        let c = db.add_learnt(lits(&[3, 4]));
        db.delete(b);
        db.compact_stack();
        assert_eq!(db.stack, vec![a, c]);
        assert_eq!(db.num_learnt(), 2);
        assert_eq!(db.num_live(), 2);
    }

    #[test]
    fn slots_are_recycled() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(lits(&[1, 2]));
        db.delete(a);
        db.compact_stack();
        let b = db.add_learnt(lits(&[3, 4]));
        assert_eq!(a.0, b.0, "tombstoned slot should be reused");
        assert_eq!(db.lits(b), &lits(&[3, 4])[..]);
    }

    #[test]
    fn iter_live_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.add_original(lits(&[1, 2]));
        let b = db.add_learnt(lits(&[2, 3]));
        db.delete(a);
        let live: Vec<_> = db.iter_live().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn activity_is_mutable() {
        let mut db = ClauseDb::new();
        let a = db.add_learnt(lits(&[1, 2]));
        db.get_mut(a).activity += 3;
        assert_eq!(db.get(a).activity, 3);
    }
}
