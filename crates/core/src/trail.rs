//! The assignment trail: one typed owner for every piece of
//! variable-assignment state.
//!
//! [`Trail`] bundles the per-variable value/level/reason tables with the
//! chronological assignment trail, its per-level decision markers and the
//! propagation-queue head. The search, conflict analysis, the preprocessor
//! and the auditors all read through the accessors here; mutation goes
//! through the handful of typed operations below. In particular,
//! [`Trail::backtrack_to`] is the *only* place where a variable becomes
//! unassigned — the "clear value, drop reason, notify the decision
//! heuristic" steps can never drift apart across the restart,
//! conflict-backtrack and solve-entry paths again.
//!
//! encapsulation-guard: every field of `Trail` is private by design.
//! `tests/encapsulation_guard.rs` greps the rest of `crates/core/src` for
//! raw accesses to the moved state (`assigns`, `trail_lim`, `qhead`, …);
//! new state-touching code belongs behind a method in this file.

use berkmin_cnf::{LBool, Lit, Var};

use crate::clause_db::ClauseRef;

/// The solver's assignment state: values, levels, implication reasons, the
/// chronological trail with its decision-level markers, and the BCP queue
/// head.
///
/// A `Trail` tracks assignments for the variables `0..n` it has been
/// [grown](Trail::grow) to cover. Assignments are pushed in chronological
/// order by [`Trail::assign`] (implications) and [`Trail::push_decision`]
/// (decisions, which open a new level); [`Trail::backtrack_to`] undoes
/// every assignment above a given level. The propagation queue is the
/// not-yet-propagated suffix of the trail, consumed via
/// [`Trail::next_queued`].
#[derive(Default)]
pub struct Trail {
    /// Current value per variable (`Undef` when unassigned).
    assigns: Vec<LBool>,
    /// Decision level at which each variable was assigned (garbage when
    /// unassigned).
    level: Vec<u32>,
    /// Implying clause per variable; `None` for decisions, assumptions and
    /// level-0 facts.
    reason: Vec<Option<ClauseRef>>,
    /// Assigned literals in chronological order.
    trail: Vec<Lit>,
    /// `trail_lim[d]` is the trail length at which decision level `d + 1`
    /// opened; its length is the current decision level.
    trail_lim: Vec<usize>,
    /// Index of the first trail literal BCP has not yet propagated.
    qhead: usize,
}

impl Trail {
    /// Creates an empty trail covering no variables.
    pub fn new() -> Self {
        Trail::default()
    }

    /// Grows the per-variable tables to cover `n` variables.
    pub fn grow(&mut self, n: usize) {
        self.assigns.resize(n, LBool::Undef);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
    }

    /// Number of variables the per-variable tables cover.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Current value of `v`. `v` must be a known variable; see
    /// [`Trail::value_opt`] for the forgiving variant.
    #[inline]
    pub fn value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Current value of `v`, or `Undef` if `v` is beyond the known
    /// variables.
    #[inline]
    pub fn value_opt(&self, v: Var) -> LBool {
        self.assigns.get(v.index()).copied().unwrap_or(LBool::Undef)
    }

    /// Value of a literal under the current partial assignment.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            !v
        } else {
            v
        }
    }

    /// Decision level at which `v` was assigned (garbage if unassigned).
    #[inline]
    pub fn level_of(&self, v: Var) -> u32 {
        self.level[v.index()]
    }

    /// The clause that implied `v`, or `None` for decisions, assumptions
    /// and level-0 facts (and for unassigned variables).
    #[inline]
    pub fn reason_of(&self, v: Var) -> Option<ClauseRef> {
        self.reason[v.index()]
    }

    /// Current decision level (0 = root).
    #[inline]
    pub fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Number of assigned literals on the trail.
    #[inline]
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Whether the trail holds no assignments at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// The `i`-th trail literal, in chronological assignment order.
    #[inline]
    pub fn lit_at(&self, i: usize) -> Lit {
        self.trail[i]
    }

    /// The whole trail as a slice, in chronological assignment order.
    #[inline]
    pub fn as_slice(&self) -> &[Lit] {
        &self.trail
    }

    /// Iterates over the trail in chronological assignment order.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.trail.iter()
    }

    /// Trail length at which decision level `level + 1` opened — i.e. the
    /// index of that level's first literal (its decision, for real
    /// decision levels).
    #[inline]
    pub fn level_start(&self, level: usize) -> usize {
        self.trail_lim[level]
    }

    /// Iterates over the decision of each level `1..=decision_level()`, in
    /// order. A *dummy* level — opened by [`Trail::open_dummy_level`] for
    /// an already-implied assumption — has no literal of its own and
    /// yields `None`.
    pub fn decisions(&self) -> impl Iterator<Item = Option<Lit>> + '_ {
        (0..self.trail_lim.len()).map(move |d| {
            let start = self.trail_lim[d];
            let end = self
                .trail_lim
                .get(d + 1)
                .copied()
                .unwrap_or(self.trail.len());
            (start < end).then(|| self.trail[start])
        })
    }

    /// Assigns `l` true with `reason`, pushing it on the trail at the
    /// current decision level.
    ///
    /// `l`'s variable must be unassigned (checked in debug builds).
    pub fn assign(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(
            self.lit_value(l).is_undef(),
            "assign of already-assigned literal {l:?}"
        );
        let v = l.var().index();
        self.assigns[v] = LBool::from(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Opens a new decision level and assigns the decision literal.
    pub fn push_decision(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        self.assign(l, None);
    }

    /// Opens a new decision level *without* assigning anything — used for
    /// an assumption that is already implied, so assumption index and
    /// decision level stay in lockstep.
    pub fn open_dummy_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Undoes every assignment above `level`, calling `on_unassign` for
    /// each variable as it is unassigned, in reverse assignment order.
    ///
    /// This is the **only** operation that unassigns variables. The hook
    /// exists so the decision heuristic can re-index freed variables (heap
    /// re-insertion order is part of the solver's deterministic behavior).
    pub fn backtrack_to(&mut self, level: usize, mut on_unassign: impl FnMut(Var)) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            on_unassign(v);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    /// Pops the next not-yet-propagated literal off the BCP queue, if any.
    #[inline]
    pub fn next_queued(&mut self) -> Option<Lit> {
        let l = self.trail.get(self.qhead).copied();
        if l.is_some() {
            self.qhead += 1;
        }
        l
    }

    /// Whether BCP has consumed the whole trail.
    #[inline]
    pub fn queue_drained(&self) -> bool {
        self.qhead == self.trail.len()
    }

    /// Marks the remaining queue as consumed — used when a conflict makes
    /// further propagation pointless.
    #[inline]
    pub fn drain_queue(&mut self) {
        self.qhead = self.trail.len();
    }

    /// Rewrites every reason reference through `map` after a clause-arena
    /// compaction. A reason whose clause was deleted belongs to a level-0
    /// fact (whose reason is never consulted again), so `None` is fine.
    pub fn remap_reasons(&mut self, map: impl Fn(ClauseRef) -> Option<ClauseRef>) {
        for r in &mut self.reason {
            if let Some(cref) = *r {
                *r = map(cref);
            }
        }
    }

    /// Structural self-check, appending one message per violation to
    /// `out`. Table-size violations are prefixed `tables:` (the caller
    /// stops before deeper checks that would index out of bounds); the
    /// trail/assignment cross-checks use the `trail:`/`assigns:`/`reason:`
    /// prefixes. Reason-*clause* checks (liveness, containment) need the
    /// clause arena and live in `audit.rs`.
    pub(crate) fn self_check(&self, num_vars: usize, out: &mut Vec<String>) {
        let mut sized_ok = true;
        for (name, len) in [
            ("assigns", self.assigns.len()),
            ("level", self.level.len()),
            ("reason", self.reason.len()),
        ] {
            if len != num_vars {
                out.push(format!(
                    "tables: {name} covers {len} vars, expected {num_vars}"
                ));
                sized_ok = false;
            }
        }
        if self.qhead > self.trail.len() {
            out.push(format!(
                "trail: qhead {} beyond trail length {}",
                self.qhead,
                self.trail.len()
            ));
        }
        let mut prev = 0usize;
        for (i, &lim) in self.trail_lim.iter().enumerate() {
            if lim > self.trail.len() || lim < prev {
                out.push(format!(
                    "trail: decision marker {i} at {lim} is out of order \
                     (prev {prev}, trail length {})",
                    self.trail.len()
                ));
            }
            prev = lim;
        }
        if !sized_ok {
            return;
        }
        let mut on_trail = vec![false; num_vars];
        let mut next_lim = 0usize;
        let mut level_here = 0u32;
        for (i, &l) in self.trail.iter().enumerate() {
            while next_lim < self.trail_lim.len() && self.trail_lim[next_lim] <= i {
                next_lim += 1;
                level_here = next_lim as u32;
            }
            let v = l.var().index();
            if v >= num_vars {
                out.push(format!("trail[{i}]: unknown var {v}"));
                continue;
            }
            if on_trail[v] {
                out.push(format!("trail[{i}]: var {v} appears twice"));
            }
            on_trail[v] = true;
            if self.lit_value(l) != LBool::True {
                out.push(format!("trail[{i}]: literal {l:?} is not assigned true"));
            }
            if self.level[v] != level_here {
                out.push(format!(
                    "trail[{i}]: var {v} records level {}, decision markers \
                     say {level_here}",
                    self.level[v]
                ));
            }
        }
        for (v, &trailed) in on_trail.iter().enumerate().take(num_vars) {
            let assigned = !self.assigns[v].is_undef();
            if assigned != trailed {
                out.push(format!(
                    "assigns: var {v} is {} but {} the trail",
                    if assigned { "assigned" } else { "unassigned" },
                    if trailed { "on" } else { "off" }
                ));
            }
            if !assigned && self.reason[v].is_some() {
                out.push(format!("reason: unassigned var {v} keeps a reason"));
            }
        }
    }

    /// Corrupts the recorded value of `v` (test-only): flips the
    /// assignment out from under the trail so the auditors can prove they
    /// catch it.
    #[cfg(test)]
    pub(crate) fn test_flip_assign(&mut self, v: Var) {
        self.assigns[v.index()] = !self.assigns[v.index()];
    }
}

impl std::fmt::Debug for Trail {
    /// Summarizes the search position: total height, queue state and the
    /// per-level segment heights ("what level am I at and why").
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut heights = Vec::with_capacity(self.trail_lim.len() + 1);
        let mut prev = 0usize;
        for &lim in &self.trail_lim {
            heights.push(lim - prev);
            prev = lim;
        }
        heights.push(self.trail.len() - prev);
        f.debug_struct("Trail")
            .field("num_vars", &self.assigns.len())
            .field("len", &self.trail.len())
            .field("decision_level", &self.trail_lim.len())
            .field("queued", &(self.trail.len() - self.qhead))
            .field("level_heights", &heights)
            .finish()
    }
}
