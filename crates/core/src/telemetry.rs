//! Structured solver telemetry: typed solve events, an observer hook, and
//! machine-readable statistics snapshots.
//!
//! The paper's entire evaluation is built on instrumented counters (the
//! Table 3 skin-effect histogram, Table 8 decision counts, Table 9
//! database-size ratios); this module is the runtime half of that story —
//! a structured event stream a caller can tap while the search runs,
//! instead of scraping ad-hoc `c` lines off the CLI.
//!
//! Three pieces:
//!
//! * [`SolveEvent`] — the typed event vocabulary: solve-call begin/end
//!   (with per-call counter deltas), restarts, §8 database reductions,
//!   periodic progress ticks, clause-sharing traffic, and portfolio worker
//!   lifecycle. Portfolio workers' own events arrive wrapped in
//!   [`SolveEvent::Worker`] so one observer can demultiplex a whole race.
//! * [`SolveObserver`] — the observer hook. Any `FnMut(&SolveEvent)`
//!   closure qualifies. Attach via
//!   [`SolverBuilder::on_event`](crate::SolverBuilder::on_event),
//!   [`Solver::set_observer`](crate::Solver::set_observer), or
//!   [`SatEngine::set_observer`](crate::SatEngine::set_observer). With no
//!   observer attached every emission site is a single `Option` check —
//!   the search pays nothing.
//! * [`StatsSnapshot`] + the [`json`] module — a hand-rolled JSON
//!   serialization of a run's verdict, timing and [`Stats`] counters (the
//!   workspace is offline-shimmed, so no serde). The same module parses
//!   the emitted JSON back, which is how the test suite round-trips the
//!   CLI's `--stats-json` output against `engine.stats()`.

use crate::search::SolveStatus;
use crate::stats::Stats;

/// The decided-or-not outcome of a solve call, stripped of its payload
/// (model / failed core / stop reason) so it can be carried by value in
/// events and snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveVerdict {
    /// A model was found.
    Sat,
    /// Unsatisfiability was proven (absolutely or under the assumptions).
    Unsat,
    /// The run stopped without an answer (budget or callback).
    Unknown,
}

impl SolveVerdict {
    /// The canonical uppercase name — matches the CLI's `s` line.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolveVerdict::Sat => "SAT",
            SolveVerdict::Unsat => "UNSAT",
            SolveVerdict::Unknown => "UNKNOWN",
        }
    }

    /// Parses the canonical uppercase name back.
    pub fn parse(s: &str) -> Option<SolveVerdict> {
        match s {
            "SAT" => Some(SolveVerdict::Sat),
            "UNSAT" => Some(SolveVerdict::Unsat),
            "UNKNOWN" => Some(SolveVerdict::Unknown),
            _ => None,
        }
    }
}

impl std::str::FromStr for SolveVerdict {
    type Err = String;

    fn from_str(s: &str) -> Result<SolveVerdict, String> {
        SolveVerdict::parse(s).ok_or_else(|| format!("unknown verdict {s:?}"))
    }
}

impl std::fmt::Display for SolveVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&SolveStatus> for SolveVerdict {
    fn from(status: &SolveStatus) -> Self {
        match status {
            SolveStatus::Sat(_) => SolveVerdict::Sat,
            SolveStatus::Unsat => SolveVerdict::Unsat,
            SolveStatus::Unknown(_) => SolveVerdict::Unknown,
        }
    }
}

/// One structured telemetry event.
///
/// Counter-carrying variants state explicitly whether the numbers are
/// *lifetime* totals (accumulated across solve calls, like [`Stats`]) or
/// *per-call* deltas.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveEvent {
    /// A solve call began (after the pending assumptions were consumed).
    SolveStart {
        /// 1-based index of this call on the engine (`stats().solve_calls`).
        call: u64,
        /// Variables known at call entry.
        num_vars: usize,
        /// Live clauses (original + learnt) at call entry.
        num_clauses: usize,
        /// Assumptions this call runs under.
        assumptions: usize,
    },
    /// The solve call ended. All counters are **per-call deltas**.
    SolveDone {
        /// How the call ended.
        verdict: SolveVerdict,
        /// Conflicts spent by this call.
        conflicts: u64,
        /// Decisions spent by this call.
        decisions: u64,
        /// Literals propagated by this call.
        propagations: u64,
        /// Restarts performed by this call.
        restarts: u64,
    },
    /// The preprocessor ran at solve entry (subsumption, self-subsuming
    /// resolution, bounded variable elimination). All counters are
    /// **per-run deltas** for this simplification, not lifetime totals.
    Simplify {
        /// Sweeps the run performed before reaching a fixpoint (or the
        /// configured round cap).
        rounds: u32,
        /// Clauses deleted by backward subsumption.
        subsumed: u64,
        /// Clauses strengthened by self-subsuming resolution.
        strengthened: u64,
        /// Variables dissolved by bounded variable elimination.
        eliminated: u64,
        /// Resolvent clauses added while eliminating variables.
        resolvents: u64,
        /// Live original clauses before the run.
        clauses_before: u64,
        /// Live original clauses after the run.
        clauses_after: u64,
    },
    /// The search abandoned its current tree (paper §1). Lifetime totals.
    Restart {
        /// Restarts performed so far (`stats().restarts`).
        restarts: u64,
        /// Conflicts encountered so far (`stats().conflicts`).
        conflicts: u64,
    },
    /// A §8 clause-database reduction ran (always directly after a
    /// restart).
    Reduce {
        /// Live clauses before the reduction.
        live_before: u64,
        /// Live clauses after the reduction.
        live_after: u64,
        /// Arena words reclaimed by the compacting collector this
        /// reduction.
        words_reclaimed: u64,
    },
    /// Periodic progress tick, emitted every
    /// [`SolverConfig::progress_every`](crate::SolverConfig::progress_every)
    /// conflicts of the current call.
    Progress {
        /// Lifetime conflict total at the tick.
        conflicts: u64,
        /// Current trail length (assigned literals).
        trail: usize,
        /// Variables queued in the decision heap (0 under
        /// [`ActivityIndex::NaiveScan`](crate::ActivityIndex::NaiveScan)).
        heap: usize,
        /// Live learnt clauses.
        learnt: usize,
        /// Average LBD ("glue") of all clauses learnt so far.
        avg_lbd: f64,
    },
    /// A learnt clause passed the share-export filter and was handed to
    /// the export callback.
    ShareExport {
        /// Length of the exported clause.
        len: usize,
        /// Its LBD at deduction time.
        lbd: u32,
    },
    /// Foreign clauses were integrated from the share-import source.
    ShareImport {
        /// Clauses integrated at this poll (post-filter, post-level-0
        /// simplification).
        count: u64,
    },
    /// The bounded share pool evicted entries past its capacity during the
    /// last portfolio race (sharing is best-effort; eviction costs reuse,
    /// never soundness).
    PoolEvicted {
        /// Entries evicted during the race.
        evicted: u64,
    },
    /// A portfolio worker began solving.
    WorkerStart {
        /// Worker index.
        worker: usize,
    },
    /// A portfolio worker finished (answered, was cancelled, or retired).
    WorkerDone {
        /// Worker index.
        worker: usize,
        /// How its run ended.
        verdict: SolveVerdict,
    },
    /// An event emitted *inside* a portfolio worker's solver, tagged with
    /// the worker's index. The portfolio serializes these through one
    /// mutex, so a threaded race delivers an interleaved but well-formed
    /// stream; in deterministic mode the order is reproducible.
    Worker {
        /// Worker index.
        worker: usize,
        /// The worker's own event (never itself a [`SolveEvent::Worker`]).
        event: Box<SolveEvent>,
    },
}

/// Receiver of [`SolveEvent`]s.
///
/// Implemented for every `FnMut(&SolveEvent)` closure, so the common case
/// needs no named type:
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use berkmin::{SolveEvent, SolverBuilder};
/// use berkmin_cnf::Lit;
///
/// let events = Rc::new(RefCell::new(Vec::new()));
/// let tap = Rc::clone(&events);
/// let mut solver = SolverBuilder::new()
///     .on_event(move |e: &SolveEvent| tap.borrow_mut().push(e.clone()))
///     .clause([Lit::from_dimacs(1)])
///     .build();
/// assert!(solver.solve().is_sat());
/// assert!(matches!(events.borrow()[0], SolveEvent::SolveStart { .. }));
/// assert!(matches!(
///     events.borrow().last(),
///     Some(SolveEvent::SolveDone { .. })
/// ));
/// ```
pub trait SolveObserver {
    /// Called once per emitted event, synchronously, on the solving
    /// thread. Keep it cheap — the search blocks on it.
    fn on_event(&mut self, event: &SolveEvent);
}

impl<F: FnMut(&SolveEvent)> SolveObserver for F {
    fn on_event(&mut self, event: &SolveEvent) {
        self(event);
    }
}

/// A machine-readable record of one finished run: verdict, wall-clock
/// seconds, and the engine's [`Stats`] — what the CLI's `--stats-json`
/// writes and the test suite parses back.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// How the run ended.
    pub verdict: SolveVerdict,
    /// Wall-clock seconds the run took.
    pub seconds: f64,
    /// The engine's accumulated counters.
    pub stats: Stats,
}

impl StatsSnapshot {
    /// Captures a snapshot of `stats` under the given outcome.
    pub fn new(verdict: SolveVerdict, seconds: f64, stats: &Stats) -> Self {
        StatsSnapshot {
            verdict,
            seconds,
            stats: stats.clone(),
        }
    }

    /// The snapshot as a JSON value: `{"verdict": …, "seconds": …,
    /// "stats": {…}}` with the stats object per [`stats_to_json`].
    pub fn to_json(&self) -> json::Value {
        json::Value::Object(vec![
            (
                "verdict".to_string(),
                json::Value::Str(self.verdict.as_str().to_string()),
            ),
            ("seconds".to_string(), json::Value::Num(self.seconds)),
            ("stats".to_string(), stats_to_json(&self.stats)),
        ])
    }

    /// Renders the snapshot as a JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a snapshot back out of a JSON document. Unknown keys are
    /// ignored, so documents carrying extra fields (the CLI adds worker
    /// and pool sections) still parse.
    pub fn parse(input: &str) -> Result<StatsSnapshot, String> {
        let value = json::parse(input)?;
        let verdict = value
            .get("verdict")
            .and_then(|v| v.as_str())
            .and_then(SolveVerdict::parse)
            .ok_or("missing or malformed \"verdict\"")?;
        let seconds = value
            .get("seconds")
            .and_then(|v| v.as_f64())
            .ok_or("missing or malformed \"seconds\"")?;
        let stats = value
            .get("stats")
            .and_then(stats_from_json)
            .ok_or("missing or malformed \"stats\"")?;
        Ok(StatsSnapshot {
            verdict,
            seconds,
            stats,
        })
    }
}

/// Serializes every [`Stats`] counter as a JSON object. The skin-effect
/// histogram becomes an array; the decision log (a debugging artifact of
/// [`SolverConfig::record_decisions`](crate::SolverConfig::record_decisions),
/// empty in normal runs) is **not** serialized.
pub fn stats_to_json(stats: &Stats) -> json::Value {
    use json::Value::{Array, Int};
    let hist = Array(stats.top_distance_hist.iter().map(|&n| Int(n)).collect());
    json::Value::Object(vec![
        ("decisions".to_string(), Int(stats.decisions)),
        ("conflicts".to_string(), Int(stats.conflicts)),
        ("propagations".to_string(), Int(stats.propagations)),
        ("restarts".to_string(), Int(stats.restarts)),
        ("reductions".to_string(), Int(stats.reductions)),
        ("learnt_total".to_string(), Int(stats.learnt_total)),
        ("learnt_units".to_string(), Int(stats.learnt_units)),
        (
            "learnt_lits_total".to_string(),
            Int(stats.learnt_lits_total),
        ),
        ("deleted_clauses".to_string(), Int(stats.deleted_clauses)),
        ("gc_runs".to_string(), Int(stats.gc_runs)),
        (
            "gc_words_reclaimed".to_string(),
            Int(stats.gc_words_reclaimed),
        ),
        ("max_live_clauses".to_string(), Int(stats.max_live_clauses)),
        ("initial_clauses".to_string(), Int(stats.initial_clauses)),
        (
            "decisions_from_top_clause".to_string(),
            Int(stats.decisions_from_top_clause),
        ),
        (
            "decisions_from_free_var".to_string(),
            Int(stats.decisions_from_free_var),
        ),
        ("top_distance_hist".to_string(), hist),
        (
            "responsible_clauses".to_string(),
            Int(stats.responsible_clauses),
        ),
        ("solve_calls".to_string(), Int(stats.solve_calls)),
        (
            "assumption_conflicts".to_string(),
            Int(stats.assumption_conflicts),
        ),
        ("lbd_sum".to_string(), Int(stats.lbd_sum)),
        ("lbd_max".to_string(), Int(stats.lbd_max as u64)),
        ("clauses_exported".to_string(), Int(stats.clauses_exported)),
        ("clauses_imported".to_string(), Int(stats.clauses_imported)),
        ("pool_evicted".to_string(), Int(stats.pool_evicted)),
        ("pool_missed".to_string(), Int(stats.pool_missed)),
        ("clauses_subsumed".to_string(), Int(stats.clauses_subsumed)),
        (
            "clauses_strengthened".to_string(),
            Int(stats.clauses_strengthened),
        ),
        ("vars_eliminated".to_string(), Int(stats.vars_eliminated)),
        ("elim_resolvents".to_string(), Int(stats.elim_resolvents)),
    ])
}

/// Parses a [`stats_to_json`] object back into a [`Stats`] block (the
/// decision log, which is not serialized, comes back empty). Returns
/// `None` on any missing or mistyped counter.
pub fn stats_from_json(value: &json::Value) -> Option<Stats> {
    let int = |key: &str| value.get(key).and_then(|v| v.as_u64());
    let hist = value
        .get("top_distance_hist")?
        .as_array()?
        .iter()
        .map(|v| v.as_u64())
        .collect::<Option<Vec<u64>>>()?;
    Some(Stats {
        decisions: int("decisions")?,
        conflicts: int("conflicts")?,
        propagations: int("propagations")?,
        restarts: int("restarts")?,
        reductions: int("reductions")?,
        learnt_total: int("learnt_total")?,
        learnt_units: int("learnt_units")?,
        learnt_lits_total: int("learnt_lits_total")?,
        deleted_clauses: int("deleted_clauses")?,
        gc_runs: int("gc_runs")?,
        gc_words_reclaimed: int("gc_words_reclaimed")?,
        max_live_clauses: int("max_live_clauses")?,
        initial_clauses: int("initial_clauses")?,
        decisions_from_top_clause: int("decisions_from_top_clause")?,
        decisions_from_free_var: int("decisions_from_free_var")?,
        top_distance_hist: hist,
        decision_log: Vec::new(),
        responsible_clauses: int("responsible_clauses")?,
        solve_calls: int("solve_calls")?,
        assumption_conflicts: int("assumption_conflicts")?,
        lbd_sum: int("lbd_sum")?,
        lbd_max: int("lbd_max")?.try_into().ok()?,
        clauses_exported: int("clauses_exported")?,
        clauses_imported: int("clauses_imported")?,
        pool_evicted: int("pool_evicted")?,
        pool_missed: int("pool_missed")?,
        clauses_subsumed: int("clauses_subsumed")?,
        clauses_strengthened: int("clauses_strengthened")?,
        vars_eliminated: int("vars_eliminated")?,
        elim_resolvents: int("elim_resolvents")?,
    })
}

/// A minimal JSON value model, renderer and parser.
///
/// The workspace is offline-shimmed (no serde), so the telemetry layer
/// hand-rolls the little JSON it needs. The one deliberate refinement over
/// a toy model: integers get their own [`Value::Int`](json::Value::Int)
/// variant and are
/// parsed and rendered without ever passing through `f64`, so `u64`
/// counters round-trip **exactly** — the property the `--stats-json`
/// golden tests rely on.
pub mod json {
    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A non-negative integer without fraction or exponent — kept
        /// exact (never routed through `f64`).
        Int(u64),
        /// Any other number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, with insertion order preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup (`None` for non-objects / missing keys).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an exact unsigned integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a float (integers convert).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(n) => Some(*n as f64),
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The value as a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Renders the value as a compact JSON document.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Num(x) => {
                    if x.is_finite() {
                        // `{}` prints integral floats bare ("3"), which is
                        // still valid JSON; non-finite floats have no JSON
                        // spelling and degrade to null.
                        out.push_str(&format!("{x}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => render_string(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                Value::Object(fields) => {
                    out.push('{');
                    for (i, (key, value)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        render_string(key, out);
                        out.push(':');
                        value.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a JSON document. Rejects trailing garbage.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("malformed literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-UTF-8 number".to_string())?;
            // A plain non-negative integer stays exact; anything with a
            // sign, fraction or exponent goes through f64.
            if text.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::Int(n));
                }
            }
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("malformed number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("malformed \\u escape")?;
                                // Surrogate pairs are not needed for the
                                // telemetry output; lone surrogates map to
                                // the replacement character.
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err("malformed escape".to_string()),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "non-UTF-8 string".to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("malformed array at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("malformed object at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn verdict_names_round_trip() {
        for v in [
            SolveVerdict::Sat,
            SolveVerdict::Unsat,
            SolveVerdict::Unknown,
        ] {
            assert_eq!(SolveVerdict::parse(v.as_str()), Some(v));
        }
        assert_eq!(SolveVerdict::parse("sat"), None);
    }

    #[test]
    fn json_values_render_and_parse_back() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"b\"\n\\c".to_string())),
            ("count".to_string(), Value::Int(u64::MAX)),
            ("ratio".to_string(), Value::Num(1.5)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let parsed = json::parse(&value.render()).unwrap();
        assert_eq!(parsed, value);
        // u64::MAX survived exactly — it would not fit in an f64.
        assert_eq!(parsed.get("count").and_then(|v| v.as_u64()), Some(u64::MAX));
    }

    #[test]
    fn json_parser_handles_whitespace_and_rejects_garbage() {
        let v = json::parse(" { \"a\" : [ 1 , 2.5 , \"x\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(json::parse("{} trailing").is_err());
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        let v = json::parse("[-3, 1e2, 0.5]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(-3.0));
        assert_eq!(items[0].as_u64(), None);
        assert_eq!(items[1].as_f64(), Some(100.0));
        assert_eq!(items[2].as_f64(), Some(0.5));
    }

    #[test]
    fn stats_round_trip_through_json_exactly() {
        let stats = Stats {
            decisions: 123,
            conflicts: u64::MAX - 7,
            propagations: 456,
            restarts: 3,
            reductions: 2,
            learnt_total: 40,
            lbd_sum: 100,
            lbd_max: 9,
            top_distance_hist: vec![5, 0, 2],
            pool_evicted: 11,
            pool_missed: 4,
            clauses_subsumed: 6,
            vars_eliminated: 2,
            ..Stats::new()
        };
        let parsed = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(parsed, stats);
    }

    #[test]
    fn snapshot_parses_its_own_rendering_and_tolerates_extras() {
        let snapshot = StatsSnapshot::new(
            SolveVerdict::Unsat,
            0.25,
            &Stats {
                conflicts: 17,
                ..Stats::new()
            },
        );
        let parsed = StatsSnapshot::parse(&snapshot.render()).unwrap();
        assert_eq!(parsed, snapshot);

        // Extra top-level keys (the CLI's worker/pool sections) are fine.
        let Value::Object(mut fields) = snapshot.to_json() else {
            unreachable!()
        };
        fields.push(("extra".to_string(), Value::Str("ignored".to_string())));
        let parsed = StatsSnapshot::parse(&Value::Object(fields).render()).unwrap();
        assert_eq!(parsed.stats.conflicts, 17);
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = 0usize;
        {
            let mut obs = |_: &SolveEvent| seen += 1;
            obs.on_event(&SolveEvent::Restart {
                restarts: 1,
                conflicts: 550,
            });
            obs.on_event(&SolveEvent::WorkerStart { worker: 0 });
        }
        assert_eq!(seen, 2);
    }
}
