//! Search statistics, including the skin-effect histogram of paper §6.

use berkmin_cnf::Var;

/// Counters collected during a solve run.
///
/// Everything the paper's tables report is derivable from this structure:
/// decisions and runtimes (Table 8), database-size ratios (Table 9), and the
/// skin-effect distribution `f(r)` (Table 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated by BCP.
    pub propagations: u64,
    /// Number of restarts performed (paper §1: search-tree abandonments).
    pub restarts: u64,
    /// Number of clause-database reductions performed (paper §8).
    pub reductions: u64,
    /// Total conflict clauses ever deduced (including later-deleted ones).
    pub learnt_total: u64,
    /// Conflict clauses deduced as unit clauses (asserted at level 0).
    pub learnt_units: u64,
    /// Total literals across all deduced conflict clauses.
    pub learnt_lits_total: u64,
    /// Conflict clauses deleted by database management.
    pub deleted_clauses: u64,
    /// Compacting clause-arena garbage collections performed (one per §8
    /// reduction).
    pub gc_runs: u64,
    /// Total arena words reclaimed by the compacting collector.
    pub gc_words_reclaimed: u64,
    /// Maximum number of live clauses (original + learnt) ever in memory —
    /// the "Largest CNF size" column of Table 9.
    pub max_live_clauses: u64,
    /// Number of clauses in the initial formula (Table 9 denominator).
    pub initial_clauses: u64,
    /// Decisions taken from the current top conflict clause (paper §5).
    pub decisions_from_top_clause: u64,
    /// Decisions taken on the globally most active free variable, i.e. when
    /// every conflict clause was satisfied (paper §5).
    pub decisions_from_free_var: u64,
    /// Skin-effect histogram: `top_distance_hist[r]` is `f(r)`, the number
    /// of times the branching variable was chosen from the conflict clause
    /// at distance `r` from the top of the stack (paper §6, Table 3).
    pub top_distance_hist: Vec<u64>,
    /// Optional per-decision log of the chosen variable, recorded when
    /// [`crate::SolverConfig::record_decisions`] is set (used by the Fig. 1
    /// cone-switching experiment).
    pub decision_log: Vec<Var>,
    /// Number of clauses inspected as "responsible for a conflict" during
    /// conflict analysis (paper §4's sensitivity set).
    pub responsible_clauses: u64,
    /// Number of solve calls made on this solver (incremental use: the
    /// counters above accumulate across calls).
    pub solve_calls: u64,
    /// Number of solve calls answered UNSAT by final-conflict analysis of a
    /// falsified assumption (the formula itself was not refuted).
    pub assumption_conflicts: u64,
    /// Sum of the LBD (literal block distance, "glue") of every deduced
    /// conflict clause: the number of distinct decision levels among its
    /// literals at deduction time. Low-LBD clauses are the ones worth
    /// sharing between portfolio workers; `lbd_sum / learnt_total` is the
    /// average glue ([`Stats::avg_lbd`]).
    pub lbd_sum: u64,
    /// Largest LBD ever observed on a deduced conflict clause.
    pub lbd_max: u32,
    /// Clauses handed to the share-export callback (portfolio sharing:
    /// length ≤ 2 or LBD within the export cap).
    pub clauses_exported: u64,
    /// Clauses integrated from the share-import source at restart
    /// boundaries (after the per-importer filter and level-0 simplification
    /// dropped the rest).
    pub clauses_imported: u64,
    /// Entries the portfolio's bounded share pool evicted past its
    /// capacity (each eviction is a shared clause some consumer may never
    /// see — best-effort sharing, never a soundness issue).
    pub pool_evicted: u64,
    /// Pool entries that were evicted before some consumer's cursor
    /// reached them, summed over consumers — an upper bound on the import
    /// candidates slow consumers lost to eviction (own publications and
    /// clauses the LBD filter would have dropped are included; their fate
    /// is unknowable once evicted).
    pub pool_missed: u64,
    /// Clauses removed by the preprocessor's backward-subsumption pass (a
    /// live clause was a superset of another).
    pub clauses_subsumed: u64,
    /// Clauses strengthened by the preprocessor's self-subsuming
    /// resolution pass (one literal dropped per count).
    pub clauses_strengthened: u64,
    /// Variables dissolved by bounded variable elimination (their models
    /// are recovered through the reconstruction stack).
    pub vars_eliminated: u64,
    /// Resolvent clauses the preprocessor added while eliminating
    /// variables (tautological and satisfied resolvents are not counted).
    pub elim_resolvents: u64,
}

impl Stats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records that the branching variable was taken from the conflict
    /// clause at distance `r` from the top of the stack.
    pub(crate) fn record_top_distance(&mut self, r: usize) {
        if self.top_distance_hist.len() <= r {
            self.top_distance_hist.resize(r + 1, 0);
        }
        self.top_distance_hist[r] += 1;
        self.decisions_from_top_clause += 1;
    }

    /// The skin-effect count `f(r)` (0 when `r` was never observed).
    pub fn f(&self, r: usize) -> u64 {
        self.top_distance_hist.get(r).copied().unwrap_or(0)
    }

    /// Ratio (total clauses ever in database)/(initial clauses), the
    /// "(Database size)/(Initial CNF size)" column of Table 9.
    pub fn database_growth_ratio(&self) -> f64 {
        if self.initial_clauses == 0 {
            return 0.0;
        }
        (self.initial_clauses + self.learnt_total) as f64 / self.initial_clauses as f64
    }

    /// Ratio (largest simultaneous clause count)/(initial clauses), the
    /// "(Largest CNF size)/(Initial CNF size)" column of Table 9.
    pub fn peak_memory_ratio(&self) -> f64 {
        if self.initial_clauses == 0 {
            return 0.0;
        }
        self.max_live_clauses as f64 / self.initial_clauses as f64
    }

    /// Average length of deduced conflict clauses.
    pub fn avg_learnt_len(&self) -> f64 {
        if self.learnt_total == 0 {
            return 0.0;
        }
        self.learnt_lits_total as f64 / self.learnt_total as f64
    }

    /// Average LBD ("glue") of deduced conflict clauses.
    pub fn avg_lbd(&self) -> f64 {
        if self.learnt_total == 0 {
            return 0.0;
        }
        self.lbd_sum as f64 / self.learnt_total as f64
    }

    /// Folds another statistics block into this one — how the portfolio
    /// engine aggregates its per-worker counters into one view.
    ///
    /// Additive counters are summed, peak counters (`max_live_clauses`,
    /// `lbd_max`) take the maximum, the skin-effect histogram is merged
    /// element-wise, and `other`'s decision log is appended.
    ///
    /// The *formula-level* counters `initial_clauses` and `solve_calls`
    /// are **not** merged: every worker sees a copy of the same formula
    /// and runs its own solve calls, so summing them would count the
    /// formula once per worker. An aggregator keeps (or sets) its own
    /// values for those two fields.
    pub fn merge(&mut self, other: &Stats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.reductions += other.reductions;
        self.learnt_total += other.learnt_total;
        self.learnt_units += other.learnt_units;
        self.learnt_lits_total += other.learnt_lits_total;
        self.deleted_clauses += other.deleted_clauses;
        self.gc_runs += other.gc_runs;
        self.gc_words_reclaimed += other.gc_words_reclaimed;
        self.max_live_clauses = self.max_live_clauses.max(other.max_live_clauses);
        self.decisions_from_top_clause += other.decisions_from_top_clause;
        self.decisions_from_free_var += other.decisions_from_free_var;
        if self.top_distance_hist.len() < other.top_distance_hist.len() {
            self.top_distance_hist
                .resize(other.top_distance_hist.len(), 0);
        }
        for (slot, &count) in self
            .top_distance_hist
            .iter_mut()
            .zip(&other.top_distance_hist)
        {
            *slot += count;
        }
        self.decision_log.extend_from_slice(&other.decision_log);
        self.responsible_clauses += other.responsible_clauses;
        self.assumption_conflicts += other.assumption_conflicts;
        self.lbd_sum += other.lbd_sum;
        self.lbd_max = self.lbd_max.max(other.lbd_max);
        self.clauses_exported += other.clauses_exported;
        self.clauses_imported += other.clauses_imported;
        self.pool_evicted += other.pool_evicted;
        self.pool_missed += other.pool_missed;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_strengthened += other.clauses_strengthened;
        self.vars_eliminated += other.vars_eliminated;
        self.elim_resolvents += other.elim_resolvents;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_grows_on_demand() {
        let mut s = Stats::new();
        s.record_top_distance(3);
        s.record_top_distance(0);
        s.record_top_distance(3);
        assert_eq!(s.f(0), 1);
        assert_eq!(s.f(3), 2);
        assert_eq!(s.f(1), 0);
        assert_eq!(s.f(99), 0);
        assert_eq!(s.decisions_from_top_clause, 3);
    }

    #[test]
    fn ratios_handle_empty_formula() {
        let s = Stats::new();
        assert_eq!(s.database_growth_ratio(), 0.0);
        assert_eq!(s.peak_memory_ratio(), 0.0);
        assert_eq!(s.avg_learnt_len(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = Stats {
            conflicts: 10,
            learnt_total: 4,
            lbd_sum: 8,
            lbd_max: 3,
            max_live_clauses: 100,
            clauses_exported: 2,
            top_distance_hist: vec![1, 2],
            ..Stats::new()
        };
        let b = Stats {
            conflicts: 5,
            learnt_total: 1,
            lbd_sum: 7,
            lbd_max: 7,
            max_live_clauses: 60,
            clauses_imported: 3,
            top_distance_hist: vec![1, 0, 4],
            ..Stats::new()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 15);
        assert_eq!(a.learnt_total, 5);
        assert_eq!(a.lbd_sum, 15);
        assert_eq!(a.lbd_max, 7);
        assert_eq!(a.max_live_clauses, 100);
        assert_eq!(a.clauses_exported, 2);
        assert_eq!(a.clauses_imported, 3);
        assert_eq!(a.top_distance_hist, vec![2, 2, 4]);
        assert!((a.avg_lbd() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_leaves_formula_level_counters_alone() {
        // Two workers on the same 100-clause formula, one solve call each:
        // the aggregate must NOT double-count the formula or the calls.
        let mut a = Stats {
            initial_clauses: 100,
            solve_calls: 1,
            conflicts: 10,
            ..Stats::new()
        };
        let b = Stats {
            initial_clauses: 100,
            solve_calls: 1,
            conflicts: 20,
            ..Stats::new()
        };
        a.merge(&b);
        assert_eq!(a.initial_clauses, 100);
        assert_eq!(a.solve_calls, 1);
        assert_eq!(a.conflicts, 30);
    }

    #[test]
    fn growth_ratio_matches_table9_definition() {
        let s = Stats {
            initial_clauses: 100,
            learnt_total: 140,
            max_live_clauses: 104,
            ..Stats::new()
        };
        assert!((s.database_growth_ratio() - 2.4).abs() < 1e-9);
        assert!((s.peak_memory_ratio() - 1.04).abs() < 1e-9);
    }
}
