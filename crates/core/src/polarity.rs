//! Branch-polarity selection (paper §7): database symmetrization via
//! `lit_activity` for top-clause decisions, `nb_two` for free-variable
//! decisions, plus the five comparison heuristics of Table 4.

use berkmin_cnf::{LBool, Lit, Var};

use crate::config::{FreeVarPolarity, TopClausePolarity};
use crate::solver::Solver;

impl Solver {
    /// Chooses the branch for a decision taken on the current top clause.
    ///
    /// `lit_in_clause` is the chosen variable's literal as it occurs in the
    /// top clause (needed by the `Sat_top`/`Unsat_top` arms). Returns the
    /// decision literal (the literal to be made true).
    pub(crate) fn pick_top_polarity(&mut self, lit_in_clause: Lit) -> Lit {
        let var = lit_in_clause.var();
        match self.config.top_polarity {
            TopClausePolarity::Symmetrize => self.symmetrize(var),
            TopClausePolarity::SatTop => lit_in_clause,
            TopClausePolarity::UnsatTop => !lit_in_clause,
            TopClausePolarity::Take0 => Lit::neg(var),
            TopClausePolarity::Take1 => Lit::pos(var),
            TopClausePolarity::TakeRand => Lit::new(var, self.rng.next_bool()),
        }
    }

    /// BerkMin's symmetrization rule (§7). Exploring branch `x = 0` can only
    /// produce conflict clauses containing the *positive* literal of `x`, so
    /// when `lit_activity(x) < lit_activity(¬x)` we take `x = 0` first to
    /// close the census gap the restarts introduced (and vice versa). Ties
    /// break uniformly at random.
    fn symmetrize(&mut self, var: Var) -> Lit {
        let pos = self.lit_activity[Lit::pos(var).code()];
        let neg = self.lit_activity[Lit::neg(var).code()];
        if pos < neg {
            Lit::neg(var) // branch x = 0 → future clauses contain x
        } else if neg < pos {
            Lit::pos(var) // branch x = 1 → future clauses contain ¬x
        } else {
            Lit::new(var, self.rng.next_bool())
        }
    }

    /// Chooses the branch for a decision on the globally most active free
    /// variable (all conflict clauses satisfied, §7).
    pub(crate) fn pick_free_polarity(&mut self, var: Var) -> Lit {
        match self.config.free_polarity {
            FreeVarPolarity::NbTwo => {
                let np = self.nb_two(Lit::pos(var));
                let nn = self.nb_two(Lit::neg(var));
                let chosen = if np > nn {
                    Lit::pos(var)
                } else if nn > np {
                    Lit::neg(var)
                } else {
                    Lit::new(var, self.rng.next_bool())
                };
                // "x is assigned the value setting the chosen literal l to 0"
                // — maximizing the BCP cascade through binary clauses.
                !chosen
            }
            FreeVarPolarity::Take0 => Lit::neg(var),
            FreeVarPolarity::Take1 => Lit::pos(var),
            FreeVarPolarity::TakeRand => Lit::new(var, self.rng.next_bool()),
        }
    }

    /// The `nb_two(l)` cost function (§7): the number of live binary clauses
    /// containing `l`, plus for each such clause `l ∨ v` the number of
    /// binary clauses containing `¬v` — a rough estimate of the BCP power of
    /// setting `l` to 0. Evaluation stops once the sum exceeds the
    /// configured threshold (the paper used 100).
    ///
    /// Clauses whose second literal is already true are skipped (they are
    /// satisfied); the second-level counts use the static occurrence lists,
    /// matching the paper's "rough estimate" framing.
    pub(crate) fn nb_two(&self, l: Lit) -> u32 {
        let mut total = 0u32;
        // The live binary clauses containing `l` are exactly the inline
        // watch entries visited when `¬l` becomes true, and the clauses
        // containing `¬v` are the entries visited when `v` becomes true —
        // the occurrence lists the paper's `nb_two` wants fall out of the
        // binary watch scheme for free.
        for w in self.watches.binary((!l).code()) {
            let other = w.other;
            if self.lit_value(other) == LBool::True {
                continue;
            }
            total += 1 + self.watches.binary(other.code()).len() as u32;
            if total > self.config.nb_two_threshold {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{FreeVarPolarity, SolverConfig, TopClausePolarity};
    use crate::solver::Solver;
    use berkmin_cnf::{Lit, Var};

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver(top: TopClausePolarity) -> Solver {
        let mut cfg = SolverConfig::berkmin();
        cfg.top_polarity = top;
        let mut s = Solver::with_config(cfg);
        s.ensure_vars(4);
        s
    }

    #[test]
    fn symmetrize_prefers_lagging_literal() {
        let mut s = solver(TopClausePolarity::Symmetrize);
        let x = Var::new(0);
        // Paper §7: lit_activity(c)=3, lit_activity(¬c)=5 ⇒ branch c=0.
        s.lit_activity[Lit::pos(x).code()] = 3;
        s.lit_activity[Lit::neg(x).code()] = 5;
        assert_eq!(s.pick_top_polarity(Lit::pos(x)), Lit::neg(x));
        // Mirror case.
        s.lit_activity[Lit::pos(x).code()] = 9;
        assert_eq!(s.pick_top_polarity(Lit::pos(x)), Lit::pos(x));
    }

    #[test]
    fn symmetrize_tie_is_random_but_valid() {
        let mut s = solver(TopClausePolarity::Symmetrize);
        let x = Var::new(0);
        let d = s.pick_top_polarity(Lit::pos(x));
        assert_eq!(d.var(), x);
    }

    #[test]
    fn fixed_polarity_arms() {
        let x = Var::new(1);
        let in_clause = Lit::neg(x);
        assert_eq!(
            solver(TopClausePolarity::SatTop).pick_top_polarity(in_clause),
            Lit::neg(x)
        );
        assert_eq!(
            solver(TopClausePolarity::UnsatTop).pick_top_polarity(in_clause),
            Lit::pos(x)
        );
        assert_eq!(
            solver(TopClausePolarity::Take0).pick_top_polarity(in_clause),
            Lit::neg(x)
        );
        assert_eq!(
            solver(TopClausePolarity::Take1).pick_top_polarity(in_clause),
            Lit::pos(x)
        );
    }

    #[test]
    fn take_rand_is_deterministic_per_seed() {
        let picks = |seed: u64| {
            let mut cfg = SolverConfig::berkmin().with_seed(seed);
            cfg.top_polarity = TopClausePolarity::TakeRand;
            let mut s = Solver::with_config(cfg);
            s.ensure_vars(1);
            (0..16)
                .map(|_| s.pick_top_polarity(Lit::pos(Var::new(0))))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(11), picks(11));
        assert_ne!(picks(11), picks(12));
    }

    #[test]
    fn nb_two_counts_two_levels() {
        // Binary clauses: (a∨b), (¬b∨c), (¬b∨d)  [a=1,b=2,c=3,d=4]
        let mut s = solver(TopClausePolarity::Symmetrize);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(-2), lit(4)]);
        // nb_two(a): one binary clause (a∨b); v=b, ¬v=¬b occurs in 2 binary
        // clauses ⇒ 1 + 2 = 3.
        assert_eq!(s.nb_two(lit(1)), 3);
        // nb_two(¬b): clauses (¬b∨c),(¬b∨d); for v=c and v=d, ¬v occurs in 0
        // ⇒ (1+0)+(1+0) = 2.
        assert_eq!(s.nb_two(lit(-2)), 2);
        // nb_two(d): no binary clause contains d positively ⇒ ... it does:
        // (¬b∨d) contains d ⇒ 1 + |bin(b)| = 1 + 1 = 2.
        assert_eq!(s.nb_two(lit(4)), 2);
    }

    #[test]
    fn nb_two_skips_satisfied_clauses() {
        let mut s = solver(TopClausePolarity::Symmetrize);
        s.add_clause([lit(1), lit(2)]);
        assert_eq!(s.nb_two(lit(1)), 1);
        s.push_decision(lit(2)); // satisfies (a∨b)
        assert_eq!(s.nb_two(lit(1)), 0);
    }

    #[test]
    fn nb_two_respects_threshold_cutoff() {
        let mut cfg = SolverConfig::berkmin();
        cfg.nb_two_threshold = 5;
        let mut s = Solver::with_config(cfg);
        // 20 binary clauses containing a.
        for i in 0..20 {
            s.add_clause([lit(1), lit(2 + i)]);
        }
        let v = s.nb_two(lit(1));
        assert!(
            v > 5 && v <= 7,
            "evaluation must stop just past threshold, got {v}"
        );
    }

    #[test]
    fn free_polarity_nb_two_falsifies_stronger_literal() {
        let mut s = solver(TopClausePolarity::Symmetrize);
        // Give positive literal of x1 a big nb_two; negative none.
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(3)]);
        let d = s.pick_free_polarity(Var::new(0));
        // chosen l = x1 (nb_two 2 vs 0); assign value setting l to 0 ⇒ ¬x1.
        assert_eq!(d, lit(-1));
    }

    #[test]
    fn free_polarity_fixed_arms() {
        for (pol, want) in [
            (FreeVarPolarity::Take0, lit(-1)),
            (FreeVarPolarity::Take1, lit(1)),
        ] {
            let mut cfg = SolverConfig::berkmin();
            cfg.free_polarity = pol;
            let mut s = Solver::with_config(cfg);
            s.ensure_vars(1);
            assert_eq!(s.pick_free_polarity(Var::new(0)), want);
        }
    }
}
