//! Solver configuration: every heuristic of the paper is a switch here.
//!
//! Each ablation arm of the paper's Tables 1, 2, 4 and 5 is a preset
//! constructor on [`SolverConfig`]:
//!
//! | Paper arm | Preset |
//! |-----------|--------|
//! | BerkMin (all features on) | [`SolverConfig::berkmin`] |
//! | `Less_sensitivity` (Table 1) | [`SolverConfig::less_sensitivity`] |
//! | `Less_mobility` (Table 2) | [`SolverConfig::less_mobility`] |
//! | `Sat_top`/`Unsat_top`/`Take_0`/`Take_1`/`Take_rand` (Table 4) | [`SolverConfig::with_top_polarity`] |
//! | `limited_keeping` (Table 5) | [`SolverConfig::limited_keeping`] |
//! | zChaff baseline (Tables 6–10) | [`SolverConfig::chaff_like`] |
//! | limmat stand-in (Table 10) | [`SolverConfig::limmat_like`] |

/// How variable activities are updated at each conflict (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sensitivity {
    /// BerkMin's rule: bump `var_activity(v)` once per occurrence of a
    /// literal of `v` in **every clause responsible for the conflict**
    /// (the conflicting clause plus each reason clause resolved during
    /// reverse BCP).
    #[default]
    Berkmin,
    /// Chaff-like rule (`Less_sensitivity` arm of Table 1): bump only the
    /// variables whose literals appear in the deduced conflict clause.
    ConflictClauseOnly,
}

/// How the next branching variable is selected (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecisionStrategy {
    /// BerkMin's rule: branch on the most active free variable of the
    /// *current top clause* — the unsatisfied conflict clause closest to the
    /// top of the chronologically ordered clause stack. Falls back to the
    /// globally most active free variable when every conflict clause is
    /// satisfied.
    #[default]
    BerkMin,
    /// The relaxation the paper's Remark 2 proposes as future work: examine
    /// the `window` topmost *unsatisfied* conflict clauses (not just the
    /// first) and branch on the most active free variable among all of
    /// them. `window = 1` coincides with [`DecisionStrategy::BerkMin`].
    BerkMinWindow {
        /// How many unsatisfied top clauses to pool variables from.
        window: usize,
    },
    /// `Less_mobility` arm of Table 2: always pick the globally most active
    /// free variable (activities still computed per [`Sensitivity`]).
    MostActiveVar,
    /// Chaff's VSIDS: per-literal counters bumped by learnt clauses and
    /// periodically halved; pick the free literal with the highest counter.
    Vsids,
}

/// How the globally most-active variable is located (paper Remark 1:
/// the experiments used a naive scan; BerkMin561's "strategy 3" optimized it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivityIndex {
    /// Linear scan over all variables — what the paper's experiments used.
    #[default]
    NaiveScan,
    /// Indexed max-heap with lazy deletion — the BerkMin561-style optimized
    /// implementation.
    Heap,
}

/// Branch-polarity heuristic applied when the decision variable comes from
/// the current top clause (paper §7, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopClausePolarity {
    /// BerkMin's database-symmetrization rule: explore first the branch
    /// that can only generate conflict clauses containing the literal with
    /// the currently *smaller* `lit_activity` (§7's worked example: with
    /// `lit_activity(c)=3 < lit_activity(¬c)=5`, branch `c=0` first).
    /// Ties are broken uniformly at random.
    #[default]
    Symmetrize,
    /// Always pick the value satisfying the current top clause.
    SatTop,
    /// Always pick the value falsifying the chosen literal of the top clause
    /// (the clause then gets satisfied by BCP at the latest).
    UnsatTop,
    /// Always assign 0.
    Take0,
    /// Always assign 1.
    Take1,
    /// Assign a uniformly random value.
    TakeRand,
}

/// Branch-polarity heuristic for decisions on the globally most active free
/// variable, i.e. when all conflict clauses are satisfied (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FreeVarPolarity {
    /// BerkMin's rule: choose the literal `l ∈ {x, ¬x}` with the greatest
    /// `nb_two(l)` estimate and assign the value setting `l` to 0,
    /// maximizing the expected BCP cascade through binary clauses.
    #[default]
    NbTwo,
    /// Always assign 0.
    Take0,
    /// Always assign 1.
    Take1,
    /// Assign a uniformly random value.
    TakeRand,
}

/// Restart policy (paper §1; BerkMin's published strategy is a fixed
/// conflict interval, described as "primitive, close to random").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartPolicy {
    /// Restart every `n` conflicts. BerkMin56 used 550.
    FixedInterval(u64),
    /// Luby sequence scaled by `base` conflicts — the modern strategy,
    /// offered as the future-work extension §10 calls for.
    Luby(u64),
    /// Never restart (turns off clause-database reduction as well, since
    /// reduction runs between search trees).
    Never,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy::FixedInterval(550)
    }
}

/// Clause-database management policy, applied between search trees
/// (paper §8, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbPolicy {
    /// BerkMin's policy. A learnt clause at distance `< 15/16·stack` from
    /// the top is *young* and kept iff `len < young_len ∨ activity >
    /// young_act`; otherwise it is *old* and kept iff `len < old_len ∨
    /// activity > old_threshold`, where the old-clause activity threshold
    /// starts at `old_act_init` and grows by `old_act_inc` per reduction.
    /// The topmost stack clause is never removed (anti-looping guard).
    BerkMin {
        /// Young clauses shorter than this are always kept (paper: 43).
        young_len: u32,
        /// Young clauses more active than this are kept (paper: 7).
        young_act: u32,
        /// Old clauses shorter than this are always kept (paper: 9).
        old_len: u32,
        /// Initial old-clause activity threshold (paper: 60).
        old_act_init: u32,
        /// Per-reduction increment of the old-clause threshold.
        old_act_inc: u32,
    },
    /// GRASP-style `limited_keeping` (Table 5): remove every learnt clause
    /// longer than `max_len` (paper used 42), regardless of age/activity.
    LengthBounded {
        /// Maximum kept clause length.
        max_len: u32,
    },
    /// Keep every learnt clause (memory permitting).
    KeepAll,
}

impl DbPolicy {
    /// The paper's BerkMin policy with its published constants.
    pub const fn berkmin_default() -> Self {
        DbPolicy::BerkMin {
            young_len: 43,
            young_act: 7,
            old_len: 9,
            old_act_init: 60,
            old_act_inc: 1,
        }
    }
}

impl Default for DbPolicy {
    fn default() -> Self {
        DbPolicy::berkmin_default()
    }
}

/// Configuration of the SatELite-style preprocessor (the
/// `crate::preprocess` module): subsumption, self-subsuming resolution and
/// bounded variable elimination, run at solve entry over the occurrence
/// lists before the search starts.
///
/// Three presets cover the useful points of the space:
///
/// * [`SimplifyConfig::default`] — subsumption and strengthening on,
///   variable elimination **off**, first solve call only. This is the
///   conservative default: it never removes a variable, so incremental
///   sessions can keep adding clauses over any variable without ceremony.
/// * [`SimplifyConfig::full`] — everything on, including bounded variable
///   elimination. Eliminated variables **may not** be mentioned by later
///   [`add_clause`](crate::Solver::add_clause)/[`assume`](crate::Solver::assume)
///   calls (the solver panics); incremental users must
///   [`freeze`](crate::Solver::freeze) variables they intend to reuse.
/// * [`SimplifyConfig::off`] — the preprocessor never runs; the search
///   sees the raw formula exactly as before this subsystem existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimplifyConfig {
    /// Master switch: when false the preprocessor never runs.
    pub enable: bool,
    /// Backward subsumption + self-subsuming resolution (clause
    /// strengthening) over the occurrence lists.
    pub subsumption: bool,
    /// Bounded variable elimination. Off in the default preset: BVE
    /// removes variables, which constrains later incremental reuse (see
    /// the freeze/melt contract on [`crate::Solver::freeze`]).
    pub var_elim: bool,
    /// Skip eliminating a variable when either polarity occurs in more
    /// than this many clauses (the classic SatELite occurrence cap).
    pub elim_occ_cap: usize,
    /// Eliminate only when the number of non-tautological resolvents is at
    /// most `pos + neg + elim_growth` (0 = never let the database grow).
    pub elim_growth: usize,
    /// Abort eliminating a variable if any resolvent would exceed this
    /// many literals.
    pub elim_clause_cap: usize,
    /// Re-run the simplifier at every solve call (inprocessing) instead of
    /// only the first.
    pub inprocess: bool,
    /// Maximum subsumption/elimination rounds per simplifier run (each
    /// round re-processes the clauses touched by the previous one).
    pub rounds: u32,
}

impl SimplifyConfig {
    /// Everything on: subsumption, strengthening and bounded variable
    /// elimination, re-run on every solve call.
    pub const fn full() -> Self {
        SimplifyConfig {
            enable: true,
            subsumption: true,
            var_elim: true,
            elim_occ_cap: 10,
            elim_growth: 0,
            elim_clause_cap: 20,
            inprocess: true,
            rounds: 3,
        }
    }

    /// Preprocessing disabled entirely.
    pub const fn off() -> Self {
        SimplifyConfig {
            enable: false,
            ..SimplifyConfig::full()
        }
    }
}

impl Default for SimplifyConfig {
    /// Subsumption and strengthening on, variable elimination off, first
    /// solve call only — safe for unrestricted incremental use.
    fn default() -> Self {
        SimplifyConfig {
            var_elim: false,
            inprocess: false,
            ..SimplifyConfig::full()
        }
    }
}

/// Resource budgets turning a run into a deterministic, machine-independent
/// experiment. A budget of `u64::MAX` means unlimited.
///
/// Budgets are accounted **per solve call**: each call to
/// [`Solver::solve`](crate::Solver::solve) (or its assumption/proof
/// variants) measures its own spend, so in incremental use a later call
/// never inherits an earlier call's consumption — re-calling after an
/// abort simply grants a fresh allowance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Abort after this many conflicts.
    pub max_conflicts: u64,
    /// Abort after this many decisions.
    pub max_decisions: u64,
    /// Abort after this many propagated literals.
    pub max_propagations: u64,
}

impl Budget {
    /// An unlimited budget.
    pub const fn unlimited() -> Self {
        Budget {
            max_conflicts: u64::MAX,
            max_decisions: u64::MAX,
            max_propagations: u64::MAX,
        }
    }

    /// A budget capping only the number of conflicts — the harness's
    /// deterministic analog of the paper's wall-clock timeouts.
    pub const fn conflicts(n: u64) -> Self {
        Budget {
            max_conflicts: n,
            max_decisions: u64::MAX,
            max_propagations: u64::MAX,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Full solver configuration. Construct via a preset and override fields.
///
/// # Examples
///
/// ```
/// use berkmin::{SolverConfig, RestartPolicy};
///
/// let mut cfg = SolverConfig::berkmin();
/// cfg.restart = RestartPolicy::Luby(100); // try the modern restart scheme
/// assert_ne!(cfg, SolverConfig::berkmin());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Variable-activity update rule (paper §4).
    pub sensitivity: Sensitivity,
    /// Branching-variable selection rule (paper §5).
    pub decision: DecisionStrategy,
    /// Implementation of "most active free variable" lookup (Remark 1).
    pub activity_index: ActivityIndex,
    /// Polarity rule for top-clause decisions (paper §7).
    pub top_polarity: TopClausePolarity,
    /// Polarity rule for most-active-variable decisions (paper §7).
    pub free_polarity: FreeVarPolarity,
    /// Restart schedule.
    pub restart: RestartPolicy,
    /// Clause-database management policy (paper §8).
    pub db_policy: DbPolicy,
    /// Divide all variable activities by this every
    /// [`SolverConfig::activity_decay_interval`] conflicts (aging, §1/§5).
    pub activity_decay_divisor: u64,
    /// Conflicts between activity-aging steps (the paper's Chaff discussion
    /// uses "every 100 conflicts").
    pub activity_decay_interval: u64,
    /// VSIDS literal-counter halving interval in conflicts (zChaff preset).
    pub vsids_decay_interval: u64,
    /// Stop `nb_two` evaluation once the sum exceeds this (paper §7: 100).
    pub nb_two_threshold: u32,
    /// Apply conflict-clause minimization (self-subsumption) — a *post-paper*
    /// technique (MiniSat 2005), off by default for faithfulness; exposed for
    /// the extension ablation bench.
    pub minimize_learnt: bool,
    /// Seed for the heuristics' internal PRNG.
    pub seed: u64,
    /// Resource budget.
    pub budget: Budget,
    /// Record every decision variable in [`crate::Stats::decision_log`]
    /// (used by the Fig. 1 experiment; costs memory on long runs).
    pub record_decisions: bool,
    /// Conflicts between [`SolveEvent::Progress`](crate::SolveEvent::Progress)
    /// ticks within one solve call (0 disables ticks). Only consulted when
    /// an observer is attached — without one the search never looks at it.
    pub progress_every: u64,
    /// Run [`Solver::audit_invariants`](crate::Solver::audit_invariants)
    /// at every quiescent point of the search (after propagation, conflict
    /// handling and restarts), panicking on the first violation. Expensive —
    /// meant for fuzzing, debugging and the `--paranoid` CLI flag, not for
    /// production runs.
    pub paranoid: bool,
    /// Preprocessor configuration (subsumption, self-subsuming resolution,
    /// bounded variable elimination) applied at solve entry.
    pub simplify: SimplifyConfig,
}

impl SolverConfig {
    /// The full BerkMin56 configuration — every feature of the paper on.
    pub fn berkmin() -> Self {
        SolverConfig {
            sensitivity: Sensitivity::Berkmin,
            decision: DecisionStrategy::BerkMin,
            activity_index: ActivityIndex::NaiveScan,
            top_polarity: TopClausePolarity::Symmetrize,
            free_polarity: FreeVarPolarity::NbTwo,
            restart: RestartPolicy::default(),
            db_policy: DbPolicy::berkmin_default(),
            activity_decay_divisor: 4,
            activity_decay_interval: 100,
            vsids_decay_interval: 256,
            nb_two_threshold: 100,
            minimize_learnt: false,
            seed: 0x5EED_B16B_00B5,
            budget: Budget::unlimited(),
            record_decisions: false,
            progress_every: 1024,
            paranoid: false,
            simplify: SimplifyConfig::default(),
        }
    }

    /// Table 1 ablation arm: Chaff-like variable activities (bump only the
    /// variables of the deduced conflict clause), everything else BerkMin.
    pub fn less_sensitivity() -> Self {
        SolverConfig {
            sensitivity: Sensitivity::ConflictClauseOnly,
            ..SolverConfig::berkmin()
        }
    }

    /// Table 2 ablation arm: Chaff-like decision mobility (always the most
    /// active free variable, computed with BerkMin sensitivity).
    pub fn less_mobility() -> Self {
        SolverConfig {
            decision: DecisionStrategy::MostActiveVar,
            ..SolverConfig::berkmin()
        }
    }

    /// Table 4 ablation arms: BerkMin with a different polarity heuristic
    /// for decisions made on the current top clause.
    pub fn with_top_polarity(polarity: TopClausePolarity) -> Self {
        SolverConfig {
            top_polarity: polarity,
            ..SolverConfig::berkmin()
        }
    }

    /// Table 5 ablation arm: GRASP-style database management (remove learnt
    /// clauses longer than 42).
    pub fn limited_keeping() -> Self {
        SolverConfig {
            db_policy: DbPolicy::LengthBounded { max_len: 42 },
            ..SolverConfig::berkmin()
        }
    }

    /// The zChaff baseline of Tables 6–10: VSIDS decisions with periodic
    /// halving, GRASP-like database management (the paper notes Chaff's
    /// management "is similar to GRASP's", §8).
    pub fn chaff_like() -> Self {
        SolverConfig {
            sensitivity: Sensitivity::ConflictClauseOnly,
            decision: DecisionStrategy::Vsids,
            top_polarity: TopClausePolarity::Take0,
            free_polarity: FreeVarPolarity::Take0,
            restart: RestartPolicy::FixedInterval(700),
            db_policy: DbPolicy::LengthBounded { max_len: 42 },
            ..SolverConfig::berkmin()
        }
    }

    /// A limmat-like third configuration for the Table 10 shootout: VSIDS
    /// with aggressive Luby restarts and positive default polarity. (The
    /// real limmat binary is unavailable; any differently-tuned complete
    /// CDCL solver fills its role in the robustness comparison.)
    pub fn limmat_like() -> Self {
        SolverConfig {
            sensitivity: Sensitivity::ConflictClauseOnly,
            decision: DecisionStrategy::Vsids,
            top_polarity: TopClausePolarity::Take1,
            free_polarity: FreeVarPolarity::Take1,
            restart: RestartPolicy::Luby(64),
            db_policy: DbPolicy::LengthBounded { max_len: 100 },
            ..SolverConfig::berkmin()
        }
    }

    /// The diversified configuration for portfolio worker `index` — the
    /// schedule the [`PortfolioEngine`](crate::PortfolioEngine) assigns its
    /// worker threads. The first four slots cover the qualitatively
    /// different search behaviors the repo already has presets for
    /// (BerkMin, zChaff-like VSIDS, limmat-like Luby, BerkMin with opposite
    /// default polarity); further slots recycle those with varied restart
    /// intervals. Every slot gets a distinct PRNG seed derived from `index`
    /// so even same-preset workers explore different trees.
    pub fn portfolio_worker(index: usize) -> Self {
        let seed = 0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul(index as u64 + 1)
            .wrapping_add(0x5EED);
        let mut cfg = match index % 4 {
            0 => SolverConfig::berkmin(),
            1 => SolverConfig::chaff_like(),
            2 => SolverConfig::limmat_like(),
            _ => {
                let mut c = SolverConfig::with_top_polarity(TopClausePolarity::Take1);
                c.free_polarity = FreeVarPolarity::Take1;
                c.minimize_learnt = true;
                c
            }
        };
        // Later rounds re-tune the restart cadence so repeats of a preset
        // still cut the search into differently sized trees.
        let round = (index / 4) as u64;
        if round > 0 {
            cfg.restart = match cfg.restart {
                RestartPolicy::FixedInterval(n) => {
                    RestartPolicy::FixedInterval((n / (round + 1)).max(64))
                }
                RestartPolicy::Luby(b) => RestartPolicy::Luby((b * (round + 1)).min(1024)),
                RestartPolicy::Never => RestartPolicy::FixedInterval(550),
            };
        }
        cfg.with_seed(seed)
    }

    /// Sets the conflict budget, returning the modified config (builder-style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the PRNG seed, returning the modified config (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables (or disables) paranoid self-auditing, returning the modified
    /// config (builder-style). See [`SolverConfig::paranoid`].
    pub fn with_paranoid(mut self, paranoid: bool) -> Self {
        self.paranoid = paranoid;
        self
    }

    /// Sets the conflict interval between progress-tick events, returning
    /// the modified config (builder-style). See
    /// [`SolverConfig::progress_every`].
    pub fn with_progress_every(mut self, conflicts: u64) -> Self {
        self.progress_every = conflicts;
        self
    }

    /// Sets the preprocessor configuration, returning the modified config
    /// (builder-style). See [`SimplifyConfig`].
    pub fn with_simplify(mut self, simplify: SimplifyConfig) -> Self {
        self.simplify = simplify;
        self
    }
}

impl Default for SolverConfig {
    /// The default configuration is the paper's full BerkMin.
    fn default() -> Self {
        SolverConfig::berkmin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_documented_axes() {
        let base = SolverConfig::berkmin();
        let ls = SolverConfig::less_sensitivity();
        assert_eq!(ls.sensitivity, Sensitivity::ConflictClauseOnly);
        assert_eq!(ls.decision, base.decision);

        let lm = SolverConfig::less_mobility();
        assert_eq!(lm.decision, DecisionStrategy::MostActiveVar);
        assert_eq!(lm.sensitivity, base.sensitivity);

        let lk = SolverConfig::limited_keeping();
        assert_eq!(lk.db_policy, DbPolicy::LengthBounded { max_len: 42 });
    }

    #[test]
    fn default_is_berkmin() {
        assert_eq!(SolverConfig::default(), SolverConfig::berkmin());
    }

    #[test]
    fn berkmin_db_constants_match_paper() {
        match DbPolicy::berkmin_default() {
            DbPolicy::BerkMin {
                young_len,
                young_act,
                old_len,
                old_act_init,
                ..
            } => {
                assert_eq!(
                    (young_len, young_act, old_len, old_act_init),
                    (43, 7, 9, 60)
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn budget_constructors() {
        let b = Budget::conflicts(100);
        assert_eq!(b.max_conflicts, 100);
        assert_eq!(b.max_decisions, u64::MAX);
        assert_eq!(Budget::default(), Budget::unlimited());
    }

    #[test]
    fn portfolio_workers_are_diversified() {
        let cfgs: Vec<SolverConfig> = (0..8).map(SolverConfig::portfolio_worker).collect();
        // Distinct seeds everywhere.
        let mut seeds: Vec<u64> = cfgs.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
        // Worker 0 is plain BerkMin modulo the seed.
        assert_eq!(
            cfgs[0].clone().with_seed(SolverConfig::berkmin().seed),
            SolverConfig::berkmin()
        );
        // Round 2 repeats a preset family but with a different restart cadence.
        assert_ne!(cfgs[4].restart, cfgs[0].restart);
        assert_eq!(cfgs[4].decision, cfgs[0].decision);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = SolverConfig::berkmin()
            .with_seed(7)
            .with_budget(Budget::conflicts(5));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.budget.max_conflicts, 5);
    }
}
