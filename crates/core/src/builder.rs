//! Construction-time assembly of a solver session.
//!
//! [`SolverBuilder`] owns everything a [`Solver`] needs *before* the first
//! solve call: the [`SolverConfig`], the proof sink (attached once, at
//! construction — not per call), a reserved variable space, initial
//! clauses, and the two IPASIR-style solve-event hooks (terminate and
//! learnt-clause callbacks). `build()` yields a concrete [`Solver`];
//! `build_engine()` yields it as a `Box<dyn SatEngine>` for drivers that
//! are generic over engines.

use berkmin_cnf::{ClauseSink, Cnf, Lit, Var};

use crate::config::SolverConfig;
use crate::engine::SatEngine;
use crate::proof::ProofSink;
use crate::search::{ExportCallback, ImportCallback, LearntCallback, TerminateCallback};
use crate::solver::Solver;
use crate::telemetry::SolveObserver;

/// Builder for a [`Solver`] session.
///
/// # Examples
///
/// Assemble a session with clauses, an assumption, and solve:
///
/// ```
/// use berkmin::{SolverBuilder, SolverConfig};
/// use berkmin_cnf::Lit;
///
/// let [a, b] = [1, 2].map(Lit::from_dimacs);
/// let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
///     .clause([a, b])
///     .clause([!a, b])
///     .build();
/// solver.assume(!b);
/// assert!(solver.solve().is_unsat());
/// assert_eq!(solver.failed_assumptions(), &[!b]);
/// assert!(solver.solve().is_sat()); // assumptions were consumed
/// ```
///
/// Event hooks are installed here too — a terminate callback polled at
/// restart boundaries and a learnt-clause callback for short clauses:
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use berkmin::SolverBuilder;
/// use berkmin_cnf::Lit;
///
/// let learnt = Rc::new(RefCell::new(Vec::new()));
/// let tap = Rc::clone(&learnt);
/// let mut solver = SolverBuilder::new()
///     .on_learnt(4, move |clause| tap.borrow_mut().push(clause.to_vec()))
///     .clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
///     .build();
/// assert!(solver.solve().is_sat()); // (trivially SAT: nothing learnt)
/// assert!(learnt.borrow().is_empty());
/// ```
#[must_use = "a builder does nothing until `build()` or `build_engine()`"]
pub struct SolverBuilder {
    config: SolverConfig,
    proof: Option<Box<dyn ProofSink>>,
    reserve_vars: usize,
    clauses: Vec<Vec<Lit>>,
    frozen: Vec<Var>,
    terminate: Option<TerminateCallback>,
    on_learnt: Option<(usize, LearntCallback)>,
    export: Option<(u32, ExportCallback)>,
    import: Option<ImportCallback>,
    observer: Option<Box<dyn SolveObserver>>,
}

impl Default for SolverBuilder {
    fn default() -> Self {
        SolverBuilder::new()
    }
}

impl SolverBuilder {
    /// A builder with the paper's full BerkMin configuration.
    pub fn new() -> Self {
        SolverBuilder::with_config(SolverConfig::berkmin())
    }

    /// A builder with an explicit configuration (any preset or custom
    /// [`SolverConfig`]).
    pub fn with_config(config: SolverConfig) -> Self {
        SolverBuilder {
            config,
            proof: None,
            reserve_vars: 0,
            clauses: Vec::new(),
            frozen: Vec::new(),
            terminate: None,
            on_learnt: None,
            export: None,
            import: None,
            observer: None,
        }
    }

    /// Replaces the configuration.
    pub fn config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches the proof sink every [`Solver::solve`] call will report
    /// learnt clauses and deletions to. Attach an
    /// `Rc<RefCell<...>>`-wrapped sink (which implements [`ProofSink`])
    /// to keep a handle for reading the proof back after solving.
    pub fn proof(mut self, sink: impl ProofSink + 'static) -> Self {
        self.proof = Some(Box::new(sink));
        self
    }

    /// Pre-reserves a variable space of at least `n` variables.
    pub fn reserve_vars(mut self, n: usize) -> Self {
        self.reserve_vars = self.reserve_vars.max(n);
        self
    }

    /// Appends one initial clause.
    pub fn clause(mut self, lits: impl IntoIterator<Item = Lit>) -> Self {
        self.clauses.push(lits.into_iter().collect());
        self
    }

    /// Marks `var` as frozen: the preprocessor will never eliminate it, so
    /// it stays safe to mention in clauses added after a solve call or in
    /// assumptions ([`Solver::freeze`] has the full contract). Assumption
    /// variables of each call are frozen automatically; freeze here only
    /// the variables of *future* clauses or assumptions the solver cannot
    /// yet see.
    pub fn freeze(mut self, var: Var) -> Self {
        self.frozen.push(var);
        self
    }

    /// Appends every clause of `cnf` and reserves its variable space.
    pub fn cnf(mut self, cnf: &Cnf) -> Self {
        self.reserve_vars = self.reserve_vars.max(cnf.num_vars());
        for clause in cnf {
            self.clauses.push(clause.iter().copied().collect());
        }
        self
    }

    /// Installs the terminate callback: polled at solve entry and at every
    /// restart boundary; returning `true` aborts the running call with
    /// [`SolveStatus::Unknown`](crate::SolveStatus::Unknown)\(
    /// [`StopReason::Callback`](crate::StopReason::Callback)\). Budgets are
    /// unaffected — a later call proceeds with its full per-call allowance.
    /// The callback observes only its captured state (no solver access), so
    /// it cannot perturb the search it interrupts.
    pub fn on_terminate(mut self, callback: impl FnMut() -> bool + 'static) -> Self {
        self.terminate = Some(Box::new(callback));
        self
    }

    /// Installs the learnt-clause callback: fired once per conflict-derived
    /// learnt clause of length ≤ `max_len` (asserting literal first),
    /// right after the clause is reported to the proof sink and before the
    /// search resumes. Every delivered clause is a logical consequence of
    /// the formula alone — assumptions never leak into learnt clauses — so
    /// IC3/BMC-style drivers may forward them to sibling solvers.
    pub fn on_learnt(mut self, max_len: usize, callback: impl FnMut(&[Lit]) + 'static) -> Self {
        self.on_learnt = Some((max_len, Box::new(callback)));
        self
    }

    /// Installs the share-export callback: fired once per conflict-derived
    /// learnt clause that passes the portfolio sharing filter — length ≤ 2,
    /// or LBD ("glue") ≤ `max_lbd` — with the clause's literals and glue.
    /// Exported clauses are logical consequences of the formula alone, so
    /// sibling solvers on the same formula may add them soundly.
    pub fn share_export(
        mut self,
        max_lbd: u32,
        callback: impl FnMut(&[Lit], u32) + 'static,
    ) -> Self {
        self.export = Some((max_lbd, Box::new(callback)));
        self
    }

    /// Installs the share-import source: polled at solve entry and at every
    /// restart boundary with a scratch buffer to fill with foreign clauses,
    /// which the solver attaches as learnt clauses. Every supplied clause **must** be implied
    /// by the original formula.
    ///
    /// # Panics (in [`SolverBuilder::build`])
    ///
    /// Combining an import source with a [`proof`](SolverBuilder::proof)
    /// sink is a configuration error: imported clauses are not derivable
    /// from the solver's own resolutions, so any DRAT log containing search
    /// steps that depend on them would be unsound. `build()` panics rather
    /// than silently emitting an uncheckable proof.
    pub fn share_import(mut self, source: impl FnMut(&mut Vec<Vec<Lit>>) + 'static) -> Self {
        self.import = Some(Box::new(source));
        self
    }

    /// Installs the structured telemetry observer: receives every
    /// [`SolveEvent`](crate::SolveEvent) the solver emits (solve-call
    /// brackets, restarts, reductions, progress ticks, sharing traffic).
    /// Any `FnMut(&SolveEvent)` closure qualifies; see [`crate::telemetry`]
    /// for the vocabulary. Without an observer the solver skips event
    /// construction entirely — each emission site is one `Option` check.
    pub fn on_event(mut self, observer: impl SolveObserver + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Builds the concrete [`Solver`].
    ///
    /// # Panics
    ///
    /// Panics if both a proof sink and a share-import source were attached —
    /// see [`SolverBuilder::share_import`] for why that combination cannot
    /// produce a sound proof.
    pub fn build(self) -> Solver {
        assert!(
            self.proof.is_none() || self.import.is_none(),
            "configuration error: a proof sink cannot be combined with a \
             share-import source (imported clauses are not RUP-derivable in \
             this solver's DRAT log; disable clause sharing to keep proofs)"
        );
        let mut solver = Solver::with_config(self.config);
        if let Some(sink) = self.proof {
            solver.replace_proof_sink(sink);
        }
        solver.set_terminate(self.terminate);
        solver.set_learnt_callback(self.on_learnt);
        solver.set_export_callback(self.export);
        solver.set_import_source(self.import);
        solver.set_observer(self.observer);
        solver.reserve_vars(self.reserve_vars);
        for var in self.frozen {
            solver.freeze(var);
        }
        for clause in self.clauses {
            solver.add_clause(clause);
        }
        solver
    }

    /// Builds the solver as a boxed [`SatEngine`] trait object — the form
    /// engine-generic drivers (BMC, bench harness, CLI) consume.
    pub fn build_engine(self) -> Box<dyn SatEngine> {
        Box::new(self.build())
    }
}

/// Streaming DIMACS into a builder buffers the clauses for `build()`.
/// (Prefer streaming into the built [`Solver`] directly when no further
/// construction-time choices depend on the file's contents.)
impl ClauseSink for SolverBuilder {
    fn header(&mut self, num_vars: usize, _num_clauses: usize) {
        self.reserve_vars = self.reserve_vars.max(num_vars);
    }

    fn clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn builder_matches_direct_construction() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(2)]);
        let mut direct = Solver::new(&cnf, SolverConfig::berkmin());
        let mut built = SolverBuilder::with_config(SolverConfig::berkmin())
            .cnf(&cnf)
            .build();
        assert_eq!(direct.solve().is_sat(), built.solve().is_sat());
        assert_eq!(direct.num_vars(), built.num_vars());
        assert_eq!(direct.stats().conflicts, built.stats().conflicts);
    }

    #[test]
    fn reserved_vars_cover_unconstrained_variables() {
        let solver = SolverBuilder::new().reserve_vars(10).build();
        assert_eq!(solver.num_vars(), 10);
    }

    #[test]
    fn clause_sink_impl_buffers_header_and_clauses() {
        let mut builder = SolverBuilder::new();
        ClauseSink::header(&mut builder, 7, 1);
        ClauseSink::clause(&mut builder, &[lit(1), lit(-2)]);
        let mut solver = builder.build();
        assert_eq!(solver.num_vars(), 7);
        assert_eq!(solver.num_original_clauses(), 1);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn proof_sink_attaches_at_construction() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Counting(usize);
        impl ProofSink for Counting {
            fn add_clause(&mut self, _lits: &[Lit]) {
                self.0 += 1;
            }
            fn delete_clause(&mut self, _lits: &[Lit]) {}
        }

        let sink = Rc::new(RefCell::new(Counting::default()));
        let mut solver = SolverBuilder::new()
            .proof(Rc::clone(&sink))
            .clause([lit(1)])
            .clause([lit(-1)])
            .build();
        assert!(solver.solve().is_unsat());
        // At minimum the empty clause was reported.
        assert!(sink.borrow().0 >= 1);
        assert!(!solver.is_ok());
    }
}
