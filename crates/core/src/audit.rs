//! Runtime self-auditing: one deep consistency check over every piece of
//! solver state the search trusts implicitly.
//!
//! [`Solver::audit_invariants`] validates, in one pass:
//!
//! * **Arena integrity** — every record header is walkable, filler pads are
//!   marked garbage, live clauses store ≥ 2 literals, and the running
//!   garbage/live counters match a full walk ([`ClauseDb::audit`]).
//! * **Watch structure** — every live clause is watched exactly twice, long
//!   clauses at their first two literals, binary clauses inline with the
//!   correct partner literal, blockers inside their clause, and no watcher
//!   dangles into garbage.
//! * **Watch semantics** — once the propagation queue is drained
//!   (`qhead == trail.len()`) every live clause is satisfied or has both
//!   watched literals unfalsified (the two-watched-literal contract).
//! * **Trail/reason consistency** — trail literals are true, levels match
//!   the decision markers, reason clauses are live, contain the implied
//!   literal and have every other literal falsified at or below its level.
//! * **Decision-heap membership** — under [`ActivityIndex::Heap`], every
//!   unassigned variable is in the heap and the heap/pos tables are mutual
//!   inverses satisfying the max-heap property (lazy deletion means
//!   *assigned* variables may legitimately linger).
//!
//! The check is `O(arena + watches + vars)` — far too slow for production
//! BCP but cheap enough to run at every quiescent point of a fuzzed solve.
//! That is exactly what [`SolverConfig::paranoid`](crate::SolverConfig)
//! does, and what the `debug_assert!` hooks at the mutation sites do in
//! debug builds.

use std::collections::{HashMap, HashSet};

use berkmin_cnf::{LBool, Lit, Var};

use crate::clause_db::ClauseRef;
use crate::config::ActivityIndex;
use crate::solver::Solver;

/// Every invariant violation found by one [`Solver::audit_invariants`]
/// call, in discovery order.
///
/// The report is the `Err` payload; its [`std::fmt::Display`] output is a
/// bullet list suitable for a panic message or a fuzzing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Human-readable violation descriptions.
    pub violations: Vec<String>,
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} solver invariant violation(s):",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

impl Solver {
    /// Deep-checks every structural invariant of the solver — watch lists,
    /// trail/reason consistency, decision-heap membership and clause-arena
    /// header integrity — returning an [`AuditReport`] describing each
    /// violation found.
    ///
    /// Valid at any *quiescent* point: after [`Solver::solve`] returns,
    /// between incremental calls, or — internally — after propagation,
    /// conflict handling, backtracking and garbage collection. The
    /// watch-semantics check arms itself only when the propagation queue is
    /// drained and the solver is still consistent, so calling this on a
    /// partially propagated trail is safe, merely less thorough.
    ///
    /// # Examples
    ///
    /// ```
    /// use berkmin::{Solver, SolverConfig};
    /// use berkmin_cnf::Lit;
    ///
    /// let mut s = Solver::with_config(SolverConfig::berkmin());
    /// s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    /// assert!(s.solve().is_sat());
    /// s.audit_invariants().expect("solver state is consistent");
    /// ```
    pub fn audit_invariants(&self) -> Result<(), AuditReport> {
        let mut out = Vec::new();
        self.db.audit(&mut out);
        self.audit_tables(&mut out);
        if out.iter().any(|v| v.starts_with("tables:")) {
            // Mis-sized per-variable tables make the deeper checks index out
            // of bounds; report what is known rather than panic inside the
            // auditor.
            return Err(AuditReport { violations: out });
        }
        let live: HashSet<ClauseRef> = self.db.iter_live().collect();
        self.audit_stack(&live, &mut out);
        self.audit_watches(&live, &mut out);
        self.audit_trail(&live, &mut out);
        self.audit_eliminated(&live, &mut out);
        if self.config.activity_index == ActivityIndex::Heap {
            self.audit_heap(&mut out);
        }
        if out.is_empty() {
            Ok(())
        } else {
            Err(AuditReport { violations: out })
        }
    }

    /// Panics with the full report if the audit finds a violation; returns
    /// `true` otherwise so it can sit inside a `debug_assert!`.
    pub(crate) fn assert_invariants(&self, site: &str) -> bool {
        if let Err(report) = self.audit_invariants() {
            panic!("solver invariant audit failed ({site}): {report}");
        }
        true
    }

    /// The [`SolverConfig::paranoid`](crate::SolverConfig) hook: a full
    /// audit at a quiescent point of the search, fatal on violation.
    #[inline]
    pub(crate) fn paranoid_audit(&self, site: &str) {
        if self.config.paranoid {
            self.assert_invariants(site);
        }
    }

    /// Per-variable table sizes and trail bookkeeping.
    fn audit_tables(&self, out: &mut Vec<String>) {
        let n = self.num_vars;
        for (name, len) in [
            ("assigns", self.assigns.len()),
            ("level", self.level.len()),
            ("reason", self.reason.len()),
            ("seen", self.seen.len()),
            ("var_activity", self.var_activity.len()),
        ] {
            if len != n {
                out.push(format!("tables: {name} covers {len} vars, expected {n}"));
            }
        }
        for (name, len) in [
            ("watches", self.watches.len()),
            ("bin_watches", self.bin_watches.len()),
            ("lit_activity", self.lit_activity.len()),
        ] {
            if len != 2 * n {
                out.push(format!(
                    "tables: {name} covers {len} literal codes, expected {}",
                    2 * n
                ));
            }
        }
        if self.qhead > self.trail.len() {
            out.push(format!(
                "trail: qhead {} beyond trail length {}",
                self.qhead,
                self.trail.len()
            ));
        }
        let mut prev = 0usize;
        for (i, &lim) in self.trail_lim.iter().enumerate() {
            if lim > self.trail.len() || lim < prev {
                out.push(format!(
                    "trail: decision marker {i} at {lim} is out of order \
                     (prev {prev}, trail length {})",
                    self.trail.len()
                ));
            }
            prev = lim;
        }
        if self.seen.iter().any(|&s| s) {
            out.push("analysis: seen[] scratch left marked outside analysis".into());
        }
    }

    /// The conflict-clause stack: live, learnt, chronological.
    fn audit_stack(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        let mut prev: Option<ClauseRef> = None;
        for &cref in &self.db.stack {
            if !live.contains(&cref) {
                out.push(format!("stack: entry {cref:?} is not a live clause"));
                continue;
            }
            if !self.db.is_learnt(cref) {
                out.push(format!("stack: entry {cref:?} is an original clause"));
            }
            if let Some(p) = prev {
                if cref <= p {
                    out.push(format!(
                        "stack: entry {cref:?} breaks chronological arena order \
                         (follows {p:?})"
                    ));
                }
            }
            prev = Some(cref);
        }
    }

    /// Watch-list structure, plus the semantic two-watched-literal contract
    /// when the propagation queue is drained.
    fn audit_watches(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        let mut watch_count: HashMap<ClauseRef, usize> = HashMap::new();
        for code in 0..self.watches.len().min(self.bin_watches.len()) {
            // `watches[l]` is visited when `l` becomes true, i.e. it holds
            // the clauses containing `¬l` — `watched` is the clause literal.
            let watched = !Lit::from_code(code as u32);
            for w in &self.watches[code] {
                if !live.contains(&w.cref) {
                    out.push(format!(
                        "watches[{code}]: dangling long watcher {:?}",
                        w.cref
                    ));
                    continue;
                }
                let lits = self.db.lits(w.cref);
                if lits.len() < 3 {
                    out.push(format!(
                        "watches[{code}]: binary clause {:?} in the long lists",
                        w.cref
                    ));
                }
                if lits[0] != watched && lits[1] != watched {
                    out.push(format!(
                        "watches[{code}]: clause {:?} is not watched at its \
                         first two literals",
                        w.cref
                    ));
                }
                if !lits.contains(&w.blocker) {
                    out.push(format!(
                        "watches[{code}]: blocker of {:?} is outside the clause",
                        w.cref
                    ));
                }
                *watch_count.entry(w.cref).or_insert(0) += 1;
            }
            for w in &self.bin_watches[code] {
                if !live.contains(&w.cref) {
                    out.push(format!(
                        "bin_watches[{code}]: dangling binary watcher {:?}",
                        w.cref
                    ));
                    continue;
                }
                let lits = self.db.lits(w.cref);
                if lits.len() != 2 {
                    out.push(format!(
                        "bin_watches[{code}]: long clause {:?} in the binary lists",
                        w.cref
                    ));
                } else if !(lits.contains(&watched) && lits.contains(&w.other)) {
                    out.push(format!(
                        "bin_watches[{code}]: inline watcher does not encode \
                         clause {:?}",
                        w.cref
                    ));
                }
                *watch_count.entry(w.cref).or_insert(0) += 1;
            }
        }
        for &cref in live {
            let n = watch_count.get(&cref).copied().unwrap_or(0);
            if n != 2 {
                out.push(format!(
                    "watches: live clause {cref:?} is watched {n} time(s), \
                     expected exactly 2"
                ));
            }
        }
        // The semantic contract only holds once BCP has drained the queue;
        // a refuted solver keeps a falsified clause by design.
        if self.ok && self.qhead == self.trail.len() {
            for &cref in live {
                let lits = self.db.lits(cref);
                let satisfied = lits.iter().any(|&l| self.lit_value(l) == LBool::True);
                let watches_ok = self.lit_value(lits[0]) != LBool::False
                    && self.lit_value(lits[1]) != LBool::False;
                if !satisfied && !watches_ok {
                    out.push(format!(
                        "watch semantics: clause {cref:?} {lits:?} has a \
                         falsified watched literal but no satisfying literal \
                         on a fully propagated trail"
                    ));
                }
            }
        }
    }

    /// Trail/assignment/level/reason cross-consistency.
    fn audit_trail(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        let mut on_trail = vec![false; self.num_vars];
        let mut next_lim = 0usize;
        let mut level_here = 0u32;
        for (i, &l) in self.trail.iter().enumerate() {
            while next_lim < self.trail_lim.len() && self.trail_lim[next_lim] <= i {
                next_lim += 1;
                level_here = next_lim as u32;
            }
            let v = l.var().index();
            if v >= self.num_vars {
                out.push(format!("trail[{i}]: unknown var {v}"));
                continue;
            }
            if on_trail[v] {
                out.push(format!("trail[{i}]: var {v} appears twice"));
            }
            on_trail[v] = true;
            if self.lit_value(l) != LBool::True {
                out.push(format!("trail[{i}]: literal {l:?} is not assigned true"));
            }
            if self.level[v] != level_here {
                out.push(format!(
                    "trail[{i}]: var {v} records level {}, decision markers \
                     say {level_here}",
                    self.level[v]
                ));
            }
        }
        for (v, &trailed) in on_trail.iter().enumerate().take(self.num_vars) {
            let assigned = !self.assigns[v].is_undef();
            if assigned != trailed {
                out.push(format!(
                    "assigns: var {v} is {} but {} the trail",
                    if assigned { "assigned" } else { "unassigned" },
                    if trailed { "on" } else { "off" }
                ));
            }
            if !assigned && self.reason[v].is_some() {
                out.push(format!("reason: unassigned var {v} keeps a reason"));
            }
        }
        for &l in self.trail.iter() {
            let v = l.var().index();
            let Some(cref) = self.reason.get(v).copied().flatten() else {
                continue;
            };
            if !live.contains(&cref) {
                out.push(format!("reason: var {v} points at dead clause {cref:?}"));
                continue;
            }
            let lits = self.db.lits(cref);
            if !lits.contains(&l) {
                out.push(format!(
                    "reason: clause {cref:?} of var {v} does not contain its \
                     implied literal {l:?}"
                ));
                continue;
            }
            for &other in lits.iter().filter(|&&o| o != l) {
                if self.lit_value(other) != LBool::False {
                    out.push(format!(
                        "reason: clause {cref:?} of var {v} has unfalsified \
                         side literal {other:?}"
                    ));
                } else if self.level[other.var().index()] > self.level[v] {
                    out.push(format!(
                        "reason: clause {cref:?} of var {v} (level {}) leans on \
                         {other:?} assigned above it (level {})",
                        self.level[v],
                        self.level[other.var().index()]
                    ));
                }
            }
        }
    }

    /// Decision-heap membership and structure ([`ActivityIndex::Heap`]).
    /// Eliminated variables are exempt: the simplifier purges them from the
    /// heap and they must never be branched on again.
    fn audit_heap(&self, out: &mut Vec<String>) {
        self.heap.audit(&self.var_activity, out);
        for v in 0..self.num_vars {
            if self.assigns[v].is_undef()
                && !self.eliminated[v]
                && !self.heap.contains(Var::new(v as u32))
            {
                out.push(format!(
                    "heap: unassigned var {v} has fallen out of the decision heap"
                ));
            }
        }
    }

    /// Variables dissolved by the preprocessor must have vanished from the
    /// search entirely: no live clause, watcher, trail entry, assignment or
    /// heap slot may mention them (their values exist only on the
    /// reconstruction stack).
    fn audit_eliminated(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        if !self.eliminated.iter().any(|&e| e) {
            return;
        }
        for v in 0..self.num_vars {
            if !self.eliminated[v] {
                continue;
            }
            if !self.assigns[v].is_undef() {
                out.push(format!("eliminated: var {v} is assigned"));
            }
            if self.frozen[v] {
                out.push(format!("eliminated: var {v} is also frozen"));
            }
            if self.heap.contains(Var::new(v as u32)) {
                out.push(format!("eliminated: var {v} still in the decision heap"));
            }
            for l in [Lit::pos(Var::new(v as u32)), !Lit::pos(Var::new(v as u32))] {
                let code = l.code();
                if !self.watches[code].is_empty() || !self.bin_watches[code].is_empty() {
                    out.push(format!("eliminated: var {v} still has watchers"));
                    break;
                }
            }
        }
        for &l in &self.trail {
            if self.eliminated[l.var().index()] {
                out.push(format!("eliminated: var {:?} on the trail", l.var()));
            }
        }
        for &cref in live {
            if let Some(l) = self
                .db
                .lits(cref)
                .iter()
                .find(|l| self.eliminated[l.var().index()])
            {
                out.push(format!(
                    "eliminated: live clause {cref:?} mentions eliminated var {:?}",
                    l.var()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::solver::Watcher;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solved_solver() -> Solver {
        // Simplification off: these tests corrupt watch/trail state by hand
        // and need the exact clauses (the ternary one in particular) to
        // survive to the arena untouched.
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = crate::config::SimplifyConfig::off();
        let mut s = Solver::with_config(cfg);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        assert!(s.solve().is_sat());
        s
    }

    #[test]
    fn clean_solver_passes() {
        let s = solved_solver();
        s.audit_invariants()
            .expect("fresh solve leaves clean state");
    }

    #[test]
    fn cleared_watch_list_is_caught() {
        let mut s = solved_solver();
        let victim = (0..s.watches.len())
            .find(|&c| !s.watches[c].is_empty())
            .expect("a ternary clause is watched somewhere");
        s.watches[victim].clear();
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("watched 1 time(s)")),
            "missing-watch violation not reported: {report}"
        );
    }

    #[test]
    fn dangling_watcher_is_caught() {
        let mut s = solved_solver();
        let bogus = ClauseRef(u32::MAX - 8);
        s.watches[0].push(Watcher {
            cref: bogus,
            blocker: lit(1),
        });
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report.violations.iter().any(|v| v.contains("dangling")),
            "dangling watcher not reported: {report}"
        );
    }

    #[test]
    fn corrupted_assignment_is_caught() {
        let mut s = solved_solver();
        // Flip the first trail literal's assignment out from under the trail.
        let v = s.trail[0].var().index();
        s.assigns[v] = !s.assigns[v];
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("not assigned true")),
            "trail/assignment mismatch not reported: {report}"
        );
    }

    #[test]
    fn report_display_lists_every_violation() {
        let report = AuditReport {
            violations: vec!["first".into(), "second".into()],
        };
        let text = report.to_string();
        assert!(text.contains("2 solver invariant violation(s)"));
        assert!(text.contains("- first") && text.contains("- second"));
    }
}
