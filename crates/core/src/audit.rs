//! Runtime self-auditing: one deep consistency check over every piece of
//! solver state the search trusts implicitly.
//!
//! [`Solver::audit_invariants`] validates, in one pass:
//!
//! * **Arena integrity** — every record header is walkable, filler pads are
//!   marked garbage, live clauses store ≥ 2 literals, and the running
//!   garbage/live counters match a full walk ([`ClauseDb::audit`]).
//! * **Watch structure** — every live clause is watched exactly twice, long
//!   clauses at their first two literals, binary clauses inline with the
//!   correct partner literal, blockers inside their clause, and no watcher
//!   dangles into garbage.
//! * **Watch semantics** — once the propagation queue is drained
//!   ([`Trail::queue_drained`](crate::Trail::queue_drained)) every live
//!   clause is satisfied or has both
//!   watched literals unfalsified (the two-watched-literal contract).
//! * **Trail/reason consistency** — trail literals are true, levels match
//!   the decision markers, reason clauses are live, contain the implied
//!   literal and have every other literal falsified at or below its level.
//! * **Decision-heap membership** — under [`ActivityIndex::Heap`], every
//!   unassigned variable is in the heap and the heap/pos tables are mutual
//!   inverses satisfying the max-heap property (lazy deletion means
//!   *assigned* variables may legitimately linger).
//!
//! The check is `O(arena + watches + vars)` — far too slow for production
//! BCP but cheap enough to run at every quiescent point of a fuzzed solve.
//! That is exactly what [`SolverConfig::paranoid`](crate::SolverConfig)
//! does, and what the `debug_assert!` hooks at the mutation sites do in
//! debug builds.

use std::collections::HashSet;

use berkmin_cnf::{LBool, Lit, Var};

use crate::clause_db::ClauseRef;
use crate::config::ActivityIndex;
use crate::solver::Solver;

/// Every invariant violation found by one [`Solver::audit_invariants`]
/// call, in discovery order.
///
/// The report is the `Err` payload; its [`std::fmt::Display`] output is a
/// bullet list suitable for a panic message or a fuzzing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Human-readable violation descriptions.
    pub violations: Vec<String>,
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} solver invariant violation(s):",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

impl Solver {
    /// Deep-checks every structural invariant of the solver — watch lists,
    /// trail/reason consistency, decision-heap membership and clause-arena
    /// header integrity — returning an [`AuditReport`] describing each
    /// violation found.
    ///
    /// Valid at any *quiescent* point: after [`Solver::solve`] returns,
    /// between incremental calls, or — internally — after propagation,
    /// conflict handling, backtracking and garbage collection. The
    /// watch-semantics check arms itself only when the propagation queue is
    /// drained and the solver is still consistent, so calling this on a
    /// partially propagated trail is safe, merely less thorough.
    ///
    /// # Examples
    ///
    /// ```
    /// use berkmin::{Solver, SolverConfig};
    /// use berkmin_cnf::Lit;
    ///
    /// let mut s = Solver::with_config(SolverConfig::berkmin());
    /// s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    /// assert!(s.solve().is_sat());
    /// s.audit_invariants().expect("solver state is consistent");
    /// ```
    pub fn audit_invariants(&self) -> Result<(), AuditReport> {
        let mut out = Vec::new();
        self.db.audit(&mut out);
        self.trail.self_check(self.num_vars, &mut out);
        self.watches.self_check_sizes(self.num_vars, &mut out);
        self.audit_tables(&mut out);
        if out.iter().any(|v| v.starts_with("tables:")) {
            // Mis-sized per-variable tables make the deeper checks index out
            // of bounds; report what is known rather than panic inside the
            // auditor.
            return Err(AuditReport { violations: out });
        }
        let live: HashSet<ClauseRef> = self.db.iter_live().collect();
        self.audit_stack(&live, &mut out);
        self.watches
            .self_check(&self.db, &self.trail, &live, self.ok, &mut out);
        self.audit_reasons(&live, &mut out);
        self.audit_eliminated(&live, &mut out);
        if self.config.activity_index == ActivityIndex::Heap {
            self.audit_heap(&mut out);
        }
        if out.is_empty() {
            Ok(())
        } else {
            Err(AuditReport { violations: out })
        }
    }

    /// Panics with the full report if the audit finds a violation; returns
    /// `true` otherwise so it can sit inside a `debug_assert!`.
    pub(crate) fn assert_invariants(&self, site: &str) -> bool {
        if let Err(report) = self.audit_invariants() {
            panic!("solver invariant audit failed ({site}): {report}");
        }
        true
    }

    /// The [`SolverConfig::paranoid`](crate::SolverConfig) hook: a full
    /// audit at a quiescent point of the search, fatal on violation.
    #[inline]
    pub(crate) fn paranoid_audit(&self, site: &str) {
        if self.config.paranoid {
            self.assert_invariants(site);
        }
    }

    /// Sizes of the analysis/activity scratch tables the [`Trail`] and
    /// [`Watches`] self-checks do not own, plus the seen-scratch hygiene
    /// check.
    ///
    /// [`Trail`]: crate::Trail
    /// [`Watches`]: crate::watch::Watches
    fn audit_tables(&self, out: &mut Vec<String>) {
        let n = self.num_vars;
        for (name, len) in [
            ("seen", self.seen.len()),
            ("var_activity", self.var_activity.len()),
        ] {
            if len != n {
                out.push(format!("tables: {name} covers {len} vars, expected {n}"));
            }
        }
        let len = self.lit_activity.len();
        if len != 2 * n {
            out.push(format!(
                "tables: lit_activity covers {len} literal codes, expected {}",
                2 * n
            ));
        }
        if self.seen.iter().any(|&s| s) {
            out.push("analysis: seen[] scratch left marked outside analysis".into());
        }
    }

    /// The conflict-clause stack: live, learnt, chronological.
    fn audit_stack(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        let mut prev: Option<ClauseRef> = None;
        for &cref in &self.db.stack {
            if !live.contains(&cref) {
                out.push(format!("stack: entry {cref:?} is not a live clause"));
                continue;
            }
            if !self.db.is_learnt(cref) {
                out.push(format!("stack: entry {cref:?} is an original clause"));
            }
            if let Some(p) = prev {
                if cref <= p {
                    out.push(format!(
                        "stack: entry {cref:?} breaks chronological arena order \
                         (follows {p:?})"
                    ));
                }
            }
            prev = Some(cref);
        }
    }

    /// Reason-*clause* consistency for every implied trail literal: the
    /// clause is live, contains the implied literal, and every other
    /// literal is falsified at or below the implied literal's level. (The
    /// trail/assignment/level cross-checks that need no clause arena live
    /// in [`Trail::self_check`](crate::Trail).)
    fn audit_reasons(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        for &l in self.trail.iter() {
            let v = l.var().index();
            if v >= self.num_vars {
                continue; // already reported by the trail self-check
            }
            let Some(cref) = self.trail.reason_of(l.var()) else {
                continue;
            };
            if !live.contains(&cref) {
                out.push(format!("reason: var {v} points at dead clause {cref:?}"));
                continue;
            }
            let lits = self.db.lits(cref);
            if !lits.contains(&l) {
                out.push(format!(
                    "reason: clause {cref:?} of var {v} does not contain its \
                     implied literal {l:?}"
                ));
                continue;
            }
            for &other in lits.iter().filter(|&&o| o != l) {
                if self.trail.lit_value(other) != LBool::False {
                    out.push(format!(
                        "reason: clause {cref:?} of var {v} has unfalsified \
                         side literal {other:?}"
                    ));
                } else if self.trail.level_of(other.var()) > self.trail.level_of(l.var()) {
                    out.push(format!(
                        "reason: clause {cref:?} of var {v} (level {}) leans on \
                         {other:?} assigned above it (level {})",
                        self.trail.level_of(l.var()),
                        self.trail.level_of(other.var())
                    ));
                }
            }
        }
    }

    /// Decision-heap membership and structure ([`ActivityIndex::Heap`]).
    /// Eliminated variables are exempt: the simplifier purges them from the
    /// heap and they must never be branched on again.
    fn audit_heap(&self, out: &mut Vec<String>) {
        self.heap.audit(&self.var_activity, out);
        for v in 0..self.num_vars {
            if self.trail.value(Var::new(v as u32)).is_undef()
                && !self.eliminated[v]
                && !self.heap.contains(Var::new(v as u32))
            {
                out.push(format!(
                    "heap: unassigned var {v} has fallen out of the decision heap"
                ));
            }
        }
    }

    /// Variables dissolved by the preprocessor must have vanished from the
    /// search entirely: no live clause, watcher, trail entry, assignment or
    /// heap slot may mention them (their values exist only on the
    /// reconstruction stack).
    fn audit_eliminated(&self, live: &HashSet<ClauseRef>, out: &mut Vec<String>) {
        if !self.eliminated.iter().any(|&e| e) {
            return;
        }
        for v in 0..self.num_vars {
            if !self.eliminated[v] {
                continue;
            }
            if !self.trail.value(Var::new(v as u32)).is_undef() {
                out.push(format!("eliminated: var {v} is assigned"));
            }
            if self.frozen[v] {
                out.push(format!("eliminated: var {v} is also frozen"));
            }
            if self.heap.contains(Var::new(v as u32)) {
                out.push(format!("eliminated: var {v} still in the decision heap"));
            }
            for l in [Lit::pos(Var::new(v as u32)), !Lit::pos(Var::new(v as u32))] {
                let code = l.code();
                if !self.watches.long(code).is_empty() || !self.watches.binary(code).is_empty() {
                    out.push(format!("eliminated: var {v} still has watchers"));
                    break;
                }
            }
        }
        for &l in self.trail.iter() {
            if self.eliminated[l.var().index()] {
                out.push(format!("eliminated: var {:?} on the trail", l.var()));
            }
        }
        for &cref in live {
            if let Some(l) = self
                .db
                .lits(cref)
                .iter()
                .find(|l| self.eliminated[l.var().index()])
            {
                out.push(format!(
                    "eliminated: live clause {cref:?} mentions eliminated var {:?}",
                    l.var()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::watch::Watcher;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solved_solver() -> Solver {
        // Simplification off: these tests corrupt watch/trail state by hand
        // and need the exact clauses (the ternary one in particular) to
        // survive to the arena untouched.
        let mut cfg = SolverConfig::berkmin();
        cfg.simplify = crate::config::SimplifyConfig::off();
        let mut s = Solver::with_config(cfg);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        assert!(s.solve().is_sat());
        s
    }

    #[test]
    fn clean_solver_passes() {
        let s = solved_solver();
        s.audit_invariants()
            .expect("fresh solve leaves clean state");
    }

    #[test]
    fn cleared_watch_list_is_caught() {
        let mut s = solved_solver();
        let victim = (0..s.watches.num_codes())
            .find(|&c| !s.watches.long(c).is_empty())
            .expect("a ternary clause is watched somewhere");
        s.watches.test_clear_long(victim);
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("watched 1 time(s)")),
            "missing-watch violation not reported: {report}"
        );
    }

    #[test]
    fn dangling_watcher_is_caught() {
        let mut s = solved_solver();
        let bogus = ClauseRef(u32::MAX - 8);
        s.watches.push_long(
            0,
            Watcher {
                cref: bogus,
                blocker: lit(1),
            },
        );
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report.violations.iter().any(|v| v.contains("dangling")),
            "dangling watcher not reported: {report}"
        );
    }

    #[test]
    fn corrupted_assignment_is_caught() {
        let mut s = solved_solver();
        // Flip the first trail literal's assignment out from under the trail.
        let v = s.trail.lit_at(0).var();
        s.trail.test_flip_assign(v);
        let report = s.audit_invariants().expect_err("audit must trip");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("not assigned true")),
            "trail/assignment mismatch not reported: {report}"
        );
    }

    #[test]
    fn report_display_lists_every_violation() {
        let report = AuditReport {
            violations: vec!["first".into(), "second".into()],
        };
        let text = report.to_string();
        assert!(text.contains("2 solver invariant violation(s)"));
        assert!(text.contains("- first") && text.contains("- second"));
    }
}
