//! Tiny deterministic PRNG used for the randomized branch-selection
//! heuristics (`Take_rand`, and tie-breaking in `nb_two`, paper §7).
//!
//! The solver embeds its own xorshift64* generator instead of depending on
//! an external crate so that runs are bit-reproducible from the seed alone
//! and the core crate stays dependency-free.

/// A xorshift64* pseudo-random generator.
///
/// Not cryptographically secure — it only drives heuristic tie-breaking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniformly distributed boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns a pseudo-random value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[cfg_attr(not(test), allow(dead_code))] // kept for heuristic experiments
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for heuristic use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl Default for XorShift64 {
    fn default() -> Self {
        XorShift64::new(0xBE2C_51A9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_bool_hits_both_values() {
        let mut r = XorShift64::new(3);
        let vals: Vec<bool> = (0..64).map(|_| r.next_bool()).collect();
        assert!(vals.iter().any(|&b| b));
        assert!(vals.iter().any(|&b| !b));
    }
}
