//! Indexed max-heap over variables keyed by activity.
//!
//! This is the BerkMin561-style optimized "most active free variable"
//! lookup (paper Remark 1 / "strategy 3"); the naive linear scan the paper's
//! experiments used lives in `decide.rs`. The heap is *lazy*: assigned
//! variables stay inside and are skipped at pop time, then re-inserted on
//! backtracking.

use berkmin_cnf::Var;

/// Indexed binary max-heap of variables ordered by an external activity key.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `u32::MAX` if absent.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarHeap {
    pub fn new() -> Self {
        VarHeap::default()
    }

    /// Grows the position table to cover `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if self.pos.len() < num_vars {
            self.pos.resize(num_vars, ABSENT);
        }
    }

    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.pos
            .get(v.index())
            .map(|&p| p != ABSENT)
            .unwrap_or(false)
    }

    #[inline]
    #[cfg_attr(not(test), allow(dead_code))] // exercised by the unit tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `v` (no-op if already present).
    pub fn insert(&mut self, v: Var, key: &[u64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.heap.push(v.raw());
        self.pos[v.index()] = (self.heap.len() - 1) as u32;
        self.sift_up(self.heap.len() - 1, key);
    }

    /// Restores the heap property after `v`'s key increased.
    pub fn bumped(&mut self, v: Var, key: &[u64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p as usize, key);
            }
        }
    }

    /// Pops the variable with the maximum key.
    pub fn pop(&mut self, key: &[u64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, key);
        }
        Some(Var::new(top))
    }

    /// Removes `v` from the heap if present (used when the preprocessor
    /// eliminates a variable: an eliminated variable must never surface as
    /// a branching candidate again).
    pub fn remove(&mut self, v: Var, key: &[u64]) {
        let Some(&p) = self.pos.get(v.index()) else {
            return;
        };
        if p == ABSENT {
            return;
        }
        let p = p as usize;
        let last = self.heap.pop().unwrap();
        self.pos[v.index()] = ABSENT;
        if p < self.heap.len() {
            self.heap[p] = last;
            self.pos[last as usize] = p as u32;
            // The replacement may be larger than the removed entry's parent
            // or smaller than its children — restore both directions.
            self.sift_up(p, key);
            self.sift_down(p, key);
        }
    }

    /// Rebuilds the heap from scratch (used after global activity decay,
    /// which preserves order only approximately under integer division).
    pub fn rebuild(&mut self, key: &[u64]) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i, key);
        }
    }

    /// Structural audit: the `heap`/`pos` tables must be mutual inverses
    /// and the array must satisfy the max-heap property under `key`.
    /// Violations are appended to `out`; an intact heap appends nothing.
    pub fn audit(&self, key: &[u64], out: &mut Vec<String>) {
        for (i, &v) in self.heap.iter().enumerate() {
            let v = v as usize;
            if v >= key.len() {
                out.push(format!("heap: entry {i} names unknown var {v}"));
                continue;
            }
            if self.pos.get(v).copied() != Some(i as u32) {
                out.push(format!("heap: pos[{v}] does not point back at heap[{i}]"));
            }
            if i > 0 {
                let parent = self.heap[(i - 1) / 2] as usize;
                if key[v] > key[parent] {
                    out.push(format!(
                        "heap: property violated at index {i} (var {v} above \
                         its parent var {parent})"
                    ));
                }
            }
        }
        let present = self.pos.iter().filter(|&&p| p != ABSENT).count();
        if present != self.heap.len() {
            out.push(format!(
                "heap: {present} vars claim membership, heap holds {}",
                self.heap.len()
            ));
        }
    }

    fn sift_up(&mut self, mut i: usize, key: &[u64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if key[self.heap[i] as usize] <= key[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, key: &[u64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && key[self.heap[l] as usize] > key[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && key[self.heap[r] as usize] > key[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(h: &mut VarHeap, key: &[u64]) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(v) = h.pop(key) {
            out.push(v.raw());
        }
        out
    }

    #[test]
    fn pops_in_descending_key_order() {
        let key = vec![5u64, 9, 1, 7];
        let mut h = VarHeap::new();
        for i in 0..4 {
            h.insert(Var::new(i), &key);
        }
        assert_eq!(drain(&mut h, &key), vec![1, 3, 0, 2]);
    }

    #[test]
    fn insert_is_idempotent() {
        let key = vec![1u64, 2];
        let mut h = VarHeap::new();
        h.insert(Var::new(0), &key);
        h.insert(Var::new(0), &key);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn bumped_reorders() {
        let mut key = vec![1u64, 2, 3];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var::new(i), &key);
        }
        key[0] = 10;
        h.bumped(Var::new(0), &key);
        assert_eq!(h.pop(&key), Some(Var::new(0)));
    }

    #[test]
    fn rebuild_restores_heap_after_global_decay() {
        let mut key: Vec<u64> = vec![40, 30, 20, 10, 35];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.insert(Var::new(i), &key);
        }
        for k in key.iter_mut() {
            *k /= 4;
        }
        h.rebuild(&key);
        assert_eq!(drain(&mut h, &key), vec![0, 4, 1, 2, 3]);
    }

    #[test]
    fn contains_tracks_membership() {
        let key = vec![1u64];
        let mut h = VarHeap::new();
        let v = Var::new(0);
        assert!(!h.contains(v));
        h.insert(v, &key);
        assert!(h.contains(v));
        h.pop(&key);
        assert!(!h.contains(v));
    }

    #[test]
    fn remove_detaches_any_entry_and_keeps_order() {
        let key = vec![5u64, 9, 1, 7, 3];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.insert(Var::new(i), &key);
        }
        h.remove(Var::new(1), &key); // the max
        h.remove(Var::new(2), &key); // a leaf
        h.remove(Var::new(2), &key); // idempotent
        assert!(!h.contains(Var::new(1)));
        assert_eq!(drain(&mut h, &key), vec![3, 0, 4]);
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut h = VarHeap::new();
        assert_eq!(h.pop(&[]), None);
        assert!(h.is_empty());
    }
}
