//! Parallel portfolio solving with learnt-clause sharing.
//!
//! A [`PortfolioEngine`] races N diversified solver configurations
//! ([`SolverConfig::portfolio_worker`]) on the same formula; the first
//! definitive answer (SAT or UNSAT) wins and the losers are cancelled
//! cooperatively through the solvers' terminate hook (polled every ~1024
//! conflicts and at restart boundaries). Optionally the workers exchange
//! short / low-LBD learnt clauses through a bounded [`share::ClausePool`]:
//! clauses passing the export filter (`len ≤ 2 || lbd ≤ cap`) are published
//! after each conflict and imported by the other workers at their solve
//! entries and restart boundaries.
//!
//! Two execution modes:
//!
//! * **Threaded** (default): one `std::thread` per worker, real wall-clock
//!   racing. Non-deterministic — the winner depends on scheduling.
//! * **Deterministic** ([`PortfolioConfig::deterministic`]): the workers
//!   run round-robin on the calling thread in fixed conflict-budget slices
//!   ([`PortfolioConfig::slice_conflicts`]); the first definitive answer in
//!   worker order wins. Same code paths (including sharing), reproducible
//!   verdicts, winner and statistics — what the test suite and the fuzz
//!   harness drive.
//!
//! # Pre-simplification
//!
//! Per [`PortfolioConfig::simplify`], the engine simplifies the accumulated
//! formula **once, before diversifying** (through a throwaway solver
//! running the ordinary [`crate::preprocess`] passes), so subsumption,
//! strengthening and variable elimination are paid one time instead of
//! once per worker; the workers themselves run with simplification off.
//! Eliminated variables accumulate on an engine-level reconstruction
//! stack — winning SAT models are extended back over them — and the
//! freeze/melt contract matches the single solver's
//! ([`PortfolioEngine::freeze`]).
//!
//! # Proofs
//!
//! With sharing **off**, a proof sink attached via
//! [`PortfolioEngine::set_proof`] receives the winning worker's complete
//! DRAT stream (each worker logs privately into a buffer; only the winner's
//! is replayed), prefixed by the pre-simplifier's additions and deletions —
//! every simplifier clause is RUP at its emission point, and the winner
//! proves from the simplified formula, so the concatenation checks against
//! the original formula. With sharing **on**, imported clauses are not
//! RUP-derivable in the importer's own proof, so attaching a proof sink is
//! a configuration error and `set_proof` panics — the engine never emits an
//! unsound proof silently.

mod share;
mod worker;

pub(crate) use share::ClausePool;

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use berkmin_cnf::{Assignment, LBool, Lit, Var};

use crate::config::{Budget, SimplifyConfig, SolverConfig};
use crate::engine::SatEngine;
use crate::preprocess::Reconstructor;
use crate::proof::ProofSink;
use crate::search::{SolveStatus, StopReason};
use crate::solver::Solver;
use crate::stats::Stats;
use crate::telemetry::{SolveEvent, SolveObserver, SolveVerdict};

use share::PoolSummary;
use worker::{emit_shared, ProofBuffer, ProofOp, SharedObserver, WorkerResult};

/// Maximum clauses the share pool retains; older entries are evicted
/// (sharing is best-effort — dropping a clause never costs soundness).
const POOL_CAPACITY: usize = 4096;

/// Configuration of a [`PortfolioEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of worker solvers to race (≥ 1; diversified per
    /// [`SolverConfig::portfolio_worker`]).
    pub threads: usize,
    /// Learnt-clause sharing: `Some(cap)` exports clauses with
    /// `len ≤ 2 || lbd ≤ cap` to the other workers; `None` disables
    /// sharing (required for proof logging).
    pub share_lbd: Option<u32>,
    /// Run the workers round-robin on the calling thread in fixed
    /// conflict slices instead of spawning threads — reproducible verdict,
    /// winner and statistics (used by tests and the fuzz harness).
    pub deterministic: bool,
    /// Conflict-budget slice per worker per round in deterministic mode.
    pub slice_conflicts: u64,
    /// Per-worker resource budget for each solve call. In deterministic
    /// mode only the conflict component is honored (the schedule slices by
    /// conflicts).
    pub budget: Budget,
    /// Run every worker with paranoid in-search self-audits (expensive;
    /// meant for the fuzz harness and debugging).
    pub paranoid: bool,
    /// Pre-simplification of the shared formula, run once before the
    /// workers diversify (the workers themselves never simplify). Defaults
    /// to [`SimplifyConfig::default`] — subsumption on, elimination off.
    pub simplify: SimplifyConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 4,
            share_lbd: Some(4),
            deterministic: false,
            slice_conflicts: 512,
            budget: Budget::unlimited(),
            paranoid: false,
            simplify: SimplifyConfig::default(),
        }
    }
}

impl PortfolioConfig {
    /// A default-sharing portfolio of `threads` workers.
    pub fn new(threads: usize) -> Self {
        PortfolioConfig {
            threads: threads.max(1),
            ..PortfolioConfig::default()
        }
    }

    /// Sets the sharing policy (builder-style): `Some(cap)` shares clauses
    /// with `len ≤ 2 || lbd ≤ cap`, `None` disables sharing.
    pub fn with_share_lbd(mut self, share_lbd: Option<u32>) -> Self {
        self.share_lbd = share_lbd;
        self
    }

    /// Selects the deterministic fixed-schedule mode (builder-style).
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Sets the per-worker budget (builder-style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables paranoid worker self-audits (builder-style).
    pub fn with_paranoid(mut self, paranoid: bool) -> Self {
        self.paranoid = paranoid;
        self
    }

    /// Sets the pre-simplification configuration (builder-style).
    pub fn with_simplify(mut self, simplify: SimplifyConfig) -> Self {
        self.simplify = simplify;
        self
    }
}

/// How one worker's last run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// Found a model.
    Sat,
    /// Proved unsatisfiability (absolutely or under the assumptions).
    Unsat,
    /// Stopped without an answer: cancelled after another worker won
    /// ([`StopReason::Callback`]), ran out of budget, or — in deterministic
    /// mode — was still mid-schedule when the race ended.
    Stopped(StopReason),
}

/// Per-worker summary of the last [`PortfolioEngine::solve`] call — what
/// the CLI's `c workers` line prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index (also its slot in [`SolverConfig::portfolio_worker`]).
    pub id: usize,
    /// How the worker's run ended.
    pub outcome: WorkerOutcome,
    /// Whether this worker's answer was the one the portfolio returned.
    pub winner: bool,
    /// Conflicts the worker spent this call.
    pub conflicts: u64,
    /// Decisions the worker spent this call.
    pub decisions: u64,
    /// Clauses the worker exported to the share pool.
    pub exported: u64,
    /// Foreign clauses the worker integrated from the share pool.
    pub imported: u64,
    /// Pool entries evicted before this worker's import polls reached
    /// them — shared clauses the worker never got to see (an upper bound:
    /// it includes the worker's own publications and clauses its LBD
    /// filter would have rejected).
    pub missed: u64,
}

/// A parallel portfolio of diversified CDCL solvers behind the ordinary
/// [`SatEngine`] interface.
///
/// Clauses and assumptions accumulate exactly as on a single
/// [`Solver`](crate::Solver);
/// each [`solve`](SatEngine::solve) call builds a fresh set of diversified
/// workers over the accumulated formula and races them (threaded or
/// deterministic per [`PortfolioConfig`]). Learnt state is **not** carried
/// between calls — the portfolio trades the single engine's warm-start for
/// diversification, which is the better deal on the one-shot and
/// few-call workloads it targets.
///
/// # Examples
///
/// ```
/// use berkmin::{PortfolioConfig, PortfolioEngine, SatEngine};
/// use berkmin_cnf::Lit;
///
/// let mut engine = PortfolioEngine::new(
///     PortfolioConfig::new(2).with_deterministic(true),
/// );
/// engine.add_clause(&[Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// engine.add_clause(&[Lit::from_dimacs(-1)]);
/// assert!(engine.solve().is_sat());
/// assert!(engine.reports().iter().any(|r| r.winner));
/// ```
pub struct PortfolioEngine {
    config: PortfolioConfig,
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// `false` once an empty clause was added (trivial unsatisfiability).
    ok: bool,
    pending: Vec<Lit>,
    calls: u64,
    stats: Stats,
    model: Option<Assignment>,
    failed: Vec<Lit>,
    reports: Vec<WorkerReport>,
    winner: Option<usize>,
    proof: Option<Box<dyn ProofSink>>,
    observer: Option<Box<dyn SolveObserver + Send>>,
    /// Variables protected from elimination by the pre-simplifier.
    frozen: Vec<bool>,
    /// Variables the pre-simplifier has eliminated (see
    /// [`PortfolioEngine::freeze`] for the contract this implies).
    eliminated: Vec<bool>,
    /// Engine-level reconstruction stack accumulating the eliminations of
    /// every pre-simplification run; winning SAT models are extended
    /// through it.
    recon: Reconstructor,
    /// Whether pre-simplification already ran (without
    /// [`SimplifyConfig::inprocess`] it runs only once).
    simplified_once: bool,
    /// The pre-simplifier's buffered proof stream, drained into the
    /// attached sink ahead of the winner's ops.
    pending_simplify_ops: Vec<ProofOp>,
}

impl std::fmt::Debug for PortfolioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioEngine")
            .field("config", &self.config)
            .field("num_vars", &self.num_vars)
            .field("clauses", &self.clauses.len())
            .field("eliminated", &self.recon.len())
            .field("winner", &self.winner)
            .field("proof", &self.proof.is_some())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl PortfolioEngine {
    /// Creates an empty portfolio engine.
    pub fn new(config: PortfolioConfig) -> Self {
        PortfolioEngine {
            config: PortfolioConfig {
                threads: config.threads.max(1),
                slice_conflicts: config.slice_conflicts.max(1),
                ..config
            },
            num_vars: 0,
            clauses: Vec::new(),
            ok: true,
            pending: Vec::new(),
            calls: 0,
            stats: Stats::new(),
            model: None,
            failed: Vec::new(),
            reports: Vec::new(),
            winner: None,
            proof: None,
            observer: None,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            recon: Reconstructor::default(),
            simplified_once: false,
            pending_simplify_ops: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Attaches a proof sink that will receive the **winning worker's**
    /// complete DRAT stream after every solve call, prefixed by the
    /// pre-simplifier's additions and deletions (attach before the first
    /// solve so the prefix lands ahead of any worker-derived clause).
    ///
    /// # Panics
    ///
    /// Panics when clause sharing is enabled
    /// ([`PortfolioConfig::share_lbd`] is `Some`): imported clauses are not
    /// RUP-derivable in the importing worker's proof, so no sound DRAT log
    /// exists. Disable sharing to log proofs.
    pub fn set_proof(&mut self, sink: Box<dyn ProofSink>) {
        assert!(
            self.config.share_lbd.is_none(),
            "configuration error: portfolio proof logging requires clause \
             sharing to be off (--share-lbd would make the winner's DRAT \
             stream unsound)"
        );
        self.proof = Some(sink);
    }

    /// Per-worker reports from the last solve call (empty before the first
    /// call).
    pub fn reports(&self) -> &[WorkerReport] {
        &self.reports
    }

    /// Index of the worker whose answer the last solve call returned
    /// (`None` before the first call or when every worker stopped
    /// without an answer).
    pub fn winner(&self) -> Option<usize> {
        self.winner
    }

    /// Replaces the per-worker budget for subsequent solve calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// Protects `var` from elimination by the pre-simplifier — the same
    /// contract as [`Solver::freeze`](crate::Solver::freeze): freeze every
    /// variable that *future* clauses or assumptions may mention before the
    /// first solve call. The current call's assumption variables are frozen
    /// automatically (and permanently).
    pub fn freeze(&mut self, var: Var) {
        self.num_vars = self.num_vars.max(var.index() + 1);
        if self.frozen.len() < self.num_vars {
            self.frozen.resize(self.num_vars, false);
        }
        self.frozen[var.index()] = true;
    }

    /// Lifts a [`PortfolioEngine::freeze`]: the next pre-simplification run
    /// (under [`SimplifyConfig::inprocess`]) may eliminate `var` again.
    pub fn melt(&mut self, var: Var) {
        if let Some(f) = self.frozen.get_mut(var.index()) {
            *f = false;
        }
    }

    /// Whether `var` is currently protected from elimination.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen.get(var.index()).copied().unwrap_or(false)
    }

    /// Whether the pre-simplifier has eliminated `var` (see
    /// [`PortfolioEngine::freeze`] for the contract this implies).
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated.get(var.index()).copied().unwrap_or(false)
    }

    /// The diversified configuration worker `id` will run with.
    fn worker_config(&self, id: usize) -> SolverConfig {
        let budget = if self.config.deterministic {
            // Deterministic mode slices budgets per round itself.
            Budget::unlimited()
        } else {
            self.config.budget
        };
        SolverConfig::portfolio_worker(id)
            .with_budget(budget)
            .with_paranoid(self.config.paranoid)
            // The engine simplifies the shared formula once up front; the
            // workers must not re-run (and re-pay for) the passes.
            .with_simplify(SimplifyConfig::off())
    }

    /// Simplifies the accumulated formula through a throwaway solver before
    /// the workers diversify — the reduction is paid once instead of N
    /// times. Runs at the first solve call only, unless
    /// [`SimplifyConfig::inprocess`] asks for every call.
    ///
    /// The simplifier's proof stream is buffered into
    /// `pending_simplify_ops` (drained into the attached sink by
    /// [`SatEngine::solve`] ahead of the winner's ops); its eliminations are
    /// folded into the engine's `eliminated` flags and reconstruction
    /// stack, and its `Simplify` telemetry is re-emitted through `shared`.
    fn pre_simplify(&mut self, assumptions: &[Lit], shared: &Option<SharedObserver>) {
        let cfg = self.config.simplify;
        if !self.ok || !cfg.enable || (!cfg.subsumption && !cfg.var_elim) {
            return;
        }
        if self.simplified_once && !cfg.inprocess {
            return;
        }
        self.simplified_once = true;
        // This call's assumption variables must survive elimination
        // (permanently — a later call may assume them again).
        for &a in assumptions {
            self.freeze(a.var());
        }

        let mut s = Solver::with_config(
            SolverConfig::berkmin()
                .with_simplify(cfg)
                .with_paranoid(self.config.paranoid),
        );
        s.reserve_vars(self.num_vars);
        for (i, &frozen) in self.frozen.iter().enumerate() {
            if frozen {
                s.freeze(Var::new(i as u32));
            }
        }
        let captured: Rc<RefCell<Vec<SolveEvent>>> = Rc::new(RefCell::new(Vec::new()));
        if shared.is_some() {
            let tap = Rc::clone(&captured);
            s.set_observer(Some(Box::new(move |e: &SolveEvent| {
                tap.borrow_mut().push(e.clone())
            })));
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        let mut buf = ProofBuffer::default();
        if s.is_ok() && s.propagate().is_some() {
            s.ok = false;
        }
        if s.is_ok() {
            s.simplify_formula(&mut buf);
        }

        // Export the simplified formula: the level-0 trail as unit clauses
        // plus the live original clauses (the throwaway never searches, so
        // learnt clauses cannot arise).
        let mut clauses: Vec<Vec<Lit>> = s.trail.iter().map(|&l| vec![l]).collect();
        for cref in s.db.iter_live() {
            if !s.db.is_learnt(cref) {
                clauses.push(s.db.lits(cref).to_vec());
            }
        }
        if !s.is_ok() {
            // Refuted at level 0. The empty clause is RUP here (unit
            // propagation over the simplified formula conflicts), so it
            // both completes the buffered proof and resolves the race
            // trivially and uniformly.
            buf.ops.push(ProofOp::Add(Vec::new()));
            clauses.push(Vec::new());
            self.ok = false;
        }
        self.clauses = clauses;
        self.pending_simplify_ops.extend(buf.ops);

        // Fold the run into the engine: eliminated flags, reconstruction
        // entries (appended — these eliminations are the latest) and the
        // simplification work counters.
        if self.eliminated.len() < self.num_vars {
            self.eliminated.resize(self.num_vars, false);
        }
        for (i, &e) in s.eliminated.iter().enumerate() {
            if e {
                self.eliminated[i] = true;
            }
        }
        self.recon.absorb(&s.reconstructor);
        self.stats.merge(s.stats());
        if let Some(obs) = shared {
            for event in captured.borrow().iter() {
                emit_shared(obs, event);
            }
        }
    }

    /// Threaded race: one scoped thread per worker, first definitive
    /// answer claims the win and raises the shared cancel flag. Worker
    /// events (when observing) arrive in scheduling order, serialized by
    /// the observer mutex.
    fn run_threaded(
        &self,
        assumptions: &[Lit],
        observer: Option<SharedObserver>,
    ) -> (Option<usize>, Vec<WorkerResult>, Option<PoolSummary>) {
        let n = self.config.threads;
        let cancel = Arc::new(AtomicBool::new(false));
        let pool = self
            .config
            .share_lbd
            .map(|_| Arc::new(ClausePool::new(POOL_CAPACITY, n)));
        let record_proof = self.proof.is_some();
        let winner_slot: Mutex<Option<usize>> = Mutex::new(None);
        let clauses = &self.clauses;
        let num_vars = self.num_vars;

        let results: Vec<WorkerResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let config = self.worker_config(id);
                    let cancel = Arc::clone(&cancel);
                    let sharing = self.config.share_lbd.zip(pool.as_ref().map(Arc::clone));
                    let observer = observer.clone();
                    let winner_slot = &winner_slot;
                    s.spawn(move || {
                        let result = worker::run_worker(
                            id,
                            num_vars,
                            clauses,
                            assumptions,
                            config,
                            sharing,
                            Arc::clone(&cancel),
                            observer,
                            record_proof,
                        );
                        if !result.status.is_unknown() {
                            let mut slot = winner_slot.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(id);
                                cancel.store(true, Ordering::SeqCst);
                            }
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let winner = *winner_slot.lock().unwrap();
        let summary = pool.map(|p| p.summary());
        (winner, results, summary)
    }

    /// Deterministic race: round-robin conflict slices on the calling
    /// thread; the first definitive answer in worker order wins. A worker
    /// retires once its cumulative conflicts reach the per-worker budget.
    /// Worker events (when observing) form a reproducible stream:
    /// `WorkerStart` in worker order up front, the tagged solver events in
    /// schedule order, `WorkerDone` in worker order at the end.
    fn run_deterministic(
        &self,
        assumptions: &[Lit],
        observer: Option<SharedObserver>,
    ) -> (Option<usize>, Vec<WorkerResult>, Option<PoolSummary>) {
        let n = self.config.threads;
        let pool = self
            .config
            .share_lbd
            .map(|_| Arc::new(ClausePool::new(POOL_CAPACITY, n)));
        let record_proof = self.proof.is_some();
        let slice = self.config.slice_conflicts;
        let cap = self.config.budget.max_conflicts;

        let mut workers: Vec<_> = (0..n)
            .map(|id| {
                let sharing = self.config.share_lbd.zip(pool.as_ref().map(Arc::clone));
                worker::build_worker(
                    id,
                    self.num_vars,
                    &self.clauses,
                    self.worker_config(id),
                    sharing,
                    None,
                    observer.clone(),
                    record_proof,
                )
            })
            .collect();
        if let Some(shared) = &observer {
            for id in 0..n {
                emit_shared(shared, &SolveEvent::WorkerStart { worker: id });
            }
        }

        let mut last: Vec<Option<SolveStatus>> = (0..n).map(|_| None).collect();
        let mut retired = vec![false; n];
        let mut winner = None;
        'race: loop {
            let mut live = false;
            for (id, (solver, _)) in workers.iter_mut().enumerate() {
                if retired[id] {
                    continue;
                }
                let spent = solver.stats().conflicts;
                let allowance = if cap == u64::MAX {
                    slice
                } else {
                    slice.min(cap.saturating_sub(spent))
                };
                if allowance == 0 {
                    retired[id] = true;
                    last[id] = Some(SolveStatus::Unknown(StopReason::ConflictBudget));
                    continue;
                }
                live = true;
                solver.set_budget(Budget::conflicts(allowance));
                for &a in assumptions {
                    solver.assume(a);
                }
                let status = solver.solve();
                let definitive = !status.is_unknown();
                last[id] = Some(status);
                if definitive {
                    winner = Some(id);
                    break 'race;
                }
            }
            if !live {
                break;
            }
        }

        let results: Vec<WorkerResult> = workers
            .into_iter()
            .zip(last)
            .map(|((solver, tap), status)| {
                // Workers the schedule never reached before the race ended
                // report the cooperative-stop reason, like threaded losers.
                let status = status.unwrap_or(SolveStatus::Unknown(StopReason::Callback));
                let failed = solver.failed_assumptions().to_vec();
                let stats = solver.stats().clone();
                drop(solver);
                let proof_ops = tap
                    .and_then(|t| std::rc::Rc::try_unwrap(t).ok())
                    .map(|cell| cell.into_inner().ops)
                    .unwrap_or_default();
                WorkerResult {
                    status,
                    failed,
                    stats,
                    proof_ops,
                }
            })
            .collect();
        if let Some(shared) = &observer {
            for (id, result) in results.iter().enumerate() {
                emit_shared(
                    shared,
                    &SolveEvent::WorkerDone {
                        worker: id,
                        verdict: SolveVerdict::from(&result.status),
                    },
                );
            }
        }
        let summary = pool.map(|p| p.summary());
        (winner, results, summary)
    }
}

impl SatEngine for PortfolioEngine {
    fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        for l in lits {
            assert!(
                !self.is_eliminated(l.var()),
                "add_clause mentions eliminated variable {:?}: freeze it \
                 before the first solve, or disable variable elimination \
                 (SimplifyConfig::var_elim)",
                l.var()
            );
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        if lits.is_empty() {
            self.ok = false;
        }
        self.clauses.push(lits.to_vec());
        self.ok
    }

    fn assume(&mut self, lit: Lit) {
        assert!(
            !self.is_eliminated(lit.var()),
            "assume mentions eliminated variable {:?}: freeze it before \
             solving, or disable variable elimination \
             (SimplifyConfig::var_elim)",
            lit.var()
        );
        self.num_vars = self.num_vars.max(lit.var().index() + 1);
        self.pending.push(lit);
    }

    fn solve(&mut self) -> SolveStatus {
        let assumptions = std::mem::take(&mut self.pending);
        self.calls += 1;
        self.reports.clear();
        self.winner = None;
        self.model = None;
        self.failed.clear();

        // The observer moves behind an `Arc<Mutex<..>>` for the race (the
        // workers' `Forward` adapters and the portfolio itself share it)
        // and is reclaimed afterwards for the next call.
        let shared: Option<SharedObserver> = self.observer.take().map(|b| Arc::new(Mutex::new(b)));
        if let Some(obs) = &shared {
            emit_shared(
                obs,
                &SolveEvent::SolveStart {
                    call: self.calls,
                    num_vars: self.num_vars,
                    num_clauses: self.clauses.len(),
                    assumptions: assumptions.len(),
                },
            );
        }
        let base = (
            self.stats.conflicts,
            self.stats.decisions,
            self.stats.propagations,
            self.stats.restarts,
        );

        // Simplify the shared formula once before diversifying, and flush
        // the simplifier's proof prefix before any worker-derived clause.
        self.pre_simplify(&assumptions, &shared);
        if let Some(sink) = &mut self.proof {
            for op in self.pending_simplify_ops.drain(..) {
                match &op {
                    ProofOp::Add(lits) => sink.add_clause(lits),
                    ProofOp::Delete(lits) => sink.delete_clause(lits),
                }
            }
        }

        let (winner, results, pool_summary) = if self.config.deterministic {
            self.run_deterministic(&assumptions, shared.clone())
        } else {
            self.run_threaded(&assumptions, shared.clone())
        };
        self.winner = winner;

        for (id, result) in results.iter().enumerate() {
            let outcome = match &result.status {
                SolveStatus::Sat(_) => WorkerOutcome::Sat,
                SolveStatus::Unsat => WorkerOutcome::Unsat,
                SolveStatus::Unknown(reason) => WorkerOutcome::Stopped(*reason),
            };
            self.reports.push(WorkerReport {
                id,
                outcome,
                winner: winner == Some(id),
                conflicts: result.stats.conflicts,
                decisions: result.stats.decisions,
                exported: result.stats.clauses_exported,
                imported: result.stats.clauses_imported,
                missed: pool_summary
                    .as_ref()
                    .and_then(|s| s.missed.get(id).copied())
                    .unwrap_or(0),
            });
            self.stats.merge(&result.stats);
        }
        // `Stats::merge` leaves the formula-level counters alone; set the
        // portfolio-level view explicitly (the formula is shared, not
        // duplicated N times, and one portfolio call is one solve call).
        self.stats.initial_clauses = self.clauses.len() as u64;
        self.stats.solve_calls = self.calls;
        if let Some(summary) = &pool_summary {
            self.stats.pool_evicted += summary.evicted;
            self.stats.pool_missed += summary.missed.iter().sum::<u64>();
        }

        let status = match winner {
            None => {
                // Every worker stopped without answering: surface the first
                // worker's stop reason (budget exhaustion in practice).
                results
                    .first()
                    .map(|r| r.status.clone())
                    .unwrap_or(SolveStatus::Unknown(StopReason::ConflictBudget))
            }
            Some(w) => {
                if let Some(sink) = &mut self.proof {
                    for op in &results[w].proof_ops {
                        match op {
                            ProofOp::Add(lits) => sink.add_clause(lits),
                            ProofOp::Delete(lits) => sink.delete_clause(lits),
                        }
                    }
                }
                match &results[w].status {
                    SolveStatus::Sat(model) => {
                        // Extend the winner's model back over every
                        // variable the pre-simplifier eliminated (the
                        // worker valued them arbitrarily — the
                        // reconstruction overwrites with the value that
                        // satisfies the dissolved clauses).
                        let mut model = model.clone();
                        if self.recon.len() > 0 {
                            self.recon.extend_model(&mut model);
                        }
                        self.model = Some(model.clone());
                        SolveStatus::Sat(model)
                    }
                    SolveStatus::Unsat => {
                        self.failed = results[w].failed.clone();
                        SolveStatus::Unsat
                    }
                    SolveStatus::Unknown(_) => unreachable!("winner is definitive"),
                }
            }
        };

        if let Some(obs) = &shared {
            if let Some(summary) = &pool_summary {
                if summary.evicted > 0 {
                    emit_shared(
                        obs,
                        &SolveEvent::PoolEvicted {
                            evicted: summary.evicted,
                        },
                    );
                }
            }
            emit_shared(
                obs,
                &SolveEvent::SolveDone {
                    verdict: SolveVerdict::from(&status),
                    conflicts: self.stats.conflicts - base.0,
                    decisions: self.stats.decisions - base.1,
                    propagations: self.stats.propagations - base.2,
                    restarts: self.stats.restarts - base.3,
                },
            );
        }
        if let Some(arc) = shared {
            // Threads are joined and deterministic workers dropped, so this
            // is the last clone; reclaim the observer for the next call.
            if let Ok(mutex) = Arc::try_unwrap(arc) {
                self.observer = Some(mutex.into_inner().unwrap());
            }
        }
        status
    }

    fn value(&self, var: Var) -> LBool {
        self.model
            .as_ref()
            .map(|m| m.value(var))
            .unwrap_or(LBool::Undef)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver + Send>>) {
        self.observer = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    fn deterministic(threads: usize, share: Option<u32>) -> PortfolioEngine {
        PortfolioEngine::new(
            PortfolioConfig::new(threads)
                .with_deterministic(true)
                .with_share_lbd(share),
        )
    }

    /// hole(n) clauses: n+1 pigeons, n holes (UNSAT).
    fn pigeonhole(n: usize) -> Vec<Vec<Lit>> {
        let lit = |p: usize, h: usize| Lit::from_dimacs((p * n + h + 1) as i32);
        let mut clauses = Vec::new();
        for p in 0..=n {
            clauses.push((0..n).map(|h| lit(p, h)).collect());
        }
        for h in 0..n {
            for p1 in 0..=n {
                for p2 in (p1 + 1)..=n {
                    clauses.push(vec![!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        clauses
    }

    #[test]
    fn trivial_sat_and_unsat_through_the_trait() {
        let mut engine = deterministic(2, Some(4));
        assert!(engine.add_clause(&[lit(1), lit(2)]));
        assert!(engine.add_clause(&[lit(-1)]));
        assert!(engine.solve().is_sat());
        assert_eq!(engine.value(Var::new(0)), LBool::False);
        assert_eq!(engine.value(Var::new(1)), LBool::True);
        assert!(engine.winner().is_some());

        assert!(engine.add_clause(&[lit(2)]));
        assert!(engine.add_clause(&[lit(-2)]));
        assert!(engine.solve().is_unsat());
        assert!(engine.failed_assumptions().is_empty());
    }

    #[test]
    fn empty_clause_makes_add_clause_report_false() {
        let mut engine = deterministic(2, None);
        assert!(!engine.add_clause(&[]));
        assert!(engine.solve().is_unsat());
    }

    #[test]
    fn assumptions_yield_cores_like_a_single_solver() {
        let mut engine = deterministic(2, Some(4));
        engine.add_clause(&[lit(-1), lit(2)]);
        engine.add_clause(&[lit(-2), lit(3)]);
        engine.assume(lit(1));
        engine.assume(lit(-3));
        assert!(engine.solve().is_unsat());
        let core = engine.failed_assumptions();
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| [lit(1), lit(-3)].contains(l)));
        // Assumptions were consumed: a plain re-solve is SAT.
        assert!(engine.solve().is_sat());
    }

    #[test]
    fn unsat_race_has_one_winner_and_stopped_losers() {
        let mut engine = deterministic(3, Some(4));
        for c in pigeonhole(5) {
            engine.add_clause(&c);
        }
        assert!(engine.solve().is_unsat());
        let winners: Vec<_> = engine.reports().iter().filter(|r| r.winner).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].outcome, WorkerOutcome::Unsat);
        for r in engine.reports() {
            if !r.winner {
                assert!(
                    matches!(r.outcome, WorkerOutcome::Stopped(_)),
                    "loser {} must have stopped, got {:?}",
                    r.id,
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn sharing_moves_clauses_between_workers() {
        // Small slices force many solve-entry import polls; hole(6) makes
        // every worker learn plenty of short clauses.
        let mut engine = PortfolioEngine::new(
            PortfolioConfig::new(2)
                .with_deterministic(true)
                .with_share_lbd(Some(8)),
        );
        for c in pigeonhole(6) {
            engine.add_clause(&c);
        }
        assert!(engine.solve().is_unsat());
        let exported: u64 = engine.reports().iter().map(|r| r.exported).sum();
        let imported: u64 = engine.reports().iter().map(|r| r.imported).sum();
        assert!(exported > 0, "workers must export on hole(6)");
        assert!(imported > 0, "workers must import at slice boundaries");
        assert_eq!(engine.stats().clauses_imported, imported);
    }

    #[test]
    fn budgeted_portfolio_reports_unknown() {
        let mut engine = PortfolioEngine::new(
            PortfolioConfig::new(2)
                .with_deterministic(true)
                .with_share_lbd(None)
                .with_budget(Budget::conflicts(3)),
        );
        for c in pigeonhole(7) {
            engine.add_clause(&c);
        }
        let status = engine.solve();
        assert!(status.is_unknown(), "3 conflicts cannot settle hole(7)");
        assert!(engine.winner().is_none());
        assert!(engine
            .reports()
            .iter()
            .all(|r| matches!(r.outcome, WorkerOutcome::Stopped(_))));
    }

    #[test]
    fn threaded_mode_agrees_on_small_instances() {
        let mut engine = PortfolioEngine::new(PortfolioConfig::new(2).with_share_lbd(Some(4)));
        for c in pigeonhole(4) {
            engine.add_clause(&c);
        }
        assert!(engine.solve().is_unsat());
        assert_eq!(engine.reports().iter().filter(|r| r.winner).count(), 1);

        let mut sat = PortfolioEngine::new(PortfolioConfig::new(2));
        sat.add_clause(&[lit(1), lit(2)]);
        sat.add_clause(&[lit(-2)]);
        let status = sat.solve();
        let model = status.model().expect("satisfiable");
        assert!(model.satisfies(lit(1)));
    }

    #[test]
    fn winner_proof_replays_into_the_sink() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Counting {
            adds: usize,
            empty: bool,
        }
        impl ProofSink for Counting {
            fn add_clause(&mut self, lits: &[Lit]) {
                self.adds += 1;
                if lits.is_empty() {
                    self.empty = true;
                }
            }
            fn delete_clause(&mut self, _lits: &[Lit]) {}
        }

        let sink = Rc::new(RefCell::new(Counting::default()));
        let mut engine = deterministic(2, None);
        engine.set_proof(Box::new(Rc::clone(&sink)));
        for c in pigeonhole(4) {
            engine.add_clause(&c);
        }
        assert!(engine.solve().is_unsat());
        assert!(sink.borrow().empty, "winner's refutation ends in []");
        assert!(sink.borrow().adds > 1);
    }

    #[test]
    #[should_panic(expected = "configuration error")]
    fn proof_with_sharing_is_rejected() {
        let mut engine = deterministic(2, Some(4));
        engine.set_proof(Box::new(crate::proof::NoProof));
    }

    /// Regression for the `Stats::merge` formula-counter bug: merging the
    /// workers' stats used to sum their per-worker copies of
    /// `initial_clauses` and `solve_calls` (N× the truth), relying on the
    /// aggregator to overwrite afterwards. The counters are now excluded
    /// from the merge and pinned to the portfolio-level view.
    #[test]
    fn portfolio_stats_keep_formula_level_counters() {
        let mut engine = deterministic(3, Some(4));
        for c in pigeonhole(4) {
            engine.add_clause(&c);
        }
        let num_clauses = engine.clauses.len() as u64;
        assert!(engine.solve().is_unsat());
        assert_eq!(engine.stats().initial_clauses, num_clauses);
        assert_eq!(engine.stats().solve_calls, 1);
        assert!(engine.solve().is_unsat());
        assert_eq!(engine.stats().initial_clauses, num_clauses);
        assert_eq!(engine.stats().solve_calls, 2);
    }

    /// Deterministic, share-free engine with full pre-simplification
    /// (subsumption + elimination).
    fn simplifying(threads: usize) -> PortfolioEngine {
        PortfolioEngine::new(
            PortfolioConfig::new(threads)
                .with_deterministic(true)
                .with_share_lbd(None)
                .with_simplify(SimplifyConfig::full()),
        )
    }

    #[test]
    fn pre_simplification_shrinks_the_shared_formula_once() {
        let mut engine = simplifying(2);
        engine.add_clause(&[lit(1), lit(2)]);
        engine.add_clause(&[lit(1), lit(2), lit(3)]); // subsumed
        engine.add_clause(&[lit(-1), lit(-2), lit(4)]);
        assert!(engine.solve().is_sat());
        assert_eq!(engine.stats().clauses_subsumed, 1);
        assert!(
            engine.stats().initial_clauses < 3,
            "the workers must race on the reduced formula"
        );
        // Without inprocessing the second call reuses the reduction.
        assert!(engine.solve().is_sat());
        assert_eq!(engine.stats().clauses_subsumed, 1);
    }

    #[test]
    fn models_reconstruct_over_engine_eliminated_variables() {
        let mut engine = simplifying(2);
        engine.add_clause(&[lit(1), lit(2)]);
        engine.add_clause(&[lit(-2), lit(3)]);
        engine.add_clause(&[lit(-1), lit(4)]);
        let status = engine.solve();
        let model = status.model().expect("satisfiable");
        assert!(engine.stats().vars_eliminated >= 1);
        assert!(model.satisfies(lit(1)) || model.satisfies(lit(2)));
        assert!(model.satisfies(lit(-2)) || model.satisfies(lit(3)));
        assert!(model.satisfies(lit(-1)) || model.satisfies(lit(4)));
        // `value` answers through the reconstructed model too.
        for v in 0..4 {
            assert_ne!(engine.value(Var::new(v)), LBool::Undef);
        }
    }

    #[test]
    fn frozen_variables_survive_engine_elimination() {
        let mut engine = simplifying(2);
        engine.freeze(Var::new(1));
        assert!(engine.is_frozen(Var::new(1)));
        engine.add_clause(&[lit(1), lit(2)]);
        engine.add_clause(&[lit(-2), lit(3)]);
        assert!(engine.solve().is_sat());
        assert!(!engine.is_eliminated(Var::new(1)));
        // The frozen variable can still be assumed afterwards.
        engine.assume(lit(-2));
        assert!(engine.solve().is_sat());
    }

    #[test]
    #[should_panic(expected = "eliminated variable")]
    fn eliminated_variables_reject_new_clauses() {
        let mut engine = simplifying(2);
        engine.add_clause(&[lit(1), lit(2)]);
        engine.add_clause(&[lit(-2), lit(3)]);
        engine.add_clause(&[lit(-1), lit(4)]);
        assert!(engine.solve().is_sat());
        let v = (0..4)
            .map(Var::new)
            .find(|&v| engine.is_eliminated(v))
            .expect("full simplification eliminates at least one variable");
        engine.add_clause(&[Lit::pos(v)]);
    }

    #[test]
    fn simplifier_proof_precedes_the_winner_refutation() {
        #[derive(Default)]
        struct Recording {
            adds: usize,
            dels: usize,
            empty: bool,
        }
        impl ProofSink for Recording {
            fn add_clause(&mut self, lits: &[Lit]) {
                self.adds += 1;
                if lits.is_empty() {
                    self.empty = true;
                }
            }
            fn delete_clause(&mut self, _lits: &[Lit]) {
                self.dels += 1;
            }
        }

        let sink = std::rc::Rc::new(RefCell::new(Recording::default()));
        let mut engine = simplifying(2);
        engine.set_proof(Box::new(std::rc::Rc::clone(&sink)));
        // The ternary clause is subsumed (a deletion in the prefix) and the
        // remainder collapses by strengthening into a contradiction.
        engine.add_clause(&[lit(1), lit(2)]);
        engine.add_clause(&[lit(1), lit(2), lit(3)]);
        engine.add_clause(&[lit(-1), lit(2)]);
        engine.add_clause(&[lit(-2), lit(3)]);
        engine.add_clause(&[lit(-3), lit(-2)]);
        assert!(engine.solve().is_unsat());
        assert!(sink.borrow().empty, "the refutation ends in []");
        assert!(sink.borrow().dels > 0, "simplifier deletions are logged");
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let run = || {
            let mut engine = deterministic(3, Some(4));
            for c in pigeonhole(6) {
                engine.add_clause(&c);
            }
            let status = engine.solve();
            (
                status.is_unsat(),
                engine.winner(),
                engine.stats().conflicts,
                engine.reports().to_vec(),
            )
        };
        assert_eq!(run(), run());
    }
}
