//! The bounded learnt-clause exchange between portfolio workers.
//!
//! Workers publish clauses that pass the export filter (length ≤ 2 or LBD
//! within the cap) and poll for foreign clauses at their restart
//! boundaries. The pool is a bounded FIFO guarded by one mutex: publishing
//! appends (evicting the oldest entries past capacity), polling walks the
//! suffix the consumer has not seen yet, identified by a per-consumer
//! sequence cursor the pool keeps itself. Nothing here blocks for long —
//! both operations touch the queue for O(new entries) under the lock.
//!
//! Eviction is **accounted, not silent**: the pool counts every evicted
//! entry, and whenever a consumer's cursor lags behind the oldest retained
//! sequence number the gap is charged to that consumer's *missed* counter —
//! the trace of shared clauses a slow consumer lost to capacity pressure.
//! The totals surface in [`PoolSummary`], the portfolio's `Stats`
//! (`pool_evicted` / `pool_missed`), the CLI's `c workers` line, and the
//! [`PoolEvicted`](crate::telemetry::SolveEvent::PoolEvicted) event.

use std::collections::VecDeque;
use std::sync::Mutex;

use berkmin_cnf::Lit;

/// One published clause with its provenance and quality.
#[derive(Debug, Clone)]
struct Entry {
    /// Monotone publication number — consumers filter by this.
    seq: u64,
    /// Worker index that learnt the clause (consumers skip their own).
    source: usize,
    /// The clause's LBD at deduction time (importers may refine the cap).
    lbd: u32,
    lits: Vec<Lit>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Next sequence number to assign.
    next_seq: u64,
    entries: VecDeque<Entry>,
    /// Entries dropped past capacity since the pool was created.
    evicted: u64,
    /// Per-consumer resume point: the sequence number each consumer's next
    /// [`ClausePool::collect`] starts from.
    cursors: Vec<u64>,
    /// Per-consumer count of entries evicted before the consumer's cursor
    /// reached them (an upper bound on lost import candidates: it includes
    /// the consumer's own publications and clauses its LBD filter would
    /// have rejected — once evicted, their fate is unknowable).
    missed: Vec<u64>,
}

/// End-of-race accounting of a [`ClausePool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PoolSummary {
    /// Total clauses ever published (evicted ones included).
    pub(crate) published: u64,
    /// Entries evicted past capacity.
    pub(crate) evicted: u64,
    /// Per-consumer missed-entry counts (see [`PoolInner::missed`]).
    pub(crate) missed: Vec<u64>,
}

/// Bounded multi-producer multi-consumer clause exchange.
///
/// Capacity-bounded: when full, the *oldest* clauses are dropped — sharing
/// is best-effort (losing a shared clause costs performance, never
/// soundness, since every worker can re-derive it). Every drop is counted,
/// and consumers that were too slow to see a dropped entry are charged a
/// *miss*, so capacity pressure is visible instead of silent.
#[derive(Debug)]
pub(crate) struct ClausePool {
    inner: Mutex<PoolInner>,
    capacity: usize,
}

impl ClausePool {
    /// A pool retaining at most `capacity` clauses, serving `consumers`
    /// workers (indexed `0..consumers`).
    pub(crate) fn new(capacity: usize, consumers: usize) -> Self {
        ClausePool {
            inner: Mutex::new(PoolInner {
                cursors: vec![0; consumers],
                missed: vec![0; consumers],
                ..PoolInner::default()
            }),
            capacity: capacity.max(1),
        }
    }

    /// Publishes a clause learnt by worker `source`.
    pub(crate) fn publish(&self, source: usize, lits: &[Lit], lbd: u32) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push_back(Entry {
            seq,
            source,
            lbd,
            lits: lits.to_vec(),
        });
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
            inner.evicted += 1;
        }
    }

    /// Appends to `out` every clause published since `consumer`'s last
    /// poll that the consumer has not produced itself and whose LBD is ≤
    /// `max_lbd` (length-≤-2 clauses always pass — they are the cheapest,
    /// most reusable lemmas). Advances the consumer's cursor past
    /// everything currently published, seen or filtered alike; entries
    /// that were evicted before the cursor reached them are charged to the
    /// consumer's missed counter.
    pub(crate) fn collect(&self, consumer: usize, max_lbd: u32, out: &mut Vec<Vec<Lit>>) {
        let mut inner = self.inner.lock().unwrap();
        let cursor = inner.cursors[consumer];
        // Entries with seq in [cursor, oldest_retained) are gone for good:
        // this consumer never saw them.
        let oldest_retained = inner
            .entries
            .front()
            .map(|e| e.seq)
            .unwrap_or(inner.next_seq);
        if oldest_retained > cursor {
            inner.missed[consumer] += oldest_retained - cursor;
        }
        for e in &inner.entries {
            if e.seq < cursor || e.source == consumer {
                continue;
            }
            if e.lits.len() <= 2 || e.lbd <= max_lbd {
                out.push(e.lits.clone());
            }
        }
        inner.cursors[consumer] = inner.next_seq;
    }

    /// Snapshot of the pool's accounting: publications, evictions and
    /// per-consumer misses. A final implicit poll is **not** performed —
    /// the summary charges only entries consumers actually failed to see
    /// at their real polls.
    pub(crate) fn summary(&self) -> PoolSummary {
        let inner = self.inner.lock().unwrap();
        PoolSummary {
            published: inner.next_seq,
            evicted: inner.evicted,
            missed: inner.missed.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn consumers_skip_own_clauses_and_track_cursors() {
        let pool = ClausePool::new(16, 2);
        pool.publish(0, &[lit(1), lit(2)], 2);
        pool.publish(1, &[lit(-3)], 1);

        let mut got = Vec::new();
        pool.collect(0, 8, &mut got);
        assert_eq!(got, vec![vec![lit(-3)]], "worker 0 sees only worker 1's");

        // Cursor advanced: a second poll with nothing new is empty.
        got.clear();
        pool.collect(0, 8, &mut got);
        assert!(got.is_empty());

        pool.publish(1, &[lit(4), lit(5), lit(6)], 3);
        got.clear();
        pool.collect(0, 8, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(pool.summary().published, 3);
    }

    #[test]
    fn importer_lbd_filter_spares_short_clauses() {
        let pool = ClausePool::new(16, 2);
        pool.publish(0, &[lit(1), lit(2), lit(3)], 9); // long, high glue
        pool.publish(0, &[lit(4), lit(5)], 9); // binary, high glue
        let mut got = Vec::new();
        pool.collect(1, 2, &mut got);
        assert_eq!(got, vec![vec![lit(4), lit(5)]]);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_it() {
        let pool = ClausePool::new(2, 2);
        pool.publish(0, &[lit(1)], 1);
        pool.publish(0, &[lit(2)], 1);
        pool.publish(0, &[lit(3)], 1);
        let mut got = Vec::new();
        pool.collect(1, 8, &mut got);
        assert_eq!(got, vec![vec![lit(2)], vec![lit(3)]]);
        let summary = pool.summary();
        assert_eq!(summary.published, 3);
        assert_eq!(summary.evicted, 1);
        // Consumer 1's first poll arrived after the eviction: it missed
        // entry 0 and is told so.
        assert_eq!(summary.missed, vec![0, 1]);
    }

    #[test]
    fn slow_consumer_is_charged_for_evicted_entries() {
        let pool = ClausePool::new(2, 3);
        // The fast consumer (1) polls while everything is still retained.
        pool.publish(0, &[lit(1)], 1);
        pool.publish(0, &[lit(2)], 1);
        let mut got = Vec::new();
        pool.collect(1, 8, &mut got);
        assert_eq!(got.len(), 2);

        // Four more publications evict seqs 0..4 — past both cursors.
        for n in 3..7 {
            pool.publish(0, &[lit(n)], 1);
        }
        // The slow consumer (2) has never polled: its cursor (0) lags the
        // oldest retained seq (4) by 4 missed entries.
        got.clear();
        pool.collect(2, 8, &mut got);
        assert_eq!(got, vec![vec![lit(5)], vec![lit(6)]]);
        // The fast consumer's cursor (2) lags by 2.
        got.clear();
        pool.collect(1, 8, &mut got);
        assert_eq!(got, vec![vec![lit(5)], vec![lit(6)]]);

        let summary = pool.summary();
        assert_eq!(summary.evicted, 4);
        assert_eq!(summary.missed, vec![0, 2, 4]);

        // Misses accumulate only on real gaps: an immediate re-poll adds
        // nothing.
        got.clear();
        pool.collect(2, 8, &mut got);
        assert!(got.is_empty());
        assert_eq!(pool.summary().missed, vec![0, 2, 4]);
    }
}
