//! The bounded learnt-clause exchange between portfolio workers.
//!
//! Workers publish clauses that pass the export filter (length ≤ 2 or LBD
//! within the cap) and poll for foreign clauses at their restart
//! boundaries. The pool is a bounded FIFO guarded by one mutex: publishing
//! appends (evicting the oldest entries past capacity), polling walks the
//! suffix the consumer has not seen yet, identified by a per-consumer
//! sequence cursor. Nothing here blocks for long — both operations touch
//! the queue for O(new entries) under the lock.

use std::collections::VecDeque;
use std::sync::Mutex;

use berkmin_cnf::Lit;

/// One published clause with its provenance and quality.
#[derive(Debug, Clone)]
struct Entry {
    /// Monotone publication number — consumers filter by this.
    seq: u64,
    /// Worker index that learnt the clause (consumers skip their own).
    source: usize,
    /// The clause's LBD at deduction time (importers may refine the cap).
    lbd: u32,
    lits: Vec<Lit>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Next sequence number to assign.
    next_seq: u64,
    entries: VecDeque<Entry>,
}

/// Bounded multi-producer multi-consumer clause exchange.
///
/// Capacity-bounded: when full, the *oldest* clauses are dropped — sharing
/// is best-effort (losing a shared clause costs performance, never
/// soundness, since every worker can re-derive it).
#[derive(Debug)]
pub(crate) struct ClausePool {
    inner: Mutex<PoolInner>,
    capacity: usize,
}

impl ClausePool {
    /// A pool retaining at most `capacity` clauses.
    pub(crate) fn new(capacity: usize) -> Self {
        ClausePool {
            inner: Mutex::new(PoolInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Publishes a clause learnt by worker `source`.
    pub(crate) fn publish(&self, source: usize, lits: &[Lit], lbd: u32) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push_back(Entry {
            seq,
            source,
            lbd,
            lits: lits.to_vec(),
        });
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
    }

    /// Appends to `out` every clause published since `cursor` that worker
    /// `consumer` has not produced itself and whose LBD is ≤ `max_lbd`
    /// (length-≤-2 clauses always pass — they are the cheapest, most
    /// reusable lemmas). Advances `cursor` past everything currently
    /// published, seen or filtered alike.
    pub(crate) fn collect(
        &self,
        consumer: usize,
        max_lbd: u32,
        cursor: &mut u64,
        out: &mut Vec<Vec<Lit>>,
    ) {
        let inner = self.inner.lock().unwrap();
        for e in &inner.entries {
            if e.seq < *cursor || e.source == consumer {
                continue;
            }
            if e.lits.len() <= 2 || e.lbd <= max_lbd {
                out.push(e.lits.clone());
            }
        }
        *cursor = inner.next_seq;
    }

    /// Total clauses ever published (for reporting; includes evicted ones).
    #[cfg(test)]
    pub(crate) fn published(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn consumers_skip_own_clauses_and_track_cursors() {
        let pool = ClausePool::new(16);
        pool.publish(0, &[lit(1), lit(2)], 2);
        pool.publish(1, &[lit(-3)], 1);

        let mut cursor = 0;
        let mut got = Vec::new();
        pool.collect(0, 8, &mut cursor, &mut got);
        assert_eq!(got, vec![vec![lit(-3)]], "worker 0 sees only worker 1's");

        // Cursor advanced: a second poll with nothing new is empty.
        got.clear();
        pool.collect(0, 8, &mut cursor, &mut got);
        assert!(got.is_empty());

        pool.publish(1, &[lit(4), lit(5), lit(6)], 3);
        got.clear();
        pool.collect(0, 8, &mut cursor, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(pool.published(), 3);
    }

    #[test]
    fn importer_lbd_filter_spares_short_clauses() {
        let pool = ClausePool::new(16);
        pool.publish(0, &[lit(1), lit(2), lit(3)], 9); // long, high glue
        pool.publish(0, &[lit(4), lit(5)], 9); // binary, high glue
        let mut cursor = 0;
        let mut got = Vec::new();
        pool.collect(1, 2, &mut cursor, &mut got);
        assert_eq!(got, vec![vec![lit(4), lit(5)]]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let pool = ClausePool::new(2);
        pool.publish(0, &[lit(1)], 1);
        pool.publish(0, &[lit(2)], 1);
        pool.publish(0, &[lit(3)], 1);
        let mut cursor = 0;
        let mut got = Vec::new();
        pool.collect(1, 8, &mut cursor, &mut got);
        assert_eq!(got, vec![vec![lit(2)], vec![lit(3)]]);
        // The cursor still covers the evicted clause's sequence number.
        assert_eq!(cursor, 3);
    }
}
