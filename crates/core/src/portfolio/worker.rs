//! Construction and execution of one portfolio worker.
//!
//! A worker is an ordinary [`Solver`] assembled from the portfolio's
//! accumulated formula with a diversified configuration
//! ([`SolverConfig::portfolio_worker`]), a cancellation flag wired through
//! the `on_terminate` hook, and — when sharing is on — the export/import
//! hooks connected to the shared [`ClausePool`]. Workers are built *inside*
//! their threads ([`Solver`] is deliberately `!Send`: it carries boxed
//! callbacks); only plain data crosses thread boundaries.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use berkmin_cnf::Lit;

use crate::builder::SolverBuilder;
use crate::config::SolverConfig;
use crate::proof::ProofSink;
use crate::search::SolveStatus;
use crate::solver::Solver;
use crate::stats::Stats;
use crate::telemetry::{SolveEvent, SolveObserver, SolveVerdict};

use super::share::ClausePool;

/// The portfolio's observer as shared by its workers: one mutex serializes
/// events from all threads, so the observer sees a totally ordered stream.
pub(crate) type SharedObserver = Arc<Mutex<Box<dyn SolveObserver + Send>>>;

/// Per-worker adapter installed as the worker solver's observer: wraps each
/// event in [`SolveEvent::Worker`] with the worker's id and forwards it to
/// the portfolio's shared observer under the mutex.
struct Forward {
    worker: usize,
    shared: SharedObserver,
}

impl SolveObserver for Forward {
    fn on_event(&mut self, event: &SolveEvent) {
        let tagged = SolveEvent::Worker {
            worker: self.worker,
            event: Box::new(event.clone()),
        };
        self.shared.lock().unwrap().on_event(&tagged);
    }
}

/// Emits a portfolio-level (untagged) event into the shared observer.
pub(crate) fn emit_shared(observer: &SharedObserver, event: &SolveEvent) {
    observer.lock().unwrap().on_event(event);
}

/// One buffered proof operation — the `Send`-able form of a worker's DRAT
/// stream, replayed into the portfolio's real sink if that worker wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProofOp {
    /// A deduced clause (empty on refutation).
    Add(Vec<Lit>),
    /// A database deletion.
    Delete(Vec<Lit>),
}

/// A [`ProofSink`] that records operations instead of writing them — each
/// worker logs privately; only the winner's log is published.
#[derive(Debug, Default)]
pub(crate) struct ProofBuffer {
    pub(crate) ops: Vec<ProofOp>,
}

impl ProofSink for ProofBuffer {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.ops.push(ProofOp::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.ops.push(ProofOp::Delete(lits.to_vec()));
    }
}

/// Everything a finished worker hands back across the thread boundary.
#[derive(Debug)]
pub(crate) struct WorkerResult {
    pub(crate) status: SolveStatus,
    pub(crate) failed: Vec<Lit>,
    pub(crate) stats: Stats,
    pub(crate) proof_ops: Vec<ProofOp>,
}

/// Assembles a worker solver over the shared formula.
///
/// `config` is the fully diversified per-worker configuration; `sharing`
/// carries the LBD export cap and the pool; `cancel` (when given) is polled
/// through the solver's `on_terminate` hook, so a raised flag stops the
/// worker within one terminate-poll interval (~1024 conflicts);
/// `record_proof` attaches a private [`ProofBuffer`] whose handle is
/// returned alongside; `observer` (when given) receives the worker's
/// telemetry events tagged with its id.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_worker(
    id: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    config: SolverConfig,
    sharing: Option<(u32, Arc<ClausePool>)>,
    cancel: Option<Arc<AtomicBool>>,
    observer: Option<SharedObserver>,
    record_proof: bool,
) -> (Solver, Option<Rc<RefCell<ProofBuffer>>>) {
    debug_assert!(
        !(record_proof && sharing.is_some()),
        "proof recording with sharing on would be unsound"
    );
    let mut builder = SolverBuilder::with_config(config).reserve_vars(num_vars);
    for clause in clauses {
        builder = builder.clause(clause.iter().copied());
    }
    if let Some(flag) = cancel {
        builder = builder.on_terminate(move || flag.load(Ordering::Relaxed));
    }
    if let Some((max_lbd, pool)) = sharing {
        let export_pool = Arc::clone(&pool);
        builder = builder.share_export(max_lbd, move |lits, lbd| {
            export_pool.publish(id, lits, lbd);
        });
        builder = builder.share_import(move |buf| {
            pool.collect(id, max_lbd, buf);
        });
    }
    if let Some(shared) = observer {
        builder = builder.on_event(Forward { worker: id, shared });
    }
    let mut tap = None;
    if record_proof {
        let buffer = Rc::new(RefCell::new(ProofBuffer::default()));
        builder = builder.proof(Rc::clone(&buffer));
        tap = Some(buffer);
    }
    (builder.build(), tap)
}

/// Runs one worker to completion (or cancellation) on its own thread:
/// build, stage the assumptions, solve once under `budget`, and package the
/// outcome as plain `Send` data.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    id: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    config: SolverConfig,
    sharing: Option<(u32, Arc<ClausePool>)>,
    cancel: Arc<AtomicBool>,
    observer: Option<SharedObserver>,
    record_proof: bool,
) -> WorkerResult {
    let (mut solver, tap) = build_worker(
        id,
        num_vars,
        clauses,
        config,
        sharing,
        Some(cancel),
        observer.clone(),
        record_proof,
    );
    for &a in assumptions {
        solver.assume(a);
    }
    if let Some(shared) = &observer {
        emit_shared(shared, &SolveEvent::WorkerStart { worker: id });
    }
    let status = solver.solve();
    if let Some(shared) = &observer {
        emit_shared(
            shared,
            &SolveEvent::WorkerDone {
                worker: id,
                verdict: SolveVerdict::from(&status),
            },
        );
    }
    let failed = solver.failed_assumptions().to_vec();
    let stats = solver.stats().clone();
    drop(solver); // releases the solver's clone of the proof tap
    let proof_ops = tap
        .and_then(|t| Rc::try_unwrap(t).ok())
        .map(|cell| cell.into_inner().ops)
        .unwrap_or_default();
    WorkerResult {
        status,
        failed,
        stats,
        proof_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Budget;
    use crate::search::StopReason;

    /// hole(n): n+1 pigeons in n holes — small but exponentially hard, so a
    /// worker is reliably mid-search when the flag rises.
    fn pigeonhole(n: usize) -> Vec<Vec<Lit>> {
        let lit = |pigeon: usize, hole: usize| Lit::from_dimacs((pigeon * n + hole + 1) as i32);
        let mut clauses = Vec::new();
        for p in 0..=n {
            clauses.push((0..n).map(|h| lit(p, h)).collect());
        }
        for h in 0..n {
            for p1 in 0..=n {
                for p2 in (p1 + 1)..=n {
                    clauses.push(vec![!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        clauses
    }

    #[test]
    fn pre_raised_cancel_flag_stops_at_solve_entry() {
        let clauses = pigeonhole(8);
        let cancel = Arc::new(AtomicBool::new(true));
        let result = run_worker(
            0,
            9 * 8,
            &clauses,
            &[],
            SolverConfig::portfolio_worker(0).with_budget(Budget::unlimited()),
            None,
            cancel,
            None,
            false,
        );
        assert_eq!(
            result.status,
            SolveStatus::Unknown(StopReason::Callback),
            "the entry poll must observe an already-raised flag"
        );
        assert_eq!(result.stats.conflicts, 0);
    }

    #[test]
    fn raising_the_flag_mid_search_cancels_the_worker() {
        // hole(10) takes far longer than the flag-raising thread's delay;
        // the terminate poll fires at restart boundaries and every 1024
        // conflicts, so the worker stops soon after the flag rises.
        let clauses = pigeonhole(10);
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancel);
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            flag.store(true, Ordering::SeqCst);
        });
        let result = run_worker(
            0,
            11 * 10,
            &clauses,
            &[],
            SolverConfig::portfolio_worker(0).with_budget(Budget::unlimited()),
            None,
            cancel,
            None,
            false,
        );
        raiser.join().unwrap();
        assert_eq!(
            result.status,
            SolveStatus::Unknown(StopReason::Callback),
            "a loser must observe termination instead of searching on"
        );
    }
}
