//! Clause-database management, run between search trees (paper §8).
//!
//! BerkMin's policy partitions the conflict-clause stack into *young*
//! clauses (distance from the top below 15/16 of the stack size) and *old*
//! clauses (the bottom 1/16). Young clauses survive if they are short
//! (`len < 43`) or active (`activity > 7`); old clauses only if very short
//! (`len < 9`) or more active than a rising threshold (initially 60). The
//! topmost clause is never removed — the paper's anti-looping guard.
//! Clauses satisfied by retained (level-0) assignments are removed outright,
//! and literals false at level 0 are stripped.
//!
//! Removal is a two-step affair on the flat clause arena: the policy *marks*
//! records as garbage, and the compacting collector
//! ([`Solver::collect_garbage`]) — run once at the end of every reduction —
//! reclaims the space, emits the DRAT `d` lines, and rewrites every live
//! [`ClauseRef`](crate::clause_db::ClauseRef).

use berkmin_cnf::{LBool, Lit};

use crate::clause_db::ClauseRef;
use crate::config::DbPolicy;
use crate::proof::ProofSink;
use crate::solver::Solver;

impl Solver {
    /// Performs database reduction. Must be called at decision level 0 with
    /// a fully propagated trail (i.e. right after a restart).
    pub(crate) fn reduce_db<S: ProofSink>(&mut self, proof: &mut S) {
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.reductions += 1;
        let observing = self.has_observer();
        let live_before = self.db.num_live() as u64;
        let words_before = self.stats.gc_words_reclaimed;

        self.simplify_by_level0(proof);
        self.db.compact_stack();
        self.apply_policy();
        // Reclaim every record marked above: the GC emits their DRAT `d`
        // lines, compacts the arena, and rewrites stack/reason/watch
        // references (reasons of level-0 facts whose clause died are
        // dropped — analysis never consults level-0 reasons).
        self.collect_garbage(proof);
        debug_assert!(self.assert_invariants("reduce_db"));
        if observing {
            self.emit(crate::telemetry::SolveEvent::Reduce {
                live_before,
                live_after: self.db.num_live() as u64,
                words_reclaimed: self.stats.gc_words_reclaimed - words_before,
            });
        }
    }

    /// Removes clauses satisfied by retained level-0 assignments and strips
    /// literals false at level 0 (paper §8: "all the clauses that are
    /// satisfied by the retained assignments are removed").
    fn simplify_by_level0<S: ProofSink>(&mut self, proof: &mut S) {
        let live: Vec<ClauseRef> = self.db.iter_live().collect();
        for cref in live {
            let mut satisfied = false;
            let mut has_false = false;
            for &l in self.db.lits(cref) {
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => has_false = true,
                    LBool::Undef => {}
                }
            }
            if satisfied {
                // Mark only; the GC emits the DRAT `d` line when the record
                // (whose literals stay readable until then) is reclaimed.
                self.db.delete(cref);
                self.stats.deleted_clauses += 1;
                continue;
            }
            if !has_false {
                continue;
            }
            // Strengthen: drop the falsified literals. The shortened clause
            // is a unit-propagation consequence, so emit add-then-delete.
            let old: Vec<Lit> = self.db.lits(cref).to_vec();
            let new: Vec<Lit> = old
                .iter()
                .copied()
                .filter(|&l| self.lit_value(l) != LBool::False)
                .collect();
            proof.add_clause(&new);
            match new.len() {
                0 => {
                    // Cannot happen after complete BCP, but stay sound.
                    self.ok = false;
                    self.db.delete(cref);
                }
                1 => {
                    // Degenerated to a unit: assert it and drop the clause.
                    if self.lit_value(new[0]).is_undef() {
                        self.unchecked_enqueue(new[0], None);
                    }
                    self.db.delete(cref);
                    self.stats.deleted_clauses += 1;
                }
                n => {
                    // Shrink in place — the record keeps its `ClauseRef`.
                    // The old literal set is overwritten here, so its `d`
                    // line is emitted now rather than by the GC.
                    proof.delete_clause(&old);
                    self.db.lits_mut(cref)[..n].copy_from_slice(&new);
                    self.db.shrink(cref, n);
                }
            }
        }
    }

    /// Applies the configured keep/remove rule to the learnt-clause stack.
    /// Clauses are only marked here; the GC reports them to the proof sink.
    fn apply_policy(&mut self) {
        // Deletion only flips a header bit — the stack itself is never
        // mutated here, so it can be indexed directly without a clone. The
        // loops stop at `n - 1`: the topmost clause is never removed (§8),
        // the paper's anti-looping guard.
        let n = self.db.stack.len();
        if n == 0 {
            return;
        }
        match self.config.db_policy {
            DbPolicy::BerkMin {
                young_len,
                young_act,
                old_len,
                old_act_inc,
                ..
            } => {
                for i in 0..n - 1 {
                    let cref = self.db.stack[i];
                    debug_assert!(self.db.is_learnt(cref), "original clause on the stack");
                    let distance = (n - 1 - i) as u64;
                    let young = distance * 16 < 15 * n as u64;
                    let (len, act) = (self.db.len(cref) as u32, self.db.activity(cref));
                    let keep = if young {
                        len < young_len || act > young_act
                    } else {
                        len < old_len || act > self.old_act_threshold
                    };
                    if !keep {
                        self.db.delete(cref);
                        self.stats.deleted_clauses += 1;
                    }
                }
                // "The threshold … is gradually increased so that long
                // clauses that … stopped participating in conflicts will be
                // removed" (§8).
                self.old_act_threshold = self.old_act_threshold.saturating_add(old_act_inc);
            }
            DbPolicy::LengthBounded { max_len } => {
                for i in 0..n - 1 {
                    let cref = self.db.stack[i];
                    if self.db.len(cref) as u32 > max_len {
                        self.db.delete(cref);
                        self.stats.deleted_clauses += 1;
                    }
                }
            }
            DbPolicy::KeepAll => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DbPolicy, SolverConfig};
    use crate::proof::NoProof;
    use crate::solver::Solver;
    use berkmin_cnf::Lit;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    /// Builds a solver with `n` learnt clauses of the given length on the
    /// stack (over disjoint fresh variables so none is satisfied).
    fn stacked_solver(cfg: SolverConfig, n: usize, len: usize) -> Solver {
        let mut s = Solver::with_config(cfg);
        s.ensure_vars(n * len + 1);
        for i in 0..n {
            let lits: Vec<Lit> = (0..len).map(|j| lit((i * len + j + 1) as i32)).collect();
            // Bypass record_learnt's asserting-literal machinery: install
            // the clause directly so nothing is enqueued.
            let cref = s.db.add_learnt(&lits);
            s.attach(cref);
        }
        s
    }

    /// Raises a clause's activity counter to `target` (test scaffolding; the
    /// arena only exposes unit bumps, as conflict analysis credits one
    /// conflict at a time).
    fn set_activity(s: &mut Solver, cref: crate::clause_db::ClauseRef, target: u32) {
        while s.db.activity(cref) < target {
            s.db.bump_activity(cref);
        }
    }

    #[test]
    fn berkmin_policy_keeps_short_young_clauses() {
        let mut s = stacked_solver(SolverConfig::berkmin(), 8, 3);
        s.reduce_db(&mut NoProof);
        // Length 3 < 43: every young clause kept; old region (bottom 1/16
        // of 8 clauses is empty for n=8 since distance 7*16=112 < 15*8=120).
        assert_eq!(s.db.stack.len(), 8);
    }

    #[test]
    fn berkmin_policy_removes_long_inactive_clauses() {
        let mut s = stacked_solver(SolverConfig::berkmin(), 8, 50);
        // Mark one clause active enough to survive (> 7).
        let survivor = s.db.stack[2];
        set_activity(&mut s, survivor, 8);
        let survivor_lits = s.db.lits(survivor).to_vec();
        s.reduce_db(&mut NoProof);
        // Kept: the active one and the topmost. The GC relocates records,
        // so identify the survivor by content, not by its old ClauseRef.
        assert_eq!(s.db.stack.len(), 2);
        assert!(s
            .db
            .stack
            .iter()
            .any(|&c| s.db.lits(c) == &survivor_lits[..] && s.db.activity(c) == 8));
        assert_eq!(s.stats().deleted_clauses, 6);
    }

    #[test]
    fn topmost_clause_is_never_removed() {
        let mut s = stacked_solver(SolverConfig::berkmin(), 4, 60);
        let top_lits = s.db.lits(*s.db.stack.last().unwrap()).to_vec();
        s.reduce_db(&mut NoProof);
        let new_top = *s.db.stack.last().unwrap();
        assert_eq!(s.db.lits(new_top), &top_lits[..]);
    }

    #[test]
    fn old_clauses_face_stricter_rule() {
        // 32 clauses of length 20: young rule keeps them (20 < 43), but the
        // oldest 1/16 (distance ≥ 30) fall under the old rule (20 ≥ 9,
        // activity 0 ≤ 60 ⇒ removed).
        let mut s = stacked_solver(SolverConfig::berkmin(), 32, 20);
        s.reduce_db(&mut NoProof);
        // distances 30, 31 are "old" (30*16=480 ≥ 15*32=480) ⇒ 2 removed.
        assert_eq!(s.db.stack.len(), 30);
    }

    #[test]
    fn old_threshold_rises_per_reduction() {
        let mut s = stacked_solver(SolverConfig::berkmin(), 2, 3);
        let before = s.old_act_threshold;
        s.reduce_db(&mut NoProof);
        s.reduce_db(&mut NoProof);
        assert_eq!(s.old_act_threshold, before + 2);
    }

    #[test]
    fn length_bounded_policy_is_grasp_like() {
        let mut s = stacked_solver(SolverConfig::limited_keeping(), 6, 50);
        // Activity is irrelevant for limited_keeping.
        let c = s.db.stack[1];
        set_activity(&mut s, c, 1000);
        s.reduce_db(&mut NoProof);
        // All length-50 clauses except the topmost are removed.
        assert_eq!(s.db.stack.len(), 1);
    }

    #[test]
    fn keep_all_policy_keeps_everything() {
        let mut cfg = SolverConfig::berkmin();
        cfg.db_policy = DbPolicy::KeepAll;
        let mut s = stacked_solver(cfg, 10, 80);
        s.reduce_db(&mut NoProof);
        assert_eq!(s.db.stack.len(), 10);
    }

    #[test]
    fn satisfied_clauses_are_removed_and_false_lits_stripped() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(4), lit(5)]);
        s.add_clause([lit(1)]); // level-0 fact: x1 = 1
        assert!(s.propagate().is_none());
        s.reduce_db(&mut NoProof);
        // Clause 1 satisfied by x1 ⇒ removed; clause 2 loses ¬x1.
        assert_eq!(s.db.num_live(), 1);
        let remaining: Vec<_> = s.db.iter_live().collect();
        assert_eq!(s.db.lits(remaining[0]), &[lit(4), lit(5)]);
        // The shortened clause is now binary and must be in bin_occ.
        assert_eq!(s.nb_two(lit(4)), 1);
    }

    #[test]
    fn reduction_preserves_satisfiability_outcome() {
        // Solve the same easy-but-nontrivial formula with aggressive
        // reduction and with none; verdicts must match.
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(1), lit(2)],
            vec![lit(-1), lit(3)],
            vec![lit(-2), lit(-3)],
            vec![lit(1), lit(-3)],
            vec![lit(-1), lit(-2), lit(3)],
        ];
        let mut keep = Solver::with_config(SolverConfig::berkmin());
        let mut cfg = SolverConfig::berkmin();
        cfg.restart = crate::RestartPolicy::FixedInterval(1);
        let mut churn = Solver::with_config(cfg);
        for c in &clauses {
            keep.add_clause(c.iter().copied());
            churn.add_clause(c.iter().copied());
        }
        assert_eq!(keep.solve().is_sat(), churn.solve().is_sat());
    }
}
