//! The CDCL search loop and its solve-session machinery.
//!
//! This module owns everything that happens *during* a solve call: the
//! propagate/analyze/decide loop, BCP over the watch structure, restart
//! and garbage-collection plumbing, learnt-clause recording, the
//! solve-event hooks ([`SolveEvents`]) and the session bracket that emits
//! [`SolveEvent::SolveStart`]/[`SolveEvent::SolveDone`]. The thin
//! [`Solver`] facade (`solver.rs`) composes the state subsystems — the
//! [`Trail`](crate::Trail), the [`Watches`](crate::watch::Watches) and the
//! [`SearchLimits`](crate::limits::SearchLimits) scheduler — and the
//! public result types live here beside the loop that produces them.

use berkmin_cnf::{Assignment, LBool, Lit, Var};

use crate::clause_db::ClauseRef;
use crate::config::ActivityIndex;
use crate::proof::ProofSink;
use crate::solver::Solver;
use crate::telemetry::{SolveEvent, SolveObserver, SolveVerdict};
use crate::watch::Watcher;

/// Why a run stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The conflict budget was exhausted — the deterministic analog of the
    /// paper's wall-clock timeouts ("aborted" rows in Tables 2, 4, 7).
    ConflictBudget,
    /// The decision budget was exhausted.
    DecisionBudget,
    /// The propagation budget was exhausted.
    PropagationBudget,
    /// The terminate callback (see
    /// [`SolverBuilder::on_terminate`](crate::SolverBuilder::on_terminate))
    /// asked the solver to stop. Budgets are unaffected: a later
    /// [`Solver::solve`] call gets its usual per-call allowance.
    Callback,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::ConflictBudget => write!(f, "conflict budget exhausted"),
            StopReason::DecisionBudget => write!(f, "decision budget exhausted"),
            StopReason::PropagationBudget => write!(f, "propagation budget exhausted"),
            StopReason::Callback => write!(f, "terminate callback requested stop"),
        }
    }
}

/// A boxed terminate callback: polled at solve entry, at restart
/// boundaries, and every 1024 conflicts; returning `true` aborts with
/// [`StopReason::Callback`].
pub type TerminateCallback = Box<dyn FnMut() -> bool>;

/// A boxed learnt-clause callback: receives each conflict-derived learnt
/// clause (asserting literal first) whose length is within the cap it was
/// registered with.
pub type LearntCallback = Box<dyn FnMut(&[Lit])>;

/// A boxed share-export callback: receives each conflict-derived learnt
/// clause that passes the export filter (length ≤ 2, or LBD within the
/// registered cap), together with its LBD — the portfolio's outbound half
/// of learnt-clause sharing.
pub type ExportCallback = Box<dyn FnMut(&[Lit], u32)>;

/// A boxed share-import source: polled at solve entry and at every restart
/// boundary, it pushes candidate clauses into the supplied buffer; the solver integrates them
/// at decision level 0 (level-0-simplified, attached as learnt clauses).
/// Every pushed clause **must** be implied by the original formula — the
/// portfolio's inbound half of learnt-clause sharing.
pub type ImportCallback = Box<dyn FnMut(&mut Vec<Vec<Lit>>)>;

/// The solve-event hooks a solver carries (installed at construction time
/// through [`SolverBuilder`](crate::SolverBuilder), replaceable later via
/// [`Solver::set_terminate`] / [`Solver::set_learnt_callback`]). Callbacks
/// receive no solver reference — they observe only what they captured plus
/// the arguments passed, so they cannot perturb the search.
#[derive(Default)]
pub(crate) struct SolveEvents {
    /// Polled at solve entry, at every restart boundary, and every 1024
    /// conflicts (so a restart-free search cannot starve it); returning
    /// `true` aborts the call with [`StopReason::Callback`].
    pub(crate) terminate: Option<TerminateCallback>,
    /// Fired once per conflict-derived learnt clause of length ≤ the cap
    /// (asserting literal first), right after the clause is reported to the
    /// proof sink and before search resumes.
    pub(crate) on_learnt: Option<(usize, LearntCallback)>,
    /// Share-export hook: fired (after `on_learnt`) for every learnt clause
    /// with `len ≤ 2 || lbd ≤ cap`, carrying the clause and its LBD.
    pub(crate) export: Option<(u32, ExportCallback)>,
    /// Share-import source: polled at solve entry and at every restart
    /// boundary (after §8 database reduction); fetched clauses are
    /// integrated at level 0.
    pub(crate) import: Option<ImportCallback>,
    /// Structured telemetry observer (see [`crate::telemetry`]): receives
    /// typed [`SolveEvent`]s. Every emission site checks this `Option`
    /// once, so an observer-less solver pays nothing.
    pub(crate) observer: Option<Box<dyn SolveObserver>>,
}

impl std::fmt::Debug for SolveEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveEvents")
            .field("terminate", &self.terminate.is_some())
            .field("on_learnt", &self.on_learnt.as_ref().map(|(cap, _)| *cap))
            .field("export", &self.export.as_ref().map(|(cap, _)| *cap))
            .field("import", &self.import.is_some())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// Result of [`Solver::solve`].
///
/// For runs under assumptions (staged with [`Solver::assume`]),
/// [`SolveStatus::Unsat`] means *unsatisfiable under those assumptions*;
/// consult [`Solver::failed_assumptions`] to distinguish an absolute
/// refutation (empty core) from an assumption conflict (non-empty core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveStatus {
    /// Satisfiable; carries a model that satisfies every original clause.
    Sat(Assignment),
    /// Proven unsatisfiable.
    Unsat,
    /// Gave up because a [`Budget`](crate::Budget) limit was hit.
    Unknown(StopReason),
}

impl SolveStatus {
    /// `true` iff the status is [`SolveStatus::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveStatus::Sat(_))
    }

    /// `true` iff the status is [`SolveStatus::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveStatus::Unsat)
    }

    /// `true` iff the run was aborted on a budget.
    pub fn is_unknown(&self) -> bool {
        matches!(self, SolveStatus::Unknown(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveStatus::Sat(m) => Some(m),
            _ => None,
        }
    }
}

impl Solver {
    /// One solve session: consumes the pending assumptions, emits the
    /// [`SolveEvent::SolveStart`]/[`SolveEvent::SolveDone`] bracket, and
    /// runs the CDCL loop ([`Solver::search`]), reporting to `proof`. The
    /// single implementation behind [`Solver::solve`].
    pub(crate) fn solve_session(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        self.begin_solve();
        if self.events.observer.is_some() {
            let event = SolveEvent::SolveStart {
                call: self.stats.solve_calls,
                num_vars: self.num_vars,
                num_clauses: self.db.num_live(),
                assumptions: self.assumptions.len(),
            };
            self.emit(event);
        }
        let status = self.search(proof);
        if self.events.observer.is_some() {
            let event = SolveEvent::SolveDone {
                verdict: SolveVerdict::from(&status),
                conflicts: self.limits.conflicts_spent(&self.stats),
                decisions: self.limits.decisions_spent(&self.stats),
                propagations: self.limits.propagations_spent(&self.stats),
                restarts: self.limits.restarts_spent(&self.stats),
            };
            self.emit(event);
        }
        status
    }

    /// The CDCL search proper: entry checks, import poll, then the
    /// propagate/analyze/decide loop until an answer or a stop.
    fn search(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        if self.should_terminate() {
            return SolveStatus::Unknown(StopReason::Callback);
        }
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        if self.decision_level() == 0 && self.propagate().is_some() {
            self.ok = false;
            return self.conclude_unsat(proof);
        }
        // Preprocess at solve entry, over the propagated level-0 trail:
        // subsumption, strengthening and bounded variable elimination (see
        // `crate::preprocess`), with every change reported to the proof
        // sink and eliminated variables pushed onto the reconstruction
        // stack.
        self.simplify_formula(proof);
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        // Import shared clauses at solve entry as well as at restart
        // boundaries: a budget-sliced driver (the deterministic portfolio
        // schedule) may never search long enough to restart, and entry is
        // an equally valid level-0 "between search trees" point.
        self.import_shared_clauses();
        if !self.ok {
            return self.conclude_unsat(proof);
        }
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                // All conflict-cadence questions are answered in one batch
                // here, while the counters hold the values this conflict
                // ticked them to.
                let due = self.limits.on_conflict(&self.stats, &self.config);
                if self.decision_level() == 0 {
                    self.ok = false;
                    return self.conclude_unsat(proof);
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                proof.add_clause(&learnt);
                if let Some((cap, callback)) = &mut self.events.on_learnt {
                    if learnt.len() <= *cap {
                        callback(&learnt);
                    }
                }
                // Share export: short clauses are always worth the wire,
                // longer ones only when their glue is low (paper-era
                // portfolio practice; the LBD cap is the one knob).
                let mut exported = false;
                if let Some((max_lbd, callback)) = &mut self.events.export {
                    if learnt.len() <= 2 || lbd <= *max_lbd {
                        self.stats.clauses_exported += 1;
                        callback(&learnt, lbd);
                        exported = true;
                    }
                }
                if exported && self.events.observer.is_some() {
                    let event = SolveEvent::ShareExport {
                        len: learnt.len(),
                        lbd,
                    };
                    self.emit(event);
                }
                self.cancel_until(bt_level);
                self.record_learnt(learnt);
                self.apply_maintenance(due);
                self.paranoid_audit("after conflict handling");
                if due.progress_tick && self.events.observer.is_some() {
                    let event = SolveEvent::Progress {
                        conflicts: self.stats.conflicts,
                        trail: self.trail.len(),
                        heap: self.heap.len(),
                        learnt: self.db.num_learnt(),
                        avg_lbd: self.stats.avg_lbd(),
                    };
                    self.emit(event);
                }
                // Restart boundaries alone can starve the terminate
                // callback (RestartPolicy::Never, FixedInterval(u64::MAX),
                // or a huge Luby leg), so it is also polled on a fixed
                // conflict cadence. Budgets stay untouched.
                if due.poll_terminate && self.should_terminate() {
                    return SolveStatus::Unknown(StopReason::Callback);
                }
                if due.conflict_budget_exhausted {
                    return SolveStatus::Unknown(StopReason::ConflictBudget);
                }
            } else {
                self.paranoid_audit("after propagation");
                if self
                    .limits
                    .propagation_budget_exhausted(&self.stats, &self.config.budget)
                {
                    return SolveStatus::Unknown(StopReason::PropagationBudget);
                }
                if self
                    .limits
                    .restart_due(self.decision_level(), &self.stats, self.config.restart)
                {
                    // The terminate callback is polled at every restart
                    // boundary — the natural "between search trees" point
                    // the IC3/BMC drivers expect. Budgets are untouched.
                    if self.should_terminate() {
                        return SolveStatus::Unknown(StopReason::Callback);
                    }
                    self.restart(proof);
                    if !self.ok {
                        // An imported clause collapsed to the empty clause
                        // under the level-0 assignment: absolute refutation.
                        return self.conclude_unsat(proof);
                    }
                    self.paranoid_audit("after restart");
                    continue;
                }
                // Enqueue pending assumptions as pseudo-decisions: the
                // assumption at index `i` owns decision level `i + 1`. An
                // already-implied assumption opens a *dummy* level (keeping
                // index and level in lockstep); a falsified one means the
                // formula conflicts with the assumption set — extract the
                // core and answer UNSAT without touching `ok`.
                let mut asserted_assumption = false;
                while self.decision_level() < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level()];
                    match self.lit_value(a) {
                        LBool::True => self.trail.open_dummy_level(),
                        LBool::Undef => {
                            self.push_decision(a);
                            asserted_assumption = true;
                            break;
                        }
                        LBool::False => {
                            self.failed = self.analyze_final(a);
                            self.stats.assumption_conflicts += 1;
                            self.cancel_until(0);
                            self.paranoid_audit("after failed-assumption backtrack");
                            return SolveStatus::Unsat;
                        }
                    }
                }
                if asserted_assumption {
                    continue; // propagate the assumption before deciding
                }
                if self
                    .limits
                    .decision_budget_exhausted(&self.stats, &self.config.budget)
                {
                    return SolveStatus::Unknown(StopReason::DecisionBudget);
                }
                match self.decide() {
                    None => {
                        self.paranoid_audit("at SAT");
                        return SolveStatus::Sat(self.extract_model());
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        if self.config.record_decisions {
                            self.stats.decision_log.push(l.var());
                        }
                        self.push_decision(l);
                    }
                }
            }
        }
    }

    /// Boolean constraint propagation with two watched literals, structured
    /// as blocker-check → binary-pass → long-clause-pass: for each newly
    /// true literal the inline binary watchers are drained first (no arena
    /// access at all), then the long-clause watchers with the Chaff blocker
    /// fast path in front of any arena read.
    ///
    /// Returns the conflicting clause, if any. On conflict the propagation
    /// queue is drained so the caller sees a consistent trail.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        'queue: while let Some(p) = self.trail.next_queued() {
            let false_lit = !p;

            // --- binary pass: the watcher *is* the other literal. ---
            let bins = self.watches.take_binary(p.code());
            for w in &bins {
                match self.trail.lit_value(w.other) {
                    LBool::True => {}
                    LBool::Undef => {
                        self.stats.propagations += 1;
                        self.trail.assign(w.other, Some(w.cref));
                    }
                    LBool::False => {
                        conflict = Some(w.cref);
                        break;
                    }
                }
            }
            self.watches.put_binary(p.code(), bins);
            if conflict.is_some() {
                self.trail.drain_queue();
                break 'queue;
            }

            // --- long-clause pass. ---
            let mut ws = self.watches.take_long(p.code());
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                // Fast path: the blocker literal already satisfies the clause.
                if self.trail.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let c = self.db.lits_mut(cref);
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], false_lit, "watch invariant violated");
                }
                let first = self.db.lits(cref)[0];
                if first != w.blocker && self.trail.lit_value(first) == LBool::True {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to move the watch to.
                let mut relocated = None;
                for (k, &lk) in self.db.lits(cref).iter().enumerate().skip(2) {
                    if self.trail.lit_value(lk) != LBool::False {
                        relocated = Some((k, lk));
                        break;
                    }
                }
                if let Some((k, lk)) = relocated {
                    self.db.lits_mut(cref).swap(1, k);
                    self.watches.push_long(
                        (!lk).code(),
                        Watcher {
                            cref,
                            blocker: first,
                        },
                    );
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit (or conflicting) under the current trail.
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.trail.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.trail.drain_queue();
                    self.watches.put_long(p.code(), ws);
                    break 'queue;
                }
                self.stats.propagations += 1;
                self.trail.assign(first, Some(cref));
            }
            self.watches.put_long(p.code(), ws);
        }
        conflict
    }

    /// Registers the two watched literals of `cref` (positions 0 and 1)
    /// with the watch structure.
    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        debug_assert!(!self.db.is_garbage(cref), "attach of deleted {cref:?}");
        self.watches.attach(cref, self.db.lits(cref));
    }

    /// Rebuilds every watch list (long and binary) from the live clause
    /// set. Only valid at decision level 0 with an empty propagation queue
    /// (i.e. during database reduction).
    pub(crate) fn rebuild_watches(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.watches.rebuild(&self.db);
    }

    /// Runs the compacting clause-arena garbage collector: reclaims every
    /// record marked deleted (emitting its DRAT `d` line), slides the
    /// survivors to the front of the arena, and rewrites every outstanding
    /// [`ClauseRef`] — the conflict-clause stack, the trail's reason
    /// pointers, and (by rebuilding) the watch lists. A reason whose clause
    /// was deleted belongs to a level-0 fact, whose reason is never
    /// consulted again, so it is dropped.
    ///
    /// Only valid at decision level 0 with a fully propagated trail; run at
    /// every §8 database reduction.
    pub(crate) fn collect_garbage<S: ProofSink + ?Sized>(&mut self, proof: &mut S) {
        debug_assert_eq!(self.decision_level(), 0);
        self.db.compact_stack();
        if self.db.garbage_words() == 0 {
            // Nothing was deleted or shrunk: every outstanding reference
            // (watches included) is still valid — skip the whole collection.
            return;
        }
        let (map, reclaimed) = self.db.collect(proof);
        self.stats.gc_runs += 1;
        self.stats.gc_words_reclaimed += reclaimed as u64;
        self.trail.remap_reasons(|cref| map.remap_live(cref));
        self.rebuild_watches();
    }

    /// Resets the per-call state at the top of every solve session: the
    /// previous search tree is undone, the pending assumptions are consumed
    /// and installed (their variables materialized), the stale failed core
    /// is dropped, and the scheduler is re-armed (budget baseline and
    /// restart scratch) so no limit or conflict-count leaks in from an
    /// earlier call.
    fn begin_solve(&mut self) {
        self.cancel_until(0);
        self.assumptions = std::mem::take(&mut self.pending_assumptions);
        let max_var = self
            .assumptions
            .iter()
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        self.ensure_vars(max_var);
        self.failed.clear();
        self.limits.begin_call(&self.stats);
        self.stats.solve_calls += 1;
        debug_assert!(
            self.seen.iter().all(|&s| !s),
            "conflict-analysis scratch leaked across solve calls"
        );
    }

    fn conclude_unsat(&mut self, proof: &mut dyn ProofSink) -> SolveStatus {
        if !self.emitted_empty {
            proof.add_clause(&[]);
            self.emitted_empty = true;
        }
        SolveStatus::Unsat
    }

    /// Delivers `event` to the observer, if one is attached. Emission
    /// sites that would *construct* a non-trivial event first check
    /// `self.events.observer.is_some()` so an observer-less solver pays
    /// only that one branch.
    #[inline]
    pub(crate) fn emit(&mut self, event: SolveEvent) {
        if let Some(observer) = &mut self.events.observer {
            observer.on_event(&event);
        }
    }

    /// Whether a telemetry observer is attached (the emission-site gate
    /// for code outside this module).
    #[inline]
    pub(crate) fn has_observer(&self) -> bool {
        self.events.observer.is_some()
    }

    /// Installs (or clears) the structured telemetry observer — the typed
    /// counterpart of the `c`-line progress output. See
    /// [`crate::telemetry`] for the event vocabulary and ordering
    /// guarantees. Usually installed at construction time via
    /// [`SolverBuilder::on_event`](crate::SolverBuilder::on_event).
    pub fn set_observer(&mut self, observer: Option<Box<dyn SolveObserver>>) {
        self.events.observer = observer;
    }

    /// Polls the terminate callback, if any.
    fn should_terminate(&mut self) -> bool {
        match &mut self.events.terminate {
            Some(callback) => callback(),
            None => false,
        }
    }

    /// Installs (or clears) the terminate callback — polled at solve entry,
    /// at every restart boundary, and every 1024 conflicts (so even a
    /// restart-free search honors it); returning `true` makes the current
    /// and any later [`Solver::solve`] call return
    /// [`SolveStatus::Unknown`]\([`StopReason::Callback`]\) until the
    /// callback is cleared or starts returning `false`. Budgets are never
    /// consumed by a callback stop. Usually installed at construction time
    /// via [`SolverBuilder::on_terminate`](crate::SolverBuilder::on_terminate).
    pub fn set_terminate(&mut self, callback: Option<TerminateCallback>) {
        self.events.terminate = callback;
    }

    /// Installs (or clears) the learnt-clause callback: fired once per
    /// conflict-derived learnt clause of length ≤ `max_len` (asserting
    /// literal first), after the clause is reported to the proof sink and
    /// before search resumes. Every delivered clause is a logical
    /// consequence of the original formula (never of the assumptions).
    /// Usually installed at construction time via
    /// [`SolverBuilder::on_learnt`](crate::SolverBuilder::on_learnt).
    pub fn set_learnt_callback(&mut self, callback: Option<(usize, LearntCallback)>) {
        self.events.on_learnt = callback;
    }

    /// Installs (or clears) the share-export callback: fired once per
    /// conflict-derived learnt clause that passes the sharing filter
    /// (length ≤ 2, or LBD ≤ `max_lbd`), with the clause's literals and its
    /// glue. Every exported clause is a logical consequence of the original
    /// formula, so it is sound for any solver working on the same formula
    /// to add it. Usually installed at construction time via
    /// [`SolverBuilder::share_export`](crate::SolverBuilder::share_export).
    pub fn set_export_callback(&mut self, callback: Option<(u32, ExportCallback)>) {
        self.events.export = callback;
    }

    /// Installs (or clears) the share-import source: polled at solve entry
    /// and at every restart boundary (trail at level 0) with a scratch
    /// buffer the source fills with foreign clauses. **Every supplied clause must be implied by the
    /// original formula** — the solver attaches them without re-deriving
    /// them, so an unsound import corrupts verdicts. For the same reason an
    /// import source cannot be combined with a proof sink (the imports are
    /// not RUP-derivable in this solver's proof);
    /// [`SolverBuilder::build`](crate::SolverBuilder::build) enforces this.
    /// Usually installed at construction time via
    /// [`SolverBuilder::share_import`](crate::SolverBuilder::share_import).
    pub fn set_import_source(&mut self, source: Option<ImportCallback>) {
        self.events.import = source;
    }

    /// Replaces the construction-time proof sink, returning the previous
    /// one — how a caller that attached a shared sink reclaims sole
    /// ownership (e.g. to `Rc::try_unwrap` it) without dropping the solver.
    pub fn replace_proof_sink(&mut self, sink: Box<dyn ProofSink>) -> Box<dyn ProofSink> {
        std::mem::replace(&mut self.proof, sink)
    }

    /// Installs a freshly learnt clause: records activities, attaches
    /// watches, pushes it on the conflict-clause stack and asserts its
    /// first literal. Assumes the trail has been backtracked to the
    /// asserting level already.
    pub(crate) fn record_learnt(&mut self, lits: Vec<Lit>) {
        self.stats.learnt_total += 1;
        self.stats.learnt_lits_total += lits.len() as u64;
        for &l in &lits {
            // lit_activity censuses every deduced conflict clause (§7).
            self.lit_activity[l.code()] += 1;
            self.vsids[l.code()] += 1;
        }
        if lits.len() == 1 {
            // Unit conflict clause: becomes a retained level-0 fact (§8).
            self.stats.learnt_units += 1;
            debug_assert_eq!(self.decision_level(), 0);
            self.unchecked_enqueue(lits[0], None);
        } else {
            let asserting = lits[0];
            let cref = self.db.add_learnt(&lits);
            self.attach(cref);
            self.unchecked_enqueue(asserting, Some(cref));
        }
        let live = self.db.num_live() as u64;
        self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
    }

    /// Applies the periodic maintenance the scheduler said falls due at
    /// this conflict: activity aging (§1/§5) and VSIDS halving for the
    /// Chaff baseline.
    fn apply_maintenance(&mut self, due: crate::limits::DueActions) {
        if due.decay_var_activity {
            let d = self.config.activity_decay_divisor;
            for a in &mut self.var_activity {
                *a /= d;
            }
            if self.config.activity_index == ActivityIndex::Heap {
                self.heap.rebuild(&self.var_activity);
            }
        }
        if due.decay_vsids {
            for a in &mut self.vsids {
                *a /= 2;
            }
        }
    }

    /// Abandons the current search tree and runs database management (§8),
    /// then integrates any clauses offered by the share-import source —
    /// the "between search trees" point where foreign clauses can be
    /// attached with the trail at level 0.
    fn restart(&mut self, mut proof: &mut dyn ProofSink) {
        self.stats.restarts += 1;
        self.limits.on_restart();
        self.cancel_until(0);
        if self.events.observer.is_some() {
            let event = SolveEvent::Restart {
                restarts: self.stats.restarts,
                conflicts: self.stats.conflicts,
            };
            self.emit(event);
        }
        self.reduce_db(&mut proof);
        self.import_shared_clauses();
    }

    /// Drains the share-import source and installs its clauses at decision
    /// level 0. Each clause is simplified against the level-0 assignment
    /// (satisfied ⇒ skipped, false literals stripped), then attached as a
    /// *learnt* clause — imports compete under the §8 retention policy like
    /// any other conflict clause instead of bloating the original formula.
    /// A clause degenerating to a unit becomes a level-0 fact (propagated
    /// by the main loop); degenerating to the empty clause refutes the
    /// formula (`ok = false` — legal because import sources only supply
    /// formula-implied clauses).
    ///
    /// Imported clauses are **not** reported to the proof sink: they are
    /// not RUP-derivable from this solver's own deductions, so a DRAT log
    /// would become unsound. [`SolverBuilder`](crate::SolverBuilder)
    /// therefore rejects attaching both a proof sink and an import source.
    fn import_shared_clauses(&mut self) {
        if self.events.import.is_none() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let imported_before = self.stats.clauses_imported;
        let mut buf = std::mem::take(&mut self.import_buf);
        buf.clear();
        if let Some(source) = &mut self.events.import {
            source(&mut buf);
        }
        'clauses: for lits in &mut buf {
            lits.sort_unstable();
            lits.dedup();
            if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                continue; // tautology (defensive; learnt clauses never are)
            }
            if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
                continue 'clauses; // already satisfied at level 0
            }
            lits.retain(|&l| self.lit_value(l) != LBool::False);
            match lits.len() {
                0 => {
                    self.ok = false;
                    self.stats.clauses_imported += 1;
                    break;
                }
                1 => {
                    self.stats.clauses_imported += 1;
                    self.unchecked_enqueue(lits[0], None);
                }
                _ => {
                    self.stats.clauses_imported += 1;
                    let cref = self.db.add_learnt(lits);
                    self.attach(cref);
                    let live = self.db.num_live() as u64;
                    self.stats.max_live_clauses = self.stats.max_live_clauses.max(live);
                }
            }
        }
        buf.clear();
        self.import_buf = buf;
        let imported = self.stats.clauses_imported - imported_before;
        if imported > 0 && self.events.observer.is_some() {
            self.emit(SolveEvent::ShareImport { count: imported });
        }
    }

    /// Extracts the satisfying assignment from a fully assigned trail,
    /// extending it back over preprocessor-eliminated variables.
    pub(crate) fn extract_model(&self) -> Assignment {
        let mut model = Assignment::new(self.num_vars);
        for i in 0..self.num_vars {
            let v = Var::new(i as u32);
            // Unconstrained variables default to false.
            model.assign(v, self.trail.value(v) == LBool::True);
        }
        // Extend the model back over the variables the preprocessor
        // eliminated, in reverse elimination order, so it satisfies the
        // *original* formula rather than just the simplified one.
        self.reconstructor.extend_model(&mut model);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Budget, SolverConfig};

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        let x = Lit::from_dimacs(1);
        s.add_clause([x]);
        match s.solve() {
            SolveStatus::Sat(m) => assert!(m.satisfies(x)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1)]);
        s.add_clause([Lit::from_dimacs(-1)]);
        assert!(s.solve().is_unsat());
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        assert!(!s.add_clause([]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(-1)]);
        assert_eq!(s.db.num_live(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(1)]);
        // Collapses to a unit clause, asserted immediately.
        assert_eq!(s.db.num_live(), 0);
        assert_eq!(s.value(Var::new(0)), LBool::True);
    }

    #[test]
    fn propagation_chain_resolves_without_decisions() {
        // x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3): all forced.
        let mut s = Solver::with_config(SolverConfig::berkmin());
        s.add_clause([Lit::from_dimacs(1)]);
        s.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(2)]);
        s.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(3)]);
        let status = s.solve();
        let m = status.model().unwrap();
        assert!(m.satisfies(Lit::from_dimacs(3)));
        assert_eq!(s.stats().decisions, 0);
    }

    #[test]
    fn budget_abort_reports_unknown() {
        // A formula needing work: small pigeonhole, 1-conflict budget.
        let mut s = Solver::with_config(SolverConfig::berkmin().with_budget(Budget::conflicts(1)));
        // PHP(2): 3 pigeons, 2 holes.
        let lit = |p: usize, h: usize| Lit::from_dimacs((p * 2 + h + 1) as i32);
        for p in 0..3 {
            s.add_clause([lit(p, 0), lit(p, 1)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause([!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        match s.solve() {
            SolveStatus::Unknown(StopReason::ConflictBudget) => {}
            other => panic!("expected budget abort, got {other:?}"),
        }
    }
}
