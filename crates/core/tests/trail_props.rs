//! Property tests for the [`Trail`] subsystem driven through its public
//! API alone: random scripts of decisions, implied assignments and
//! backtracks must keep the assignment view, the level bookkeeping and the
//! chronological trail mutually consistent, and `backtrack_to(0)` must be
//! indistinguishable from a full restart.

use berkmin::Trail;
use berkmin_cnf::{LBool, Lit, Var};
use proptest::prelude::*;

const NUM_VARS: usize = 12;

/// One scripted trail operation. Variables are drawn from a fixed pool;
/// an op whose variable is already assigned (or the queue's state makes it
/// meaningless) is skipped by the interpreter, so every generated script
/// is valid.
#[derive(Debug, Clone)]
enum Op {
    /// Open a decision level with the given literal (skipped if assigned).
    Decide(u32, bool),
    /// Assign a literal at the current level, as an implied fact
    /// (skipped if assigned).
    Imply(u32, bool),
    /// Backtrack to `target % (decision_level + 1)`.
    Backtrack(usize),
    /// Drain the propagation queue.
    Drain,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..NUM_VARS as u32, any::<bool>()).prop_map(|(v, s)| Op::Decide(v, s)),
        (0u32..NUM_VARS as u32, any::<bool>()).prop_map(|(v, s)| Op::Imply(v, s)),
        (0usize..8).prop_map(Op::Backtrack),
        Just(Op::Drain),
    ]
}

fn lit(v: u32, sign: bool) -> Lit {
    if sign {
        Lit::pos(Var::new(v))
    } else {
        Lit::neg(Var::new(v))
    }
}

/// Applies `ops` to a fresh trail, tracking a shadow model (assigned
/// variable → (literal, level)) that the trail must agree with at every
/// step.
fn run_script(ops: &[Op]) -> Trail {
    let mut t = Trail::new();
    t.grow(NUM_VARS);
    let mut shadow: Vec<Option<(Lit, u32)>> = vec![None; NUM_VARS];
    for o in ops {
        match *o {
            Op::Decide(v, s) => {
                if t.value(Var::new(v)) == LBool::Undef {
                    t.push_decision(lit(v, s));
                    shadow[v as usize] = Some((lit(v, s), t.decision_level() as u32));
                }
            }
            Op::Imply(v, s) => {
                if t.value(Var::new(v)) == LBool::Undef {
                    t.assign(lit(v, s), None);
                    shadow[v as usize] = Some((lit(v, s), t.decision_level() as u32));
                }
            }
            Op::Backtrack(target) => {
                let level = target % (t.decision_level() + 1);
                let mut unassigned = Vec::new();
                t.backtrack_to(level, |v| unassigned.push(v));
                for v in &unassigned {
                    let (_, lvl) = shadow[v.index()].take().expect("unassign of assigned var");
                    assert!(
                        lvl as usize > level,
                        "backtrack_to({level}) unassigned {v:?} from level {lvl}"
                    );
                }
                assert_eq!(t.decision_level(), level);
            }
            Op::Drain => t.drain_queue(),
        }
        check_consistent(&t, &shadow);
    }
    t
}

/// The trail's public views must all tell the same story as the shadow.
fn check_consistent(t: &Trail, shadow: &[Option<(Lit, u32)>]) {
    let mut assigned = 0;
    for (i, entry) in shadow.iter().enumerate() {
        let v = Var::new(i as u32);
        match entry {
            Some((l, lvl)) => {
                assigned += 1;
                assert_eq!(t.lit_value(*l), LBool::True, "shadow lit {l:?} not true");
                assert_eq!(t.level_of(v), *lvl, "level mismatch for {v:?}");
            }
            None => {
                assert_eq!(t.value(v), LBool::Undef, "{v:?} should be unassigned");
                assert_eq!(t.reason_of(v), None, "unassigned {v:?} keeps a reason");
            }
        }
    }
    assert_eq!(t.len(), assigned, "trail length vs assigned-var count");
    assert_eq!(t.is_empty(), assigned == 0);
    // The chronological trail is exactly the assigned literals, each true,
    // each at the level the decision markers imply.
    for (i, &l) in t.iter().enumerate() {
        assert_eq!(t.lit_at(i), l);
        assert_eq!(t.lit_value(l), LBool::True);
    }
    assert_eq!(t.as_slice().len(), t.len());
    // Levels partition the trail: each level's segment starts at its
    // marker, and `decisions()` yields that segment's first literal.
    let decisions: Vec<Option<Lit>> = t.decisions().collect();
    assert_eq!(decisions.len(), t.decision_level());
    for (d, dec) in decisions.iter().enumerate() {
        let start = t.level_start(d);
        assert_eq!(
            *dec,
            (start < t.len()).then(|| t.lit_at(start)),
            "decision of level {} disagrees with the trail segment",
            d + 1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random scripts keep every public view of the trail consistent.
    #[test]
    fn random_scripts_maintain_consistency(ops in prop::collection::vec(op(), 1..=48)) {
        run_script(&ops);
    }

    /// `backtrack_to(0)` is a full restart: no decision levels, only the
    /// (nonexistent here) level-0 facts remain, and a fresh script replayed
    /// on the wiped trail behaves as on a new one.
    #[test]
    fn backtrack_to_zero_is_a_full_restart(ops in prop::collection::vec(op(), 1..=48)) {
        let mut t = run_script(&ops);
        let root_facts: Vec<Lit> = t
            .iter()
            .copied()
            .filter(|l| t.level_of(l.var()) == 0)
            .collect();
        let mut unassigned = Vec::new();
        t.backtrack_to(0, |v| unassigned.push(v));
        assert_eq!(t.decision_level(), 0, "no decision levels survive");
        assert_eq!(
            t.as_slice(),
            &root_facts[..],
            "exactly the level-0 facts survive a full restart"
        );
        let survivors = t.len();
        // Unassigned count + survivors account for every prior assignment.
        for v in &unassigned {
            assert_eq!(t.value(*v), LBool::Undef);
        }
        // The wiped trail accepts a fresh script like a new trail would.
        let mut t2 = Trail::new();
        t2.grow(NUM_VARS);
        for l in &root_facts {
            t2.assign(*l, None);
        }
        assert_eq!(t.len(), t2.len());
        assert_eq!(t.as_slice(), t2.as_slice());
        assert_eq!(survivors + unassigned.len(), root_facts.len() + unassigned.len());
    }
}
