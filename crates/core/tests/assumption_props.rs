//! Property tests for incremental solving under assumptions: on random
//! clause batches with random assumption sets, the incremental solver (one
//! long-lived object accumulating clauses and warm heuristic state) must
//! agree with a fresh scratch solver on every prefix, every SAT model must
//! satisfy its assumptions, and every reported failed core must itself be
//! UNSAT-forcing.

use berkmin::{SolveStatus, Solver, SolverConfig};
use berkmin_cnf::Lit;
use proptest::prelude::*;

const MAX_VAR: u32 = 8;

/// One randomized increment: a batch of clauses to add, then a query under
/// an assumption set. Literals are DIMACS-style signed variable numbers.
type Batch = (Vec<Vec<i32>>, Vec<i32>);

fn dimacs_lit() -> impl Strategy<Value = i32> {
    (1u32..=MAX_VAR, any::<bool>()).prop_map(|(v, neg)| if neg { -(v as i32) } else { v as i32 })
}

fn clause() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(dimacs_lit(), 1..=3)
}

fn batch() -> impl Strategy<Value = Batch> {
    (
        prop::collection::vec(clause(), 1..=12),
        prop::collection::vec(dimacs_lit(), 0..=3),
    )
}

fn lits(ns: &[i32]) -> Vec<Lit> {
    ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
}

/// Session-API shorthand: stage `assumptions` and run one solve call.
fn solve_under(s: &mut Solver, assumptions: &[Lit]) -> SolveStatus {
    for &a in assumptions {
        s.assume(a);
    }
    s.solve()
}

/// Scratch oracle: a fresh solver over `clauses` with the assumptions added
/// as unit clauses — `F` is UNSAT under assumptions `A` iff `F ∧ A` is
/// unsatisfiable.
fn scratch_verdict(clauses: &[Vec<i32>], assumptions: &[Lit]) -> bool {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    for c in clauses {
        s.add_clause(lits(c));
    }
    for &a in assumptions {
        s.add_clause([a]);
    }
    match s.solve() {
        SolveStatus::Sat(_) => true,
        SolveStatus::Unsat => false,
        SolveStatus::Unknown(r) => panic!("scratch aborted without budget: {r}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_matches_scratch_on_every_prefix(batches in prop::collection::vec(batch(), 1..=3)) {
        let mut incremental = Solver::with_config(SolverConfig::berkmin());
        let mut so_far: Vec<Vec<i32>> = Vec::new();
        for (clauses, assumptions) in &batches {
            for c in clauses {
                incremental.add_clause(lits(c));
                so_far.push(c.clone());
            }
            let assumptions = lits(assumptions);
            let expected = scratch_verdict(&so_far, &assumptions);
            match solve_under(&mut incremental, &assumptions) {
                SolveStatus::Sat(m) => {
                    prop_assert!(expected, "incremental SAT, scratch UNSAT");
                    for &a in &assumptions {
                        prop_assert!(m.satisfies(a), "model violates assumption {a:?}");
                    }
                    // The model satisfies every clause added so far.
                    for c in &so_far {
                        prop_assert!(
                            lits(c).iter().any(|&l| m.satisfies(l)),
                            "model falsifies clause {c:?}"
                        );
                    }
                    prop_assert!(incremental.failed_assumptions().is_empty());
                }
                SolveStatus::Unsat => {
                    prop_assert!(!expected, "incremental UNSAT, scratch SAT");
                    let core = incremental.failed_assumptions().to_vec();
                    for &c in &core {
                        prop_assert!(
                            assumptions.contains(&c),
                            "core literal {c:?} is not an assumption"
                        );
                    }
                    // The core alone (with the formula) is already UNSAT.
                    prop_assert!(
                        !scratch_verdict(&so_far, &core),
                        "reported core {core:?} is not UNSAT-forcing"
                    );
                    if core.is_empty() {
                        prop_assert!(!incremental.is_ok());
                    }
                }
                SolveStatus::Unknown(r) => {
                    return Err(TestCaseError::fail(format!("aborted without budget: {r}")));
                }
            }
        }
    }

    #[test]
    fn repeated_assumption_queries_are_stable(clauses in prop::collection::vec(clause(), 1..=15),
                                              asm in prop::collection::vec(dimacs_lit(), 1..=3)) {
        // Asking the same question twice on a warm solver must give the
        // same verdict (learnt clauses never change satisfiability).
        let mut s = Solver::with_config(SolverConfig::berkmin());
        for c in &clauses {
            s.add_clause(lits(c));
        }
        let assumptions = lits(&asm);
        let first = solve_under(&mut s, &assumptions).is_sat();
        let second = solve_under(&mut s, &assumptions).is_sat();
        prop_assert_eq!(first, second);
    }
}
