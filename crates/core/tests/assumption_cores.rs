//! Failed-assumption cores under *degenerate assumption sets* — duplicate
//! (`assume(x); assume(x)`) and contradictory (`assume(x); assume(¬x)`)
//! staging, and duplicates of propagated assumptions. Every core must be
//! duplicate-free, a subset of what was assumed, and UNSAT-forcing when
//! re-solved together with the formula.
//!
//! Written while auditing `analyze_final` for the integrity-layer issue:
//! the audit found the cores were already correct (each trail variable is
//! visited once and `seen` is cleared on the way out, so no literal can
//! enter a core twice), and these tests pin that behavior down.

use berkmin::{SolveStatus, Solver, SolverConfig};
use berkmin_cnf::Lit;

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

/// Asserts the three core invariants and returns the core.
fn certified_core(s: &Solver, assumed: &[Lit]) -> Vec<Lit> {
    let core = s.failed_assumptions().to_vec();
    let mut sorted = core.clone();
    sorted.sort_unstable_by_key(|l| l.code());
    sorted.dedup();
    assert_eq!(sorted.len(), core.len(), "core has duplicates: {core:?}");
    for l in &core {
        assert!(assumed.contains(l), "core literal {l:?} was never assumed");
    }
    core
}

/// Re-solves the formula built by `build` with `core` as assumptions; the
/// result must be UNSAT (the core really forces the conflict).
fn assert_core_forces_unsat(build: impl Fn(&mut Solver), core: &[Lit]) {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    build(&mut s);
    for &l in core {
        s.assume(l);
    }
    assert!(
        s.solve().is_unsat(),
        "core {core:?} does not force UNSAT on its own"
    );
}

#[test]
fn duplicate_assumption_refuted_at_root_yields_a_singleton_core() {
    // ¬x is a unit fact, x is assumed twice: the core must name x once.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(-1)]);
    s.assume(lit(1));
    s.assume(lit(1));
    assert!(s.solve().is_unsat());
    let core = certified_core(&s, &[lit(1)]);
    assert_eq!(core, vec![lit(1)]);
    // The refutation is formula-vs-assumption, not formula-internal.
    assert!(s.solve().is_sat(), "formula alone must stay SAT");
}

#[test]
fn duplicate_assumptions_in_a_deeper_conflict_stay_duplicate_free() {
    // x → y → z, assume x (twice) and ¬z (twice): the conflict is found
    // only after propagating through both implications.
    let build = |s: &mut Solver| {
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
    };
    let mut s = Solver::with_config(SolverConfig::berkmin());
    build(&mut s);
    for a in [lit(1), lit(1), lit(-3), lit(-3)] {
        s.assume(a);
    }
    assert!(s.solve().is_unsat());
    let core = certified_core(&s, &[lit(1), lit(-3)]);
    assert!(!core.is_empty());
    assert_core_forces_unsat(build, &core);
}

#[test]
fn contradictory_assumptions_on_a_free_variable_yield_the_pair() {
    // No clause mentions x3; assuming x3 and ¬x3 must still answer UNSAT
    // with a duplicate-free core that is UNSAT-forcing by itself.
    let build = |s: &mut Solver| {
        s.add_clause([lit(1), lit(2)]);
    };
    let mut s = Solver::with_config(SolverConfig::berkmin());
    build(&mut s);
    s.assume(lit(3));
    s.assume(lit(-3));
    assert!(s.solve().is_unsat());
    let core = certified_core(&s, &[lit(3), lit(-3)]);
    let mut sorted = core.clone();
    sorted.sort_unstable_by_key(|l| l.code());
    assert_eq!(sorted, vec![lit(3), lit(-3)], "core must be the pair");
    assert_core_forces_unsat(build, &core);
    // The session recovers: the next unconstrained call is SAT.
    assert!(s.solve().is_sat());
}

#[test]
fn contradiction_through_propagation_is_certified() {
    // assume x, then assume ¬y where x → y: the second assumption is
    // falsified by propagation from the first, not by a root fact.
    let build = |s: &mut Solver| {
        s.add_clause([lit(-1), lit(2)]);
    };
    let mut s = Solver::with_config(SolverConfig::berkmin());
    build(&mut s);
    s.assume(lit(1));
    s.assume(lit(-2));
    assert!(s.solve().is_unsat());
    let core = certified_core(&s, &[lit(1), lit(-2)]);
    assert_core_forces_unsat(build, &core);
    assert!(
        core.contains(&lit(-2)),
        "the directly falsified assumption must be in the core: {core:?}"
    );
}

#[test]
fn duplicate_of_an_already_propagated_assumption_opens_a_dummy_level() {
    // x propagates y at the first assumption level; assuming y again is a
    // no-op (dummy level), and the later conflict must still produce a
    // clean core — this exercises the `LBool::True` branch of assumption
    // installation followed by final-conflict analysis.
    let build = |s: &mut Solver| {
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(-3)]);
    };
    let mut s = Solver::with_config(SolverConfig::berkmin());
    build(&mut s);
    for a in [lit(1), lit(2), lit(3)] {
        s.assume(a);
    }
    assert!(s.solve().is_unsat());
    let core = certified_core(&s, &[lit(1), lit(2), lit(3)]);
    assert_core_forces_unsat(build, &core);
}

#[test]
fn mixed_duplicates_and_contradictions_across_a_warm_session() {
    // The same warm solver is queried repeatedly with ever-nastier
    // assumption sets; every UNSAT core must certify, every SAT model must
    // satisfy its assumptions.
    let mut s = Solver::with_config(SolverConfig::berkmin().with_paranoid(true));
    s.add_clause([lit(1), lit(2), lit(3)]);
    s.add_clause([lit(-1), lit(4)]);

    let queries: &[&[Lit]] = &[
        &[lit(1), lit(1)],
        &[lit(4), lit(-4)],
        &[lit(-4), lit(1)],
        &[lit(2), lit(2), lit(-2)],
        &[lit(-1), lit(-2), lit(-3)],
    ];
    for &assumed in queries {
        for &a in assumed {
            s.assume(a);
        }
        match s.solve() {
            SolveStatus::Sat(m) => {
                for &a in assumed {
                    assert!(m.satisfies(a), "model violates assumption {a:?}");
                }
                assert!(s.failed_assumptions().is_empty());
            }
            SolveStatus::Unsat => {
                let core = certified_core(&s, assumed);
                assert_core_forces_unsat(
                    |s| {
                        s.add_clause([lit(1), lit(2), lit(3)]);
                        s.add_clause([lit(-1), lit(4)]);
                    },
                    &core,
                );
            }
            SolveStatus::Unknown(r) => panic!("aborted without budget: {r}"),
        }
        s.audit_invariants().expect("warm session must stay clean");
    }
}
