//! Clause-sharing soundness, certified from outside the crate: every
//! clause a solver exports — and every clause another solver imports — must
//! be a consequence of the formula alone. Each captured clause C is
//! re-certified by solving F ∧ ¬C: if F ⊨ C that conjunction is UNSAT.

use std::cell::RefCell;
use std::rc::Rc;

use berkmin::{PortfolioConfig, PortfolioEngine, SatEngine, Solver, SolverBuilder, SolverConfig};
use berkmin_cnf::Lit;

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

/// The pigeonhole clauses PHP(holes+1 → holes) as plain literal vectors.
fn pigeonhole(holes: usize) -> Vec<Vec<Lit>> {
    let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
    let mut clauses = Vec::new();
    for p in 0..=holes {
        clauses.push((0..holes).map(|h| l(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                clauses.push(vec![!l(p1, h), !l(p2, h)]);
            }
        }
    }
    clauses
}

/// Certifies that each clause in `clauses` is implied by `formula`: a fresh
/// checker solves the formula with the clause's negation assumed and must
/// come back UNSAT.
fn certify_implied(clauses: &[Vec<Lit>], formula: &[Vec<Lit>], what: &str) {
    for clause in clauses {
        let mut checker = Solver::with_config(SolverConfig::berkmin());
        for c in formula {
            checker.add_clause(c.iter().copied());
        }
        for &l in clause {
            checker.assume(!l);
        }
        assert!(
            checker.solve().is_unsat(),
            "{what} clause {clause:?} is not implied by the formula"
        );
    }
}

#[test]
fn exported_clauses_pass_the_filter_and_are_formula_implied() {
    let formula = pigeonhole(5);
    let cap = 3u32;
    type ExportLog = Rc<RefCell<Vec<(Vec<Lit>, u32)>>>;
    let exported: ExportLog = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&exported);
    let mut builder =
        SolverBuilder::with_config(SolverConfig::berkmin()).share_export(cap, move |lits, lbd| {
            tap.borrow_mut().push((lits.to_vec(), lbd));
        });
    for c in &formula {
        builder = builder.clause(c.iter().copied());
    }
    let mut solver = builder.build();
    assert!(solver.solve().is_unsat());

    let exported = exported.borrow();
    assert!(
        !exported.is_empty(),
        "PHP(5) must export some learnt clauses"
    );
    for (clause, lbd) in exported.iter() {
        assert!(
            clause.len() <= 2 || *lbd <= cap,
            "exported clause {clause:?} (lbd {lbd}) violates the filter"
        );
    }
    let clauses: Vec<Vec<Lit>> = exported.iter().map(|(c, _)| c.clone()).collect();
    certify_implied(&clauses, &formula, "exported");
}

#[test]
fn imported_clauses_are_formula_implied_and_preserve_the_verdict() {
    // Sequential two-solver sharing: solver A solves PHP(5) and exports its
    // good learnt clauses; solver B then solves the same formula with those
    // clauses fed through its import source. B's import must not change the
    // verdict, and every clause B actually ingested must be a consequence
    // of the formula alone — checked by negation-assumption re-solving.
    let formula = pigeonhole(5);

    let pool: Rc<RefCell<Vec<Vec<Lit>>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&pool);
    let mut builder = SolverBuilder::with_config(SolverConfig::berkmin())
        .share_export(3, move |lits, _| tap.borrow_mut().push(lits.to_vec()));
    for c in &formula {
        builder = builder.clause(c.iter().copied());
    }
    let mut exporter = builder.build();
    assert!(exporter.solve().is_unsat());
    assert!(!pool.borrow().is_empty(), "exporter published nothing");

    let imported: Rc<RefCell<Vec<Vec<Lit>>>> = Rc::new(RefCell::new(Vec::new()));
    let log = Rc::clone(&imported);
    let source = Rc::clone(&pool);
    let mut cursor = 0usize;
    let mut builder =
        SolverBuilder::with_config(SolverConfig::chaff_like()).share_import(move |buf| {
            let pool = source.borrow();
            for clause in &pool[cursor..] {
                buf.push(clause.clone());
                log.borrow_mut().push(clause.clone());
            }
            cursor = pool.len();
        });
    for c in &formula {
        builder = builder.clause(c.iter().copied());
    }
    let mut importer = builder.build();
    assert!(
        importer.solve().is_unsat(),
        "importing sound clauses must not change the verdict"
    );
    assert!(
        importer.stats().clauses_imported > 0,
        "the import source was never drained"
    );
    certify_implied(&imported.borrow(), &formula, "imported");
}

#[test]
fn sharing_portfolio_agrees_with_a_lone_reference_solver() {
    // End-to-end: the deterministic sharing portfolio and a lone BerkMin
    // must agree on PHP (UNSAT) and on PHP with one pigeon removed (SAT).
    let unsat = pigeonhole(5);
    let sat: Vec<Vec<Lit>> = pigeonhole(5)
        .into_iter()
        .filter(|c| !c.contains(&lit(1)) || c.len() == 2)
        .collect();
    for (formula, expect_sat) in [(&unsat, false), (&sat, true)] {
        let mut reference = Solver::with_config(SolverConfig::berkmin());
        for c in formula.iter() {
            reference.add_clause(c.iter().copied());
        }
        assert_eq!(reference.solve().is_sat(), expect_sat);

        let config = PortfolioConfig::new(2)
            .with_share_lbd(Some(4))
            .with_deterministic(true);
        let mut portfolio = PortfolioEngine::new(config);
        for c in formula.iter() {
            portfolio.add_clause(c);
        }
        assert_eq!(
            portfolio.solve().is_sat(),
            expect_sat,
            "portfolio disagrees with the reference solver"
        );
    }
}
