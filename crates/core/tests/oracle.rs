//! Cross-checks every solver configuration against the brute-force
//! enumeration oracle on thousands of small random formulas, and checks
//! that all configurations agree with each other on larger ones.

use berkmin::{Budget, RestartPolicy, SolveStatus, Solver, SolverConfig, TopClausePolarity};
use berkmin_cnf::{Cnf, Lit, Var};
use proptest::prelude::*;

/// All paper configurations worth cross-checking.
fn all_configs() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("berkmin", SolverConfig::berkmin()),
        ("less_sensitivity", SolverConfig::less_sensitivity()),
        ("less_mobility", SolverConfig::less_mobility()),
        (
            "sat_top",
            SolverConfig::with_top_polarity(TopClausePolarity::SatTop),
        ),
        (
            "unsat_top",
            SolverConfig::with_top_polarity(TopClausePolarity::UnsatTop),
        ),
        (
            "take_0",
            SolverConfig::with_top_polarity(TopClausePolarity::Take0),
        ),
        (
            "take_1",
            SolverConfig::with_top_polarity(TopClausePolarity::Take1),
        ),
        (
            "take_rand",
            SolverConfig::with_top_polarity(TopClausePolarity::TakeRand),
        ),
        ("limited_keeping", SolverConfig::limited_keeping()),
        ("chaff_like", SolverConfig::chaff_like()),
        ("limmat_like", SolverConfig::limmat_like()),
        ("minimizing", {
            let mut c = SolverConfig::berkmin();
            c.minimize_learnt = true;
            c
        }),
        ("heap_index", {
            let mut c = SolverConfig::berkmin();
            c.activity_index = berkmin::ActivityIndex::Heap;
            c
        }),
        ("luby", {
            let mut c = SolverConfig::berkmin();
            c.restart = RestartPolicy::Luby(4); // restart very aggressively
            c
        }),
        ("restart_every_2", {
            let mut c = SolverConfig::berkmin();
            c.restart = RestartPolicy::FixedInterval(2); // stress reduction
            c
        }),
        ("never_restart", {
            let mut c = SolverConfig::berkmin();
            c.restart = RestartPolicy::Never;
            c
        }),
    ]
}

fn arb_cnf(max_vars: u32, max_clauses: usize, max_len: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..max_vars, any::<bool>()), 1..=max_len),
        1..=max_clauses,
    )
    .prop_map(|clauses| {
        let mut cnf = Cnf::with_vars(0);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, neg)| Lit::new(Var::new(v), neg)));
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The flagship soundness test: the default solver's verdict matches
    /// exhaustive enumeration, and SAT models check out.
    #[test]
    fn berkmin_matches_enumeration(cnf in arb_cnf(8, 24, 4)) {
        let oracle = cnf.solve_by_enumeration();
        let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
        match solver.solve() {
            SolveStatus::Sat(model) => {
                prop_assert!(oracle.is_some(), "solver said SAT, oracle says UNSAT");
                prop_assert!(cnf.is_satisfied_by(&model), "model does not satisfy formula");
            }
            SolveStatus::Unsat => prop_assert!(oracle.is_none(), "solver said UNSAT, oracle found a model"),
            SolveStatus::Unknown(r) => prop_assert!(false, "unlimited run aborted: {r}"),
        }
    }

    /// Every configuration arm is a *complete* solver: all agree with the
    /// oracle even under pathological restart/reduction schedules.
    #[test]
    fn every_config_matches_enumeration(cnf in arb_cnf(6, 18, 3)) {
        let oracle_sat = cnf.solve_by_enumeration().is_some();
        for (name, cfg) in all_configs() {
            let mut solver = Solver::new(&cnf, cfg);
            match solver.solve() {
                SolveStatus::Sat(model) => {
                    prop_assert!(oracle_sat, "{name}: SAT but oracle disagrees");
                    prop_assert!(cnf.is_satisfied_by(&model), "{name}: bad model");
                }
                SolveStatus::Unsat => prop_assert!(!oracle_sat, "{name}: UNSAT but oracle disagrees"),
                SolveStatus::Unknown(r) => prop_assert!(false, "{name}: aborted: {r}"),
            }
        }
    }

    /// Budgeted runs never return a wrong answer — only Sat/Unsat/Unknown.
    #[test]
    fn budgeted_runs_stay_sound(cnf in arb_cnf(8, 24, 4), budget in 1u64..20) {
        let oracle_sat = cnf.solve_by_enumeration().is_some();
        let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(budget));
        let mut solver = Solver::new(&cnf, cfg);
        match solver.solve() {
            SolveStatus::Sat(model) => {
                prop_assert!(oracle_sat);
                prop_assert!(cnf.is_satisfied_by(&model));
            }
            SolveStatus::Unsat => prop_assert!(!oracle_sat),
            SolveStatus::Unknown(_) => {} // allowed under budget
        }
    }

    /// Determinism: same formula, same config, same seed ⇒ identical stats.
    #[test]
    fn runs_are_deterministic(cnf in arb_cnf(7, 20, 3), seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut s = Solver::new(&cnf, SolverConfig::berkmin().with_seed(seed));
            let sat = s.solve().is_sat();
            (sat, s.stats().decisions, s.stats().conflicts, s.stats().propagations)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

/// A deterministic stress case: larger random 3-SAT near the phase
/// transition, cross-checked between all configurations (no oracle — they
/// must simply agree).
#[test]
fn configs_agree_on_phase_transition_3sat() {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for instance in 0..6 {
        let n = 30;
        let m = (n as f64 * 4.26) as usize;
        let mut cnf = Cnf::with_vars(n);
        for _ in 0..m {
            let mut lits = Vec::new();
            while lits.len() < 3 {
                let v = (next() % n as u64) as u32;
                if lits.iter().any(|l: &Lit| l.var() == Var::new(v)) {
                    continue;
                }
                lits.push(Lit::new(Var::new(v), next() & 1 == 1));
            }
            cnf.add_clause(lits);
        }
        let mut verdicts = Vec::new();
        for (name, cfg) in all_configs() {
            let mut solver = Solver::new(&cnf, cfg);
            match solver.solve() {
                SolveStatus::Sat(model) => {
                    assert!(
                        cnf.is_satisfied_by(&model),
                        "{name}: bad model on #{instance}"
                    );
                    verdicts.push((name, true));
                }
                SolveStatus::Unsat => verdicts.push((name, false)),
                SolveStatus::Unknown(r) => panic!("{name}: aborted on #{instance}: {r}"),
            }
        }
        let first = verdicts[0].1;
        for (name, v) in &verdicts {
            assert_eq!(*v, first, "{name} disagrees on instance #{instance}");
        }
    }
}
