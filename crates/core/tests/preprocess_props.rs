//! Property tests for the preprocessing subsystem: simplification must
//! preserve satisfiability on every formula family (random CNF, planted
//! k-SAT, XOR chains), SAT models must reconstruct over eliminated
//! variables back to the *original* formula, and a frozen incremental
//! session must agree call-for-call with an unsimplified twin.

use berkmin::{SimplifyConfig, SolveStatus, Solver, SolverConfig};
use berkmin_cnf::{Cnf, Lit, Var};
use proptest::prelude::*;

/// The full pipeline: subsumption, strengthening and bounded variable
/// elimination, re-run before every solve.
fn simplify_on() -> SolverConfig {
    SolverConfig::berkmin().with_simplify(SimplifyConfig::full())
}

fn simplify_off() -> SolverConfig {
    SolverConfig::berkmin().with_simplify(SimplifyConfig::off())
}

fn arb_cnf(max_vars: u32, max_clauses: usize, max_len: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..max_vars, any::<bool>()), 1..=max_len),
        1..=max_clauses,
    )
    .prop_map(|clauses| {
        let mut cnf = Cnf::with_vars(0);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, neg)| Lit::new(Var::new(v), neg)));
        }
        cnf
    })
}

/// Planted 3-SAT: every clause is forced to agree with a hidden model in
/// at least one literal, so the instance is SAT by construction — and
/// elimination-heavy simplification must not lose that model family.
fn arb_planted(num_vars: u32, num_clauses: usize) -> impl Strategy<Value = (Cnf, Vec<bool>)> {
    (
        prop::collection::vec(any::<bool>(), num_vars as usize),
        prop::collection::vec(
            (
                prop::collection::vec((0..num_vars, any::<bool>()), 3),
                0..3usize,
            ),
            1..=num_clauses,
        ),
    )
        .prop_map(move |(plant, raw)| {
            let mut cnf = Cnf::with_vars(num_vars as usize);
            for (mut lits, agree_at) in raw {
                // Force the chosen literal to agree with the plant.
                let (v, ref mut neg) = lits[agree_at];
                *neg = !plant[v as usize];
                cnf.add_clause(lits.into_iter().map(|(v, neg)| Lit::new(Var::new(v), neg)));
            }
            (cnf, plant)
        })
}

/// An XOR chain `x_1 ⊕ x_2 = b_1, …, x_{n-1} ⊕ x_n = b_{n-1}` with both
/// ends pinned. Each equality is two binary clauses; the instance is SAT
/// iff the pinned ends are consistent with the accumulated parity — which
/// the generator computes, so the expected verdict is known exactly.
fn xor_chain(bits: &[bool], first: bool, last: bool) -> (Cnf, bool) {
    let n = bits.len() + 1;
    let mut cnf = Cnf::with_vars(n);
    let lit = |i: usize, neg: bool| Lit::new(Var::new(i as u32), neg);
    for (i, &b) in bits.iter().enumerate() {
        if b {
            // x_i ⊕ x_{i+1} = 1: (x_i ∨ x_{i+1}) ∧ (¬x_i ∨ ¬x_{i+1})
            cnf.add_clause([lit(i, false), lit(i + 1, false)]);
            cnf.add_clause([lit(i, true), lit(i + 1, true)]);
        } else {
            // x_i ⊕ x_{i+1} = 0: (¬x_i ∨ x_{i+1}) ∧ (x_i ∨ ¬x_{i+1})
            cnf.add_clause([lit(i, true), lit(i + 1, false)]);
            cnf.add_clause([lit(i, false), lit(i + 1, true)]);
        }
    }
    cnf.add_clause([lit(0, !first)]);
    cnf.add_clause([lit(n - 1, !last)]);
    let parity = bits.iter().fold(first, |acc, &b| acc ^ b);
    (cnf, parity == last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Equisatisfiability against exhaustive enumeration: the fully
    /// simplifying solver reaches the oracle's verdict, and its SAT models
    /// — reconstructed over any eliminated variables — satisfy the
    /// *original* formula clause for clause.
    #[test]
    fn simplified_verdicts_match_enumeration(cnf in arb_cnf(8, 24, 4)) {
        let oracle = cnf.solve_by_enumeration();
        let mut solver = Solver::new(&cnf, simplify_on());
        match solver.solve() {
            SolveStatus::Sat(model) => {
                prop_assert!(oracle.is_some(), "simplified solver said SAT, oracle says UNSAT");
                prop_assert!(cnf.is_satisfied_by(&model), "reconstructed model violates the original formula");
            }
            SolveStatus::Unsat => prop_assert!(oracle.is_none(), "simplified solver said UNSAT, oracle found a model"),
            SolveStatus::Unknown(r) => prop_assert!(false, "unlimited run aborted: {r}"),
        }
    }

    /// On/off agreement on random CNF: simplification changes the search,
    /// never the verdict.
    #[test]
    fn on_and_off_agree_on_random_cnf(cnf in arb_cnf(10, 32, 4)) {
        let on = Solver::new(&cnf, simplify_on()).solve().is_sat();
        let off = Solver::new(&cnf, simplify_off()).solve().is_sat();
        prop_assert_eq!(on, off, "simplification flipped the verdict");
    }

    /// Planted k-SAT stays SAT through elimination, and the reconstructed
    /// model satisfies every original clause (not merely the survivors).
    #[test]
    fn planted_ksat_models_reconstruct(planted in arb_planted(12, 40)) {
        let (cnf, _plant) = planted;
        let mut solver = Solver::new(&cnf, simplify_on());
        match solver.solve() {
            SolveStatus::Sat(model) => {
                prop_assert!(cnf.is_satisfied_by(&model), "model violates a planted clause");
            }
            other => prop_assert!(false, "planted instance must be SAT, got {other:?}"),
        }
    }

    /// XOR chains: binary-clause equalities are prime strengthening and
    /// elimination fodder; the verdict must still match the parity
    /// arithmetic, with simplification on and off.
    #[test]
    fn xor_chains_preserve_satisfiability(
        bits in prop::collection::vec(any::<bool>(), 1..12),
        first in any::<bool>(),
        last in any::<bool>(),
    ) {
        let (cnf, expect_sat) = xor_chain(&bits, first, last);
        for cfg in [simplify_on(), simplify_off()] {
            let mut solver = Solver::new(&cnf, cfg);
            match solver.solve() {
                SolveStatus::Sat(model) => {
                    prop_assert!(expect_sat, "chain parity is inconsistent yet solver said SAT");
                    prop_assert!(cnf.is_satisfied_by(&model));
                }
                SolveStatus::Unsat => prop_assert!(!expect_sat, "chain parity is consistent yet solver said UNSAT"),
                SolveStatus::Unknown(r) => prop_assert!(false, "unlimited run aborted: {r}"),
            }
        }
    }

    /// Frozen incremental prefix agreement: a session that freezes every
    /// variable its future ops will mention must produce the same verdict
    /// sequence as an unsimplified twin — freezing keeps elimination away
    /// from exactly the variables the session comes back to.
    #[test]
    fn frozen_incremental_sessions_agree(
        base in arb_cnf(8, 20, 3),
        extra in prop::collection::vec(
            prop::collection::vec((0..8u32, any::<bool>()), 1..=3),
            1..6,
        ),
        assumption in (0..8u32, any::<bool>()),
    ) {
        let mut on = Solver::new(&base, simplify_on());
        let mut off = Solver::new(&base, simplify_off());
        // Freeze the future: every variable the later ops mention.
        for clause in &extra {
            for &(v, _) in clause {
                on.freeze(Var::new(v));
            }
        }
        on.freeze(Var::new(assumption.0));
        prop_assert_eq!(on.solve().is_sat(), off.solve().is_sat(), "prefix verdicts differ");
        for clause in &extra {
            let lits: Vec<Lit> = clause.iter().map(|&(v, neg)| Lit::new(Var::new(v), neg)).collect();
            on.add_clause(lits.iter().copied());
            off.add_clause(lits.iter().copied());
        }
        let a = Lit::new(Var::new(assumption.0), assumption.1);
        on.assume(a);
        off.assume(a);
        let (von, voff) = (on.solve(), off.solve());
        prop_assert_eq!(von.is_sat(), voff.is_sat(), "extended verdicts differ");
        if let SolveStatus::Sat(model) = von {
            prop_assert!(base.is_satisfied_by(&model), "model violates the base formula");
            prop_assert!(model.satisfies(a), "model violates the assumption");
        }
    }
}

/// A deterministic instance where elimination is guaranteed to fire:
/// a long implication chain has singleton occurrence counts everywhere, so
/// the bounded heuristic eliminates interior variables — and the model the
/// caller sees must still value every original variable consistently.
#[test]
fn chain_elimination_reconstructs_interior_variables() {
    let n = 20usize;
    let mut cnf = Cnf::with_vars(n);
    for i in 0..n - 1 {
        // x_i → x_{i+1}
        cnf.add_clause([
            Lit::new(Var::new(i as u32), true),
            Lit::new(Var::new(i as u32 + 1), false),
        ]);
    }
    let mut solver = Solver::new(&cnf, simplify_on());
    let status = solver.solve();
    let SolveStatus::Sat(model) = status else {
        panic!("chain is satisfiable, got {status:?}");
    };
    assert!(
        solver.stats().vars_eliminated > 0,
        "the chain must eliminate at least one interior variable"
    );
    assert!(
        cnf.is_satisfied_by(&model),
        "reconstruction broke the chain"
    );
}
