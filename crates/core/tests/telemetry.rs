//! Event-stream consistency: the structured telemetry layer must agree
//! with the counters in [`Stats`] — every restart and reduction the stats
//! claim happened must have produced exactly one event, `SolveDone` deltas
//! must match the per-call spend, and a solver without an observer must
//! emit nothing at all (there is no side channel to check that last one
//! through, so it is pinned structurally: the observer slot is the only
//! path events can travel).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use berkmin::{
    Budget, PortfolioConfig, PortfolioEngine, SatEngine, SolveEvent, SolveVerdict, Solver,
    SolverBuilder, SolverConfig,
};
use berkmin_cnf::Lit;

/// hole(n): n+1 pigeons in n holes — UNSAT with plenty of conflicts,
/// restarts and reductions to exercise every emission site.
fn pigeonhole(n: usize) -> Vec<Vec<Lit>> {
    let lit = |p: usize, h: usize| Lit::from_dimacs((p * n + h + 1) as i32);
    let mut clauses = Vec::new();
    for p in 0..=n {
        clauses.push((0..n).map(|h| lit(p, h)).collect());
    }
    for h in 0..n {
        for p1 in 0..=n {
            for p2 in (p1 + 1)..=n {
                clauses.push(vec![!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    clauses
}

/// Running tallies of every event kind, kept by the test observers.
#[derive(Debug, Default, Clone, PartialEq)]
struct Tally {
    solve_starts: u64,
    solve_dones: Vec<(SolveVerdict, u64, u64, u64, u64)>,
    restarts: u64,
    reduces: u64,
    simplifies: u64,
    progress: u64,
    worker_starts: Vec<usize>,
    worker_dones: Vec<usize>,
    tagged: u64,
    untagged_inner: u64,
}

impl Tally {
    fn record(&mut self, event: &SolveEvent) {
        match event {
            SolveEvent::SolveStart { .. } => self.solve_starts += 1,
            SolveEvent::SolveDone {
                verdict,
                conflicts,
                decisions,
                propagations,
                restarts,
            } => {
                self.solve_dones
                    .push((*verdict, *conflicts, *decisions, *propagations, *restarts))
            }
            SolveEvent::Restart { .. } => self.restarts += 1,
            SolveEvent::Simplify {
                clauses_before,
                clauses_after,
                ..
            } => {
                assert!(
                    clauses_after <= clauses_before,
                    "simplification must not grow the original formula"
                );
                self.simplifies += 1;
            }
            SolveEvent::Reduce {
                live_before,
                live_after,
                ..
            } => {
                assert!(live_after <= live_before, "reduction must not grow the DB");
                self.reduces += 1;
            }
            SolveEvent::Progress { .. } => self.progress += 1,
            SolveEvent::WorkerStart { worker } => self.worker_starts.push(*worker),
            SolveEvent::WorkerDone { worker, .. } => self.worker_dones.push(*worker),
            SolveEvent::Worker { event, .. } => {
                self.tagged += 1;
                assert!(
                    !matches!(
                        **event,
                        SolveEvent::Worker { .. }
                            | SolveEvent::WorkerStart { .. }
                            | SolveEvent::WorkerDone { .. }
                    ),
                    "worker tags never nest"
                );
            }
            SolveEvent::ShareExport { .. }
            | SolveEvent::ShareImport { .. }
            | SolveEvent::PoolEvicted { .. } => self.untagged_inner += 1,
        }
    }
}

#[test]
fn restart_and_reduce_events_match_stats() {
    let tally = Rc::new(RefCell::new(Tally::default()));
    let tap = Rc::clone(&tally);
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .on_event(move |e: &SolveEvent| tap.borrow_mut().record(e))
        .build();
    for c in pigeonhole(6) {
        solver.add_clause(c);
    }
    assert!(solver.solve().is_unsat());

    let t = tally.borrow();
    let stats = solver.stats();
    assert!(stats.restarts > 0, "hole(6) must restart at least once");
    assert_eq!(t.restarts, stats.restarts, "one Restart event per restart");
    assert_eq!(
        t.reduces, stats.reductions,
        "one Reduce event per reduction"
    );
    assert_eq!(t.solve_starts, 1);
    assert_eq!(t.solve_dones.len(), 1);
}

#[test]
fn solve_done_deltas_match_per_call_spend() {
    let tally = Rc::new(RefCell::new(Tally::default()));
    let tap = Rc::clone(&tally);
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .on_event(move |e: &SolveEvent| tap.borrow_mut().record(e))
        .build();
    for c in pigeonhole(5) {
        solver.add_clause(c);
    }
    assert!(solver.solve().is_unsat());
    let after_first = solver.stats().clone();
    // A second call on the now-refuted formula is short-circuited; its
    // deltas must be zero, not the lifetime totals.
    assert!(solver.solve().is_unsat());

    let t = tally.borrow();
    assert_eq!(t.solve_dones.len(), 2);
    let (v1, c1, d1, p1, r1) = t.solve_dones[0];
    assert_eq!(v1, SolveVerdict::Unsat);
    assert_eq!(c1, after_first.conflicts);
    assert_eq!(d1, after_first.decisions);
    assert_eq!(p1, after_first.propagations);
    assert_eq!(r1, after_first.restarts);
    let (v2, c2, d2, p2, r2) = t.solve_dones[1];
    assert_eq!(v2, SolveVerdict::Unsat);
    assert_eq!((c2, d2, p2, r2), (0, 0, 0, 0));
}

#[test]
fn progress_ticks_follow_the_configured_period() {
    let tally = Rc::new(RefCell::new(Tally::default()));
    let tap = Rc::clone(&tally);
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin().with_progress_every(10))
        .on_event(move |e: &SolveEvent| tap.borrow_mut().record(e))
        .build();
    for c in pigeonhole(6) {
        solver.add_clause(c);
    }
    assert!(solver.solve().is_unsat());
    let conflicts = solver.stats().conflicts;
    let ticks = tally.borrow().progress;
    assert!(ticks > 0, "hole(6) spends far more than 10 conflicts");
    assert_eq!(ticks, conflicts / 10, "one tick per 10 conflicts");
}

#[test]
fn observerless_solver_reports_no_observer() {
    // The observer slot is the only channel events travel through; an
    // unset slot (the default) means no event is ever constructed. Pin
    // that the builder leaves it unset and that solving works without it.
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin()).build();
    for c in pigeonhole(5) {
        solver.add_clause(c);
    }
    assert!(format!("{solver:?}").contains("observer: false"));
    assert!(solver.solve().is_unsat());
}

#[test]
fn clearing_the_observer_stops_the_stream() {
    let tally = Rc::new(RefCell::new(Tally::default()));
    let tap = Rc::clone(&tally);
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .on_event(move |e: &SolveEvent| tap.borrow_mut().record(e))
        .build();
    for c in pigeonhole(4) {
        solver.add_clause(c);
    }
    assert!(solver.solve().is_unsat());
    let seen = tally.borrow().clone();
    assert!(seen.solve_starts == 1 && seen.solve_dones.len() == 1);

    Solver::set_observer(&mut solver, None);
    assert!(solver.solve().is_unsat());
    assert_eq!(*tally.borrow(), seen, "no events after clearing");
}

/// Shared tally for portfolio observers (must be `Send`).
type SharedTally = Arc<Mutex<Tally>>;

fn observed_portfolio(config: PortfolioConfig) -> (PortfolioEngine, SharedTally) {
    let tally: SharedTally = Arc::new(Mutex::new(Tally::default()));
    let tap = Arc::clone(&tally);
    let mut engine = PortfolioEngine::new(config);
    engine.set_observer(Some(Box::new(move |e: &SolveEvent| {
        tap.lock().unwrap().record(e)
    })));
    (engine, tally)
}

#[test]
fn deterministic_portfolio_tags_worker_events() {
    let (mut engine, tally) = observed_portfolio(
        PortfolioConfig::new(2)
            .with_deterministic(true)
            .with_share_lbd(Some(8)),
    );
    for c in pigeonhole(6) {
        engine.add_clause(&c);
    }
    assert!(engine.solve().is_unsat());

    let t = tally.lock().unwrap();
    assert_eq!(t.solve_starts, 1, "one portfolio-level SolveStart");
    assert_eq!(t.solve_dones.len(), 1);
    assert_eq!(t.solve_dones[0].0, SolveVerdict::Unsat);
    assert_eq!(t.worker_starts, vec![0, 1], "WorkerStart in worker order");
    assert_eq!(t.worker_dones, vec![0, 1], "WorkerDone in worker order");
    assert!(t.tagged > 0, "worker solver events arrive tagged");
    assert_eq!(
        t.restarts, 0,
        "untagged Restart events are portfolio-level only; workers' are wrapped"
    );
    // SolveDone deltas cover the whole race (sum of the workers' spend).
    assert_eq!(t.solve_dones[0].1, engine.stats().conflicts);
}

#[test]
fn deterministic_portfolio_event_stream_is_reproducible() {
    let run = || {
        let (mut engine, tally) = observed_portfolio(
            PortfolioConfig::new(2)
                .with_deterministic(true)
                .with_share_lbd(Some(4)),
        );
        for c in pigeonhole(5) {
            engine.add_clause(&c);
        }
        assert!(engine.solve().is_unsat());
        let t = tally.lock().unwrap().clone();
        t
    };
    assert_eq!(run(), run());
}

#[test]
fn threaded_portfolio_tags_worker_events() {
    let (mut engine, tally) = observed_portfolio(PortfolioConfig::new(2).with_share_lbd(Some(8)));
    for c in pigeonhole(5) {
        engine.add_clause(&c);
    }
    assert!(engine.solve().is_unsat());

    let t = tally.lock().unwrap();
    assert_eq!(t.solve_starts, 1);
    assert_eq!(t.solve_dones.len(), 1);
    // Scheduling decides the interleaving, but every worker starts and
    // finishes exactly once.
    let mut starts = t.worker_starts.clone();
    let mut dones = t.worker_dones.clone();
    starts.sort_unstable();
    dones.sort_unstable();
    assert_eq!(starts, vec![0, 1]);
    assert_eq!(dones, vec![0, 1]);
    assert!(t.tagged > 0);
}

#[test]
fn portfolio_pre_simplification_emits_one_event() {
    let (mut engine, tally) = observed_portfolio(
        PortfolioConfig::new(2)
            .with_deterministic(true)
            .with_share_lbd(None),
    );
    engine.add_clause(&[Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    engine.add_clause(&[
        Lit::from_dimacs(1),
        Lit::from_dimacs(2),
        Lit::from_dimacs(3),
    ]);
    assert!(engine.solve().is_sat());
    assert!(engine.solve().is_sat());
    let t = tally.lock().unwrap();
    assert_eq!(
        t.simplifies, 1,
        "the default preset pre-simplifies the first call only"
    );
}

#[test]
fn portfolio_observer_survives_across_calls() {
    let (mut engine, tally) = observed_portfolio(
        PortfolioConfig::new(2)
            .with_deterministic(true)
            .with_share_lbd(None)
            .with_budget(Budget::conflicts(3)),
    );
    for c in pigeonhole(6) {
        engine.add_clause(&c);
    }
    assert!(engine.solve().is_unknown());
    assert!(engine.solve().is_unknown());
    let t = tally.lock().unwrap();
    assert_eq!(t.solve_starts, 2, "observer reclaimed between calls");
    assert_eq!(t.solve_dones.len(), 2);
    assert!(t
        .solve_dones
        .iter()
        .all(|(v, ..)| *v == SolveVerdict::Unknown));
}
