//! Session-API behavior: builder assembly, IPASIR-style assumption
//! staging, solve-event hooks (terminate + learnt-clause callbacks), and
//! trait objects.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use berkmin::{
    Budget, RestartPolicy, SatEngine, SolveStatus, Solver, SolverBuilder, SolverConfig, StopReason,
};
use berkmin_cnf::Lit;

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

/// Adds the pigeonhole clauses PHP(holes+1 → holes) to `s`.
fn add_pigeonhole(s: &mut Solver, holes: usize) {
    let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
    for p in 0..=holes {
        s.add_clause((0..holes).map(|h| l(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                s.add_clause([!l(p1, h), !l(p2, h)]);
            }
        }
    }
}

/// The object-safety guarantee, checked at compile time from *outside* the
/// crate: `dyn SatEngine` must always be a formable type.
#[allow(dead_code)]
fn object_safety_compile_check(engine: Box<dyn SatEngine>) -> Box<dyn SatEngine> {
    fn by_ref(_: &mut dyn SatEngine) {}
    engine
}

#[test]
fn assumptions_are_consumed_per_call() {
    let mut s = SolverBuilder::new().clause([lit(1), lit(2)]).build();
    s.assume(lit(-1));
    s.assume(lit(-2));
    assert!(s.solve().is_unsat());
    assert_eq!(s.failed_assumptions().len(), 2);
    // The next call is unconstrained: the staged set was consumed.
    assert!(s.solve().is_sat());
    assert!(s.failed_assumptions().is_empty());
}

#[test]
fn terminate_callback_aborts_with_callback_reason_and_spares_budgets() {
    // Restart every conflict so the callback is polled densely; abort on
    // the third poll (the first poll happens at solve entry).
    let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(10));
    let mut cfg = cfg;
    cfg.restart = RestartPolicy::FixedInterval(1);
    let polls = Rc::new(Cell::new(0u32));
    let tap = Rc::clone(&polls);
    let mut s = SolverBuilder::with_config(cfg)
        .on_terminate(move || {
            tap.set(tap.get() + 1);
            tap.get() >= 3
        })
        .build();
    add_pigeonhole(&mut s, 6); // needs thousands of conflicts — never finishes here

    match s.solve() {
        SolveStatus::Unknown(StopReason::Callback) => {}
        other => panic!("expected callback stop, got {other:?}"),
    }
    assert!(polls.get() >= 3, "callback was not polled");
    let spent_under_callback = s.stats().conflicts;
    assert!(
        spent_under_callback < 10,
        "callback stop must preempt the conflict budget, spent {spent_under_callback}"
    );

    // Clearing the callback proves budgets were untouched: the next call
    // runs to its *full* fresh per-call allowance of 10 conflicts.
    s.set_terminate(None);
    match s.solve() {
        SolveStatus::Unknown(StopReason::ConflictBudget) => {}
        other => panic!("expected budget abort, got {other:?}"),
    }
    assert_eq!(
        s.stats().conflicts - spent_under_callback,
        10,
        "callback stop leaked into the next call's budget"
    );
}

#[test]
fn terminate_callback_fires_without_any_restart() {
    // Regression: the callback used to be polled only at solve entry and
    // restart boundaries, so RestartPolicy::Never (or a huge fixed
    // interval) starved it for the whole search. It must now also fire on
    // the fixed 1024-conflict cadence. PHP(7) needs ~2600 conflicts under
    // this config, so the solve cannot finish before the poll.
    let mut cfg = SolverConfig::berkmin();
    cfg.restart = RestartPolicy::Never;
    let polls = Rc::new(Cell::new(0u32));
    let tap = Rc::clone(&polls);
    let mut s = SolverBuilder::with_config(cfg)
        .on_terminate(move || {
            tap.set(tap.get() + 1);
            tap.get() >= 2 // first poll is solve entry; stop on the next
        })
        .build();
    add_pigeonhole(&mut s, 7);

    match s.solve() {
        SolveStatus::Unknown(StopReason::Callback) => {}
        other => panic!("expected callback stop, got {other:?}"),
    }
    assert_eq!(s.stats().restarts, 0, "no restart may fire in this test");
    assert_eq!(
        s.stats().conflicts,
        1024,
        "the in-search poll happens on the 1024-conflict cadence"
    );
    assert_eq!(polls.get(), 2, "entry poll + one cadence poll");
}

#[test]
fn terminate_callback_polled_at_solve_entry() {
    let mut s = SolverBuilder::new()
        .on_terminate(|| true)
        .clause([lit(1)])
        .build();
    match s.solve() {
        SolveStatus::Unknown(StopReason::Callback) => {}
        other => panic!("expected immediate callback stop, got {other:?}"),
    }
    assert_eq!(s.stats().conflicts, 0);
    assert_eq!(s.stats().decisions, 0);
}

#[test]
fn learnt_callback_clauses_are_implied_by_the_formula() {
    // Record every learnt clause (generous cap), then certify each one by
    // re-solving the same formula with the clause's negation assumed: if
    // F ⊨ C then F ∧ ¬C must be UNSAT.
    let learnt: Rc<RefCell<Vec<Vec<Lit>>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&learnt);
    let mut s = SolverBuilder::new()
        .on_learnt(usize::MAX, move |clause| {
            tap.borrow_mut().push(clause.to_vec())
        })
        .build();
    add_pigeonhole(&mut s, 4);
    assert!(s.solve().is_unsat());
    let learnt = learnt.borrow();
    assert!(!learnt.is_empty(), "PHP(4) must force learning");
    assert!(learnt.iter().all(|c| !c.is_empty()));

    for clause in learnt.iter() {
        let mut checker = Solver::with_config(SolverConfig::berkmin());
        add_pigeonhole(&mut checker, 4);
        for &l in clause {
            checker.assume(!l);
        }
        assert!(
            checker.solve().is_unsat(),
            "emitted clause {clause:?} is not implied by the formula"
        );
    }
}

#[test]
fn learnt_callback_honors_the_length_cap() {
    let lengths: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&lengths);
    let mut s = SolverBuilder::new()
        .on_learnt(2, move |clause| tap.borrow_mut().push(clause.len()))
        .build();
    add_pigeonhole(&mut s, 5);
    assert!(s.solve().is_unsat());
    let lengths = lengths.borrow();
    assert!(
        lengths.iter().all(|&n| n <= 2),
        "callback fired for a clause longer than the cap: {lengths:?}"
    );
}

#[test]
fn learnt_callback_never_sees_assumption_dependent_clauses() {
    // Learnt clauses under assumptions are consequences of the formula
    // alone; each must still be implied after the assumptions are gone.
    let learnt: Rc<RefCell<Vec<Vec<Lit>>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&learnt);
    let mut s = SolverBuilder::new()
        .on_learnt(usize::MAX, move |clause| {
            tap.borrow_mut().push(clause.to_vec())
        })
        .build();
    add_pigeonhole(&mut s, 4);
    s.assume(lit(1));
    assert!(s.solve().is_unsat());

    for clause in learnt.borrow().iter() {
        let mut checker = Solver::with_config(SolverConfig::berkmin());
        add_pigeonhole(&mut checker, 4);
        for &l in clause {
            checker.assume(!l);
        }
        assert!(
            checker.solve().is_unsat(),
            "assumption-era clause {clause:?} is not formula-implied"
        );
    }
}

#[test]
fn engine_trait_object_matches_concrete_solver() {
    // The same formula through `Box<dyn SatEngine>` and through the
    // concrete `Solver` must behave identically (same verdict, same
    // conflict count — the trait adds indirection, not behavior).
    let mut concrete = Solver::with_config(SolverConfig::berkmin());
    add_pigeonhole(&mut concrete, 5);
    assert!(concrete.solve().is_unsat());

    // Feed the identical clause set through the trait surface.
    let mut engine: Box<dyn SatEngine> =
        SolverBuilder::with_config(SolverConfig::berkmin()).build_engine();
    let holes = 5usize;
    let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
    for p in 0..=holes {
        let clause: Vec<Lit> = (0..holes).map(|h| l(p, h)).collect();
        engine.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                engine.add_clause(&[!l(p1, h), !l(p2, h)]);
            }
        }
    }
    assert!(engine.solve().is_unsat());
    assert_eq!(
        engine.stats().conflicts,
        concrete.stats().conflicts,
        "trait indirection changed the search"
    );
}
