//! Degenerate and empty-input edge cases at the library level: zero-var
//! zero-clause sessions, explicit empty clauses, reserved-but-unconstrained
//! variables, and solving before anything was added. The CLI equivalents
//! live in the workspace-root `cli.rs` test; the fuzz harness's seed corpus
//! (`berkmin-fuzz`) covers the same shapes differentially.

use berkmin::{SolveStatus, Solver, SolverBuilder, SolverConfig};
use berkmin_cnf::{LBool, Lit, Var};

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

#[test]
fn zero_vars_zero_clauses_is_sat_with_an_empty_model() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    match s.solve() {
        SolveStatus::Sat(m) => {
            assert_eq!(m.num_vars(), 0);
            assert!(m.is_total());
        }
        other => panic!("empty session must be SAT, got {other:?}"),
    }
    // And again — a decided empty session stays decided.
    assert!(s.solve().is_sat());
}

#[test]
fn reserved_vars_with_no_clauses_get_a_total_model() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.reserve_vars(5);
    match s.solve() {
        SolveStatus::Sat(m) => {
            assert_eq!(m.num_vars(), 5, "model must cover all reserved vars");
            assert!(m.is_total(), "every reserved var needs a value");
        }
        other => panic!("unconstrained vars must be SAT, got {other:?}"),
    }
}

#[test]
fn builder_reserve_then_empty_solve_matches_plain_solver() {
    let mut s = SolverBuilder::new().reserve_vars(3).build();
    let m = match s.solve() {
        SolveStatus::Sat(m) => m,
        other => panic!("expected SAT, got {other:?}"),
    };
    assert_eq!(m.num_vars(), 3);
    for i in 0..3 {
        assert_ne!(m.value(Var::new(i)), LBool::Undef);
    }
}

#[test]
fn explicit_empty_clause_refutes_immediately() {
    // (The DRAT-checked variant of this test lives in the workspace-root
    // `drat_pipeline.rs` suite — the proof crate depends on this one.)
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    assert!(!s.add_clause::<[Lit; 0]>([]), "empty clause must refute");
    assert!(s.solve().is_unsat());
    assert!(
        s.failed_assumptions().is_empty(),
        "absolute refutation has an empty core"
    );
    assert!(s.solve().is_unsat(), "refutation is permanent");
}

#[test]
fn clauses_added_after_refutation_keep_the_session_unsat() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause::<[Lit; 0]>([]);
    assert!(s.solve().is_unsat());
    s.add_clause([lit(1)]);
    s.assume(lit(2));
    assert!(
        s.solve().is_unsat(),
        "refuted is refuted, whatever comes later"
    );
    assert!(
        s.failed_assumptions().is_empty(),
        "the refutation does not blame the assumption"
    );
}

#[test]
fn assumptions_on_unreserved_vars_materialize_them() {
    // Assuming a literal whose variable was never mentioned anywhere must
    // grow the variable tables rather than panic, and the model must honor
    // the assumption.
    let mut s = Solver::with_config(SolverConfig::berkmin().with_paranoid(true));
    s.assume(lit(-7));
    match s.solve() {
        SolveStatus::Sat(m) => {
            assert!(m.num_vars() >= 7);
            assert!(m.satisfies(lit(-7)));
        }
        other => panic!("expected SAT, got {other:?}"),
    }
    s.audit_invariants().expect("post-solve audit");
}

#[test]
fn tautologies_and_duplicate_literals_are_harmless() {
    let mut s = Solver::with_config(SolverConfig::berkmin().with_paranoid(true));
    s.add_clause([lit(1), lit(-1)]); // tautology
    s.add_clause([lit(2), lit(2), lit(2)]); // duplicates collapse to a unit
    s.add_clause([lit(-2), lit(3), lit(3)]);
    match s.solve() {
        SolveStatus::Sat(m) => {
            assert!(m.satisfies(lit(2)), "x2 is forced by the collapsed unit");
            assert!(m.satisfies(lit(3)), "x3 follows from x2");
        }
        other => panic!("expected SAT, got {other:?}"),
    }
    s.audit_invariants().expect("post-solve audit");
}
