//! Incremental and repeated-solve behavior: re-solving, adding clauses
//! between solves, solving under assumptions with failed-core extraction,
//! and resuming budget-aborted runs.

use berkmin::{ActivityIndex, Budget, SolveStatus, Solver, SolverConfig};
use berkmin_cnf::Lit;

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

/// Session-API shorthand: stage `assumptions` and run one solve call.
fn solve_under(s: &mut Solver, assumptions: &[Lit]) -> SolveStatus {
    for &a in assumptions {
        s.assume(a);
    }
    s.solve()
}

/// Adds the pigeonhole clauses PHP(holes+1 → holes) to `s`.
fn add_pigeonhole(s: &mut Solver, holes: usize) {
    let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
    for p in 0..=holes {
        s.add_clause((0..holes).map(|h| l(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                s.add_clause([!l(p1, h), !l(p2, h)]);
            }
        }
    }
}

#[test]
fn solving_twice_gives_the_same_answer() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(-1), lit(2)]);
    assert!(s.solve().is_sat());
    assert!(s.solve().is_sat());
}

#[test]
fn clauses_narrow_the_model_incrementally() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2), lit(3)]);
    let first = s.solve();
    assert!(first.is_sat());

    // Forbid the found model's projection onto x1..x3, three times: at most
    // 7 iterations can succeed before the space is exhausted.
    let mut sat_rounds = 0;
    loop {
        let model = match s.solve() {
            SolveStatus::Sat(m) => m,
            SolveStatus::Unsat => break,
            SolveStatus::Unknown(r) => panic!("aborted: {r}"),
        };
        sat_rounds += 1;
        assert!(sat_rounds <= 7, "only 7 assignments satisfy x1∨x2∨x3");
        // Block this assignment of the three variables.
        let blocking: Vec<Lit> = (1..=3)
            .map(|i| {
                let l = lit(i);
                if model.satisfies(l) {
                    !l
                } else {
                    l
                }
            })
            .collect();
        s.add_clause(blocking);
    }
    assert_eq!(sat_rounds, 7, "model enumeration must count all 7 models");
}

#[test]
fn unsat_is_sticky() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1)]);
    s.add_clause([lit(-1)]);
    assert!(s.solve().is_unsat());
    // Adding more clauses cannot revive the solver.
    s.add_clause([lit(2)]);
    assert!(s.solve().is_unsat());
    assert!(!s.is_ok());
}

#[test]
fn budget_aborted_run_resumes_and_finishes() {
    // PHP(6) needs a few thousand conflicts; give it out in installments.
    // Budgets are per call, so every re-call gets a fresh 50-conflict
    // allowance while the learnt clauses accumulate across calls.
    let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(50));
    let mut s = Solver::with_config(cfg);
    add_pigeonhole(&mut s, 6);
    let mut installments = 0;
    loop {
        match s.solve() {
            SolveStatus::Unknown(_) => {
                installments += 1;
                assert!(installments < 10_000, "runaway resume loop");
            }
            SolveStatus::Unsat => break,
            SolveStatus::Sat(_) => panic!("PHP is unsatisfiable"),
        }
    }
    assert!(installments > 1, "test must actually exercise resumption");
}

#[test]
fn second_call_does_not_inherit_spent_budget() {
    // Regression for the inter-solve budget leak: with lifetime accounting,
    // a second call under the same 40-conflict budget would return Unknown
    // immediately (0 additional conflicts). Per-call accounting grants a
    // fresh allowance each time.
    let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(40));
    let mut s = Solver::with_config(cfg);
    add_pigeonhole(&mut s, 6);
    assert!(s.solve().is_unknown());
    let after_first = s.stats().conflicts;
    assert_eq!(after_first, 40);
    assert!(matches!(
        s.solve(),
        SolveStatus::Unknown(berkmin::StopReason::ConflictBudget) | SolveStatus::Unsat
    ));
    assert!(
        s.stats().conflicts > after_first,
        "second call returned without doing any work: stale budget inherited"
    );
    assert_eq!(s.stats().solve_calls, 2);
}

#[test]
fn assumptions_constrain_the_model() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2), lit(3)]);
    for asm in [vec![lit(-1), lit(-2)], vec![lit(-2), lit(-3)], vec![lit(2)]] {
        match solve_under(&mut s, &asm) {
            SolveStatus::Sat(m) => {
                for &a in &asm {
                    assert!(m.satisfies(a), "model violates assumption {a:?}");
                }
            }
            other => panic!("expected SAT under {asm:?}, got {other:?}"),
        }
        assert!(s.failed_assumptions().is_empty());
    }
    // Assumptions are not clauses: the solver is unconstrained afterwards.
    assert!(s.solve().is_sat());
    assert!(s.is_ok());
}

#[test]
fn failed_core_is_a_subset_and_still_unsat() {
    // x1 → x2 → x3, and assumptions force x1 but forbid x3; x4 is an
    // irrelevant bystander that must not enter the core.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(-1), lit(2)]);
    s.add_clause([lit(-2), lit(3)]);
    let assumptions = [lit(4), lit(1), lit(-3)];
    assert!(solve_under(&mut s, &assumptions).is_unsat());
    assert!(s.is_ok(), "assumption conflict must not poison the solver");
    let core: Vec<Lit> = s.failed_assumptions().to_vec();
    assert!(!core.is_empty());
    for &c in &core {
        assert!(assumptions.contains(&c), "{c:?} is not an assumption");
    }
    assert!(!core.contains(&lit(4)), "bystander dragged into the core");
    // Re-solving under just the core is still UNSAT.
    assert!(solve_under(&mut s, &core).is_unsat());
    // And the solver still answers SAT without assumptions.
    assert!(s.solve().is_sat());
    assert_eq!(s.stats().assumption_conflicts, 2);
}

#[test]
fn absolute_unsat_yields_empty_core() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    add_pigeonhole(&mut s, 3);
    assert!(s.solve().is_unsat());
    assert!(!s.is_ok());
    // Once the formula is refuted outright, assumption calls still answer
    // UNSAT but no assumption is to blame: the core is empty.
    assert!(solve_under(&mut s, &[lit(1), lit(5)]).is_unsat());
    assert!(s.failed_assumptions().is_empty());
}

#[test]
fn assumption_call_on_unsat_formula_cores_or_refutes() {
    // Solving an absolutely-UNSAT formula *under* assumptions may either
    // refute the formula (empty core) or trip over a falsified assumption
    // first (non-empty core) — both are sound, and any reported core must
    // itself be UNSAT-forcing.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    add_pigeonhole(&mut s, 3);
    assert!(solve_under(&mut s, &[lit(1), lit(5)]).is_unsat());
    let core = s.failed_assumptions().to_vec();
    assert!(solve_under(&mut s, &core).is_unsat());
}

#[test]
fn unit_assumption_against_root_fact_cores_alone() {
    // x1 is a level-0 fact; assuming ¬x1 must fail with the singleton core.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1)]);
    s.add_clause([lit(2), lit(3)]);
    assert!(solve_under(&mut s, &[lit(2), lit(-1)]).is_unsat());
    assert_eq!(s.failed_assumptions(), &[lit(-1)]);
    assert!(s.is_ok());
    assert!(s.solve().is_sat());
}

#[test]
fn contradictory_assumptions_core_both_literals() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    assert!(solve_under(&mut s, &[lit(3), lit(-3)]).is_unsat());
    let core = s.failed_assumptions();
    assert!(
        core.contains(&lit(3)) && core.contains(&lit(-3)),
        "{core:?}"
    );
    assert!(s.solve().is_sat());
}

#[test]
fn assumptions_on_fresh_variables_are_materialized() {
    // Assuming a variable the solver has never seen must not panic — it is
    // simply free, and the model must honor the assumption.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1)]);
    match solve_under(&mut s, &[lit(-9)]) {
        SolveStatus::Sat(m) => assert!(m.satisfies(lit(-9))),
        other => panic!("expected SAT, got {other:?}"),
    }
}

#[test]
fn learnt_clauses_and_heap_state_survive_across_assumption_calls() {
    let mut cfg = SolverConfig::berkmin();
    cfg.activity_index = ActivityIndex::Heap;
    let mut s = Solver::with_config(cfg);
    add_pigeonhole(&mut s, 5);
    // First query under an assumption that doesn't decide the instance.
    assert!(solve_under(&mut s, &[lit(1)]).is_unsat());
    let learnt_after_first = s.num_learnt_clauses();
    let conflicts_first = s.stats().conflicts;
    assert!(learnt_after_first > 0, "PHP must force learning");
    let activity_sum: u64 = (0..s.num_vars())
        .map(|i| s.var_activity(berkmin_cnf::Var::new(i as u32)))
        .sum();
    assert!(activity_sum > 0);
    assert!(s.decision_heap_len() > 0, "heap must retain free variables");
    // Second call: warm start. The learnt clauses are still in the
    // database, and the heuristic state makes the re-proof cheaper than
    // the first proof.
    assert!(solve_under(&mut s, &[lit(2)]).is_unsat());
    let conflicts_second = s.stats().conflicts - conflicts_first;
    assert!(
        conflicts_second < conflicts_first,
        "warm re-solve ({conflicts_second} conflicts) not cheaper than \
         cold solve ({conflicts_first})"
    );
}

#[test]
fn add_clause_between_assumption_calls_keeps_warm_state() {
    // Enumerate models of x1∨x2∨x3 under a fixed assumption by blocking
    // clauses — exercises assume → solve → add_clause → re-solve.
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2), lit(3)]);
    let fixed = [lit(-3)];
    let mut models = 0;
    while let SolveStatus::Sat(m) = solve_under(&mut s, &fixed) {
        assert!(m.satisfies(lit(-3)));
        models += 1;
        assert!(models <= 3, "only 3 models have x3 = 0");
        let blocking: Vec<Lit> = (1..=3)
            .map(|i| if m.satisfies(lit(i)) { !lit(i) } else { lit(i) })
            .collect();
        s.add_clause(blocking);
    }
    assert_eq!(models, 3);
    // The blocked space is UNSAT only under the assumption…
    assert!(!s.failed_assumptions().is_empty());
    // …and the solver still finds the x3 = 1 models afterwards.
    assert!(s.solve().is_sat());
}

#[test]
fn adding_clause_after_sat_answer_works_without_explicit_reset() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    let model = match s.solve() {
        SolveStatus::Sat(m) => m,
        other => panic!("{other:?}"),
    };
    // The solver is mid-"tree" (all variables assigned); adding a clause
    // must transparently unwind to level 0.
    let blocked: Vec<Lit> = (1..=2)
        .map(|i| {
            if model.satisfies(lit(i)) {
                !lit(i)
            } else {
                lit(i)
            }
        })
        .collect();
    s.add_clause(blocked);
    assert!(s.solve().is_sat(), "three assignments satisfy x1∨x2");
}
