//! Incremental and repeated-solve behavior: re-solving, adding clauses
//! between solves, and resuming budget-aborted runs.

use berkmin::{Budget, SolveStatus, Solver, SolverConfig};
use berkmin_cnf::Lit;

fn lit(n: i32) -> Lit {
    Lit::from_dimacs(n)
}

#[test]
fn solving_twice_gives_the_same_answer() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(-1), lit(2)]);
    assert!(s.solve().is_sat());
    assert!(s.solve().is_sat());
}

#[test]
fn clauses_narrow_the_model_incrementally() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2), lit(3)]);
    let first = s.solve();
    assert!(first.is_sat());

    // Forbid the found model's projection onto x1..x3, three times: at most
    // 7 iterations can succeed before the space is exhausted.
    let mut sat_rounds = 0;
    loop {
        let model = match s.solve() {
            SolveStatus::Sat(m) => m,
            SolveStatus::Unsat => break,
            SolveStatus::Unknown(r) => panic!("aborted: {r}"),
        };
        sat_rounds += 1;
        assert!(sat_rounds <= 7, "only 7 assignments satisfy x1∨x2∨x3");
        // Block this assignment of the three variables.
        let blocking: Vec<Lit> = (1..=3)
            .map(|i| {
                let l = lit(i);
                if model.satisfies(l) {
                    !l
                } else {
                    l
                }
            })
            .collect();
        s.add_clause(blocking);
    }
    assert_eq!(sat_rounds, 7, "model enumeration must count all 7 models");
}

#[test]
fn unsat_is_sticky() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1)]);
    s.add_clause([lit(-1)]);
    assert!(s.solve().is_unsat());
    // Adding more clauses cannot revive the solver.
    s.add_clause([lit(2)]);
    assert!(s.solve().is_unsat());
    assert!(!s.is_ok());
}

#[test]
fn budget_aborted_run_resumes_and_finishes() {
    // PHP(6) needs a few thousand conflicts; give it out in installments.
    let holes = 6usize;
    let l = |p: usize, h: usize| lit((p * holes + h + 1) as i32);
    let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(50));
    let mut s = Solver::with_config(cfg);
    for p in 0..=holes {
        s.add_clause((0..holes).map(|h| l(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                s.add_clause([!l(p1, h), !l(p2, h)]);
            }
        }
    }
    let mut installments = 0;
    loop {
        match s.solve() {
            SolveStatus::Unknown(_) => {
                installments += 1;
                assert!(installments < 10_000, "runaway resume loop");
                let spent = s.stats().conflicts;
                s.set_budget(Budget::conflicts(spent + 50));
            }
            SolveStatus::Unsat => break,
            SolveStatus::Sat(_) => panic!("PHP is unsatisfiable"),
        }
    }
    assert!(installments > 1, "test must actually exercise resumption");
}

#[test]
fn adding_clause_after_sat_answer_works_without_explicit_reset() {
    let mut s = Solver::with_config(SolverConfig::berkmin());
    s.add_clause([lit(1), lit(2)]);
    let model = match s.solve() {
        SolveStatus::Sat(m) => m,
        other => panic!("{other:?}"),
    };
    // The solver is mid-"tree" (all variables assigned); adding a clause
    // must transparently unwind to level 0.
    let blocked: Vec<Lit> = (1..=2)
        .map(|i| {
            if model.satisfies(lit(i)) {
                !lit(i)
            } else {
                lit(i)
            }
        })
        .collect();
    s.add_clause(blocked);
    assert!(s.solve().is_sat(), "three assignments satisfy x1∨x2");
}
