//! Property tests for the self-auditing layer: random solves with
//! `paranoid` on must never trip the in-search audits (which panic on the
//! first violation), and the post-solve state must still pass a full
//! [`Solver::audit_invariants`] call — across configurations, including the
//! heap-indexed decision strategy and incremental assumption sessions.

use berkmin::{ActivityIndex, RestartPolicy, Solver, SolverConfig};
use berkmin_cnf::{Lit, Var};
use proptest::prelude::*;

/// Variable pool for generated clauses — small enough that random 3-SAT-ish
/// formulas flip between SAT and UNSAT and conflict frequently.
const VARS: u32 = 14;

/// Derives a clause of 1–4 distinct variables from one seed.
fn clause_from_seed(seed: u64) -> Vec<Lit> {
    let len = 1 + (seed % 4) as usize;
    let mut vars: Vec<u32> = Vec::with_capacity(len);
    let mut x = seed | 1;
    while vars.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (x >> 33) as u32 % VARS;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .enumerate()
        .map(|(i, &v)| Lit::new(Var::new(v), (seed >> i) & 1 == 1))
        .collect()
}

fn paranoid_configs() -> Vec<SolverConfig> {
    let mut churn = SolverConfig::berkmin();
    churn.restart = RestartPolicy::FixedInterval(2); // reduce/GC constantly
    let mut heap = SolverConfig::less_mobility();
    heap.activity_index = ActivityIndex::Heap; // exercise heap membership
    [
        SolverConfig::berkmin(),
        churn,
        heap,
        SolverConfig::chaff_like(),
    ]
    .into_iter()
    .map(|c| c.with_paranoid(true))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paranoid_random_solves_never_trip(seeds in prop::collection::vec(any::<u64>(), 1..=40)) {
        for cfg in paranoid_configs() {
            let mut s = Solver::with_config(cfg);
            for &seed in &seeds {
                s.add_clause(clause_from_seed(seed));
            }
            let _ = s.solve(); // paranoid audits panic if anything trips
            s.audit_invariants().expect("post-solve state must audit clean");
        }
    }

    #[test]
    fn paranoid_incremental_sessions_never_trip(
        seeds in prop::collection::vec(any::<u64>(), 2..=30),
    ) {
        // Interleave clause additions, assumptions and repeated solves on
        // one warm solver; every quiescent point is audited in-search.
        let mut s = Solver::with_config(SolverConfig::berkmin().with_paranoid(true));
        for (i, &seed) in seeds.iter().enumerate() {
            s.add_clause(clause_from_seed(seed));
            if i % 3 == 2 {
                let a = clause_from_seed(seed.rotate_left(17));
                s.assume(a[0]);
                if a.len() > 1 {
                    s.assume(!a[1]);
                }
                let _ = s.solve();
                s.audit_invariants().expect("incremental state must audit clean");
            }
        }
        let _ = s.solve();
        s.audit_invariants().expect("final state must audit clean");
    }
}
