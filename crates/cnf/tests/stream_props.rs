//! Property tests pinning the agreement between the two DIMACS paths:
//! `dimacs::parse` (string → `Cnf`) and `dimacs::stream_into` (reader →
//! any `ClauseSink`). On generated formulas — and on mutated renderings of
//! them (reflowed clauses, injected comments/blank lines, corrupted
//! tokens) — the streaming path must produce clause-for-clause the same
//! `Cnf`, the same summary, and the same accept/reject decisions.

use berkmin_cnf::{dimacs, Clause, Cnf, Lit, Var};
use proptest::prelude::*;

fn arb_lit(max_vars: u32) -> impl Strategy<Value = Lit> {
    (0..max_vars, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

fn arb_clause(max_vars: u32, max_len: usize) -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_lit(max_vars), 0..=max_len).prop_map(Clause::from_lits)
}

fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(arb_clause(max_vars, 6), 0..=max_clauses)
        .prop_map(|cs| cs.into_iter().collect())
}

/// Tiny deterministic PRNG for the text mutations (the shim's `proptest`
/// strategies drive the *choice*, this drives the byte positions).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Reflows the clause body of a rendered DIMACS text: comment and header
/// lines stay line-oriented (the format requires it), while every clause
/// token is re-wrapped at pseudo-random points — clauses end up spanning
/// and sharing lines, which both parsers must tolerate identically.
fn reflow(text: &str, rng: &mut Rng) -> String {
    let mut out = String::new();
    let mut body_tokens: Vec<&str> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('c') || t.starts_with('p') {
            out.push_str(line);
            out.push('\n');
        } else {
            body_tokens.extend(t.split_whitespace());
        }
    }
    for tok in body_tokens {
        out.push_str(tok);
        match rng.next() % 4 {
            0 => out.push('\n'),
            1 => out.push_str("  "),
            2 => out.push_str(" \n "),
            _ => out.push(' '),
        }
    }
    out.push('\n');
    out
}

/// Injects benign noise: comment lines and blank lines at pseudo-random
/// line boundaries (after the header, so `c`-vs-clause interleaving is
/// exercised too).
fn inject_noise(text: &str, rng: &mut Rng) -> String {
    let mut out = String::new();
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
        match rng.next() % 5 {
            0 => out.push_str("c noise comment\n"),
            1 => out.push('\n'),
            2 => out.push_str("   \n"),
            _ => {}
        }
    }
    out
}

/// Corrupts the text so it may (or may not) become invalid: both parsers
/// must make the same call, and on rejection report the same error.
fn corrupt(text: &str, rng: &mut Rng) -> String {
    let mut s = text.to_string();
    match rng.next() % 4 {
        0 => s.push_str("7 "), // unterminated trailing clause
        1 => {
            // A non-numeric token somewhere in the body.
            s.push_str("\nbogus 0\n");
        }
        2 => {
            // A literal out of range.
            s.push_str("\n99999999999 0\n");
        }
        _ => {
            // A malformed header appended mid-file.
            s.push_str("\np cnf x y\n");
        }
    }
    s
}

/// Runs both paths on `text` and asserts full agreement: same Ok/Err
/// decision, same resulting formula (clauses, vars, comments), same error
/// line and message otherwise. Returns whether the text was accepted.
fn assert_paths_agree(text: &str) -> Result<bool, TestCaseError> {
    let parsed = dimacs::parse(text);
    let mut streamed_cnf = Cnf::new();
    let streamed = dimacs::stream_into(text.as_bytes(), &mut streamed_cnf);
    match (parsed, streamed) {
        (Ok(cnf), Ok(summary)) => {
            prop_assert_eq!(cnf.clauses(), streamed_cnf.clauses());
            prop_assert_eq!(cnf.num_vars(), streamed_cnf.num_vars());
            prop_assert_eq!(cnf.comments(), streamed_cnf.comments());
            prop_assert_eq!(summary.num_vars, cnf.num_vars());
            prop_assert_eq!(summary.num_clauses, cnf.num_clauses());
            Ok(true)
        }
        (Err(pe), Err(dimacs::ReadDimacsError::Parse(se))) => {
            prop_assert_eq!(pe.line(), se.line(), "error lines differ");
            prop_assert_eq!(pe.to_string(), se.to_string(), "error messages differ");
            Ok(false)
        }
        (p, s) => Err(TestCaseError::fail(format!(
            "paths disagree on accept/reject: parse={p:?} stream={s:?}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stream_agrees_with_parse_on_rendered_formulas(cnf in arb_cnf(12, 20)) {
        let text = dimacs::to_string(&cnf);
        prop_assert!(assert_paths_agree(&text)?, "rendered CNF must parse");
        // And the streamed reconstruction equals the original formula.
        let mut rebuilt = Cnf::new();
        dimacs::stream_into(text.as_bytes(), &mut rebuilt).expect("own output streams");
        prop_assert_eq!(cnf.clauses(), rebuilt.clauses());
        prop_assert_eq!(cnf.num_vars(), rebuilt.num_vars());
    }

    #[test]
    fn stream_agrees_with_parse_on_mutated_text(cnf in arb_cnf(10, 12), seed in any::<u64>()) {
        let mut rng = Rng(seed | 1);
        let text = dimacs::to_string(&cnf);
        let reflowed = reflow(&text, &mut rng);
        prop_assert!(assert_paths_agree(&reflowed)?, "reflowed CNF must parse");
        let noisy = inject_noise(&reflowed, &mut rng);
        prop_assert!(assert_paths_agree(&noisy)?, "noise-injected CNF must parse");
    }

    #[test]
    fn stream_agrees_with_parse_on_corrupted_text(cnf in arb_cnf(8, 8), seed in any::<u64>()) {
        let mut rng = Rng(seed | 1);
        let text = corrupt(&dimacs::to_string(&cnf), &mut rng);
        // Agreement is the property; acceptance depends on the corruption.
        assert_paths_agree(&text)?;
    }
}
