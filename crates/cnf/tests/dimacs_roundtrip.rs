//! DIMACS round-trip and robustness properties: parse → print → parse is
//! the identity, printing is a fixpoint, and malformed input is rejected
//! with an error — never a panic.

use berkmin_cnf::{dimacs, Clause, Cnf, Lit, Var};
use proptest::prelude::*;

fn arb_lit(max_vars: u32) -> impl Strategy<Value = Lit> {
    (0..max_vars, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec(arb_lit(max_vars), 0..=6).prop_map(Clause::from_lits),
        0..=max_clauses,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// parse(print(f)) reproduces f exactly: clauses (with order, duplicate
    /// literals, and empty clauses preserved) and the variable count.
    #[test]
    fn parse_print_parse_is_identity(cnf in arb_cnf(14, 24)) {
        let text = dimacs::to_string(&cnf);
        let parsed = dimacs::parse(&text).expect("own output must parse");
        prop_assert_eq!(cnf.clauses(), parsed.clauses());
        prop_assert_eq!(cnf.num_vars(), parsed.num_vars());
    }

    /// Printing is a fixpoint: print(parse(print(f))) == print(f), so the
    /// textual form is stable under repeated round-trips.
    #[test]
    fn printing_is_a_fixpoint(cnf in arb_cnf(10, 16)) {
        let once = dimacs::to_string(&cnf);
        let twice = dimacs::to_string(&dimacs::parse(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    /// Arbitrary junk never panics the parser: it either parses (the format
    /// is lenient about headers) or returns a structured error.
    #[test]
    fn parser_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..=64)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = dimacs::parse(&text); // must return, not panic
    }

    /// Out-of-range literals are a structured error, not a panic or a
    /// silent wrap-around.
    #[test]
    fn oversized_literals_are_rejected(n in 2_147_483_648i64..4_000_000_000) {
        let text = format!("p cnf 1 1\n{n} 0\n");
        prop_assert!(dimacs::parse(&text).is_err());
        let neg = format!("p cnf 1 1\n-{n} 0\n");
        prop_assert!(dimacs::parse(&neg).is_err());
    }
}

#[test]
fn malformed_headers_are_errors_not_panics() {
    for bad in [
        "p\n1 0\n",
        "p cnf\n",
        "p cnf 3\n",
        "p dnf 3 2\n1 0\n",
        "p cnf x y\n",
        "p cnf 3 -2\n",
        "p cnf 18446744073709551616 1\n", // u64 overflow
    ] {
        let got = dimacs::parse(bad);
        assert!(got.is_err(), "{bad:?} should be rejected, got {got:?}");
    }
}

#[test]
fn malformed_literals_are_errors_not_panics() {
    for bad in [
        "p cnf 2 1\n1 two 0\n",
        "p cnf 2 1\n1 2\n",     // missing terminator
        "p cnf 2 1\n1 2 0 3\n", // trailing unterminated clause
        "p cnf 2 1\n1 +-2 0\n",
        "p cnf 2 1\n1 2.5 0\n",
        "clause 1 0\n", // 'c' must be a standalone token
    ] {
        let got = dimacs::parse(bad);
        assert!(got.is_err(), "{bad:?} should be rejected, got {got:?}");
    }
}

#[test]
fn error_lines_point_at_the_offender() {
    let err = dimacs::parse("p cnf 2 2\n1 0\nbogus 0\n").unwrap_err();
    assert_eq!(err.line(), 3);
}
