//! Property-based tests for the CNF foundation types.

use berkmin_cnf::{dimacs, Assignment, Clause, Cnf, LBool, Lit, Var};
use proptest::prelude::*;

/// Strategy: an arbitrary literal over `max_vars` variables.
fn arb_lit(max_vars: u32) -> impl Strategy<Value = Lit> {
    (0..max_vars, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

/// Strategy: an arbitrary clause of up to `max_len` literals.
fn arb_clause(max_vars: u32, max_len: usize) -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_lit(max_vars), 0..=max_len).prop_map(Clause::from_lits)
}

/// Strategy: an arbitrary CNF formula.
fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(arb_clause(max_vars, 6), 0..=max_clauses)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #[test]
    fn lit_code_roundtrip(v in 0u32..1_000_000, neg in any::<bool>()) {
        let l = Lit::new(Var::new(v), neg);
        prop_assert_eq!(Lit::from_code(l.code() as u32), l);
        prop_assert_eq!(l.var(), Var::new(v));
        prop_assert_eq!(l.is_negative(), neg);
    }

    #[test]
    fn lit_dimacs_roundtrip(n in prop_oneof![1..100_000i32, -100_000i32..-1]) {
        prop_assert_eq!(Lit::from_dimacs(n).to_dimacs(), n);
    }

    #[test]
    fn negation_flips_evaluation(v in 0u32..16, neg in any::<bool>(), val in any::<bool>()) {
        let l = Lit::new(Var::new(v), neg);
        let mut a = Assignment::new(16);
        a.assign(Var::new(v), val);
        prop_assert_eq!(a.lit_value(l), !a.lit_value(!l));
    }

    #[test]
    fn dimacs_roundtrip_preserves_formula(cnf in arb_cnf(12, 20)) {
        let text = dimacs::to_string(&cnf);
        let parsed = dimacs::parse(&text).expect("own output parses");
        prop_assert_eq!(cnf.clauses(), parsed.clauses());
        prop_assert_eq!(cnf.num_vars(), parsed.num_vars());
    }

    #[test]
    fn eval_agrees_with_clausewise_eval(cnf in arb_cnf(8, 12), bits in any::<u8>()) {
        let a = Assignment::from_bools((0..8).map(|i| bits >> i & 1 == 1));
        let expected = if cnf.iter().all(|c| c.eval(&a) == LBool::True) {
            LBool::True
        } else if cnf.iter().any(|c| c.eval(&a) == LBool::False) {
            LBool::False
        } else {
            LBool::Undef
        };
        // On a total assignment Undef cannot occur, so expected is definite.
        prop_assert_eq!(cnf.eval(&a), expected);
    }

    #[test]
    fn enumeration_model_satisfies(cnf in arb_cnf(8, 10)) {
        if let Some(model) = cnf.solve_by_enumeration() {
            prop_assert!(cnf.is_satisfied_by(&model));
        }
    }

    #[test]
    fn normalized_preserves_models(clause in arb_clause(6, 5), bits in any::<u8>()) {
        let a = Assignment::from_bools((0..6).map(|i| bits >> i & 1 == 1));
        match clause.clone().normalized() {
            // Tautologies are true under every total assignment.
            None => prop_assert!(clause.iter().any(|&l| a.satisfies(l))),
            Some(n) => prop_assert_eq!(n.eval(&a), clause.eval(&a)),
        }
    }
}
