//! Partial and total valuations of variables.

use std::fmt;

use crate::{Lit, Var};

/// A three-valued truth value: the lattice used by DPLL-style solvers.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::LBool;
///
/// assert_eq!(LBool::from(true), LBool::True);
/// assert_eq!(!LBool::True, LBool::False);
/// assert_eq!(!LBool::Undef, LBool::Undef);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not (yet) assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Returns `true` iff the value is [`LBool::Undef`].
    #[inline]
    pub const fn is_undef(self) -> bool {
        matches!(self, LBool::Undef)
    }

    /// Converts to `Option<bool>` (`Undef` becomes `None`).
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

impl std::ops::Not for LBool {
    type Output = LBool;

    #[inline]
    fn not(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

impl fmt::Display for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LBool::True => write!(f, "1"),
            LBool::False => write!(f, "0"),
            LBool::Undef => write!(f, "?"),
        }
    }
}

/// A (partial) assignment of truth values to variables.
///
/// Used both as the solver's exported model and as the reference valuation
/// in tests and generators.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::{Assignment, LBool, Lit, Var};
///
/// let mut a = Assignment::new(2);
/// let x = Var::new(0);
/// a.assign(x, true);
/// assert_eq!(a.value(x), LBool::True);
/// assert_eq!(a.lit_value(Lit::neg(x)), LBool::False);
/// assert_eq!(a.value(Var::new(1)), LBool::Undef);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Assignment {
    values: Vec<LBool>,
}

impl Assignment {
    /// Creates an assignment over `num_vars` variables, all unassigned.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![LBool::Undef; num_vars],
        }
    }

    /// Builds a total assignment from booleans, variable `i` ← `values[i]`.
    pub fn from_bools<I: IntoIterator<Item = bool>>(values: I) -> Self {
        Assignment {
            values: values.into_iter().map(LBool::from).collect(),
        }
    }

    /// Number of variables tracked.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Grows the assignment to cover at least `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if num_vars > self.values.len() {
            self.values.resize(num_vars, LBool::Undef);
        }
    }

    /// Returns the value of `var` ([`LBool::Undef`] if out of range).
    #[inline]
    pub fn value(&self, var: Var) -> LBool {
        self.values
            .get(var.index())
            .copied()
            .unwrap_or(LBool::Undef)
    }

    /// Returns the value of a literal under this assignment.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> LBool {
        let v = self.value(lit.var());
        if lit.is_negative() {
            !v
        } else {
            v
        }
    }

    /// Returns `true` iff `lit` evaluates to true.
    #[inline]
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == LBool::True
    }

    /// Sets `var` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range; use [`Assignment::grow`] first.
    #[inline]
    pub fn assign(&mut self, var: Var, value: bool) {
        self.values[var.index()] = LBool::from(value);
    }

    /// Clears the value of `var` back to [`LBool::Undef`].
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = LBool::Undef;
    }

    /// Returns `true` if every variable has a definite value.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| !v.is_undef())
    }

    /// Iterates over `(Var, LBool)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, LBool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Var::new(i as u32), v))
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (var, val) in self.iter() {
            if val.is_undef() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{var}={val}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbool_negation() {
        assert_eq!(!LBool::True, LBool::False);
        assert_eq!(!LBool::False, LBool::True);
        assert_eq!(!LBool::Undef, LBool::Undef);
    }

    #[test]
    fn lbool_to_bool() {
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::False.to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }

    #[test]
    fn assign_unassign_cycle() {
        let mut a = Assignment::new(1);
        let x = Var::new(0);
        assert!(a.value(x).is_undef());
        a.assign(x, false);
        assert_eq!(a.value(x), LBool::False);
        a.unassign(x);
        assert!(a.value(x).is_undef());
    }

    #[test]
    fn lit_value_respects_sign() {
        let mut a = Assignment::new(1);
        let x = Var::new(0);
        a.assign(x, true);
        assert!(a.satisfies(Lit::pos(x)));
        assert!(!a.satisfies(Lit::neg(x)));
        assert_eq!(a.lit_value(Lit::neg(x)), LBool::False);
    }

    #[test]
    fn out_of_range_reads_are_undef() {
        let a = Assignment::new(1);
        assert_eq!(a.value(Var::new(10)), LBool::Undef);
    }

    #[test]
    fn from_bools_is_total() {
        let a = Assignment::from_bools([true, false]);
        assert!(a.is_total());
        assert_eq!(a.value(Var::new(1)), LBool::False);
    }

    #[test]
    fn grow_preserves_existing_values() {
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), true);
        a.grow(3);
        assert_eq!(a.num_vars(), 3);
        assert_eq!(a.value(Var::new(0)), LBool::True);
        assert!(a.value(Var::new(2)).is_undef());
    }

    #[test]
    fn display_lists_only_assigned() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(1), true);
        assert_eq!(a.to_string(), "{x1=1}");
    }
}
