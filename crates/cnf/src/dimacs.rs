//! Reading and writing CNF formulas in DIMACS format.
//!
//! DIMACS CNF is the interchange format of every benchmark class the paper
//! uses (Hole, Par16, Hanoi, the Velev suites, …). The parser is tolerant of
//! the format quirks found in those 1990s-era files: comments anywhere,
//! clauses spanning multiple lines, several clauses per line, and a missing
//! or understated `p cnf` header.
//!
//! # Examples
//!
//! ```
//! use berkmin_cnf::dimacs;
//!
//! let text = "c tiny instance\np cnf 2 2\n1 -2 0\n2 0\n";
//! let cnf = dimacs::parse(text)?;
//! assert_eq!((cnf.num_vars(), cnf.num_clauses()), (2, 2));
//!
//! let rendered = dimacs::to_string(&cnf);
//! let reparsed = dimacs::parse(&rendered)?;
//! assert_eq!(cnf.clauses(), reparsed.clauses());
//! # Ok::<(), dimacs::ParseDimacsError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::{ClauseSink, Cnf, Lit};

/// Error produced when DIMACS text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ErrorKind {
    /// A token was neither an integer nor a recognized keyword.
    BadToken(String),
    /// The `p` header line was malformed.
    BadHeader(String),
    /// The final clause was not terminated by `0`.
    UnterminatedClause,
    /// A literal outside the representable range.
    LiteralOutOfRange(i64),
}

impl ParseDimacsError {
    /// 1-based line number at which the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::BadToken(t) => {
                write!(f, "line {}: unexpected token {t:?}", self.line)
            }
            ErrorKind::BadHeader(h) => {
                write!(f, "line {}: malformed problem line {h:?}", self.line)
            }
            ErrorKind::UnterminatedClause => {
                write!(f, "line {}: last clause not terminated by 0", self.line)
            }
            ErrorKind::LiteralOutOfRange(n) => {
                write!(f, "line {}: literal {n} out of range", self.line)
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The declared variable count in the `p cnf` header is honored as a lower
/// bound (files sometimes understate it); the declared clause count is
/// ignored, as many historical files get it wrong. Should a file carry
/// several header lines (malformed but tolerated), the **largest**
/// declared variable count wins — a streaming sink can only ever grow its
/// variable space, so this is the one semantics both the buffered and
/// streaming paths can share.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed tokens, a malformed header, or
/// an unterminated final clause.
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut state = LineParser::default();
    for (lineno, line) in text.lines().enumerate() {
        if !state.line(lineno + 1, line, &mut cnf)? {
            break;
        }
    }
    state.finish(&mut cnf)?;
    Ok(cnf)
}

/// What [`stream_into`] saw: the effective variable count (the larger of
/// the declared header count and the largest variable actually referenced)
/// and the number of clauses delivered to the sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimacsSummary {
    /// Effective number of variables (header lower bound honored).
    pub num_vars: usize,
    /// Number of clauses emitted to the sink.
    pub num_clauses: usize,
}

/// Reads DIMACS CNF from `reader` and feeds it clause-by-clause into
/// `sink` — no intermediate [`Cnf`] is built, so a solver implementing
/// [`ClauseSink`] ingests arbitrarily large files at a constant memory
/// overhead (one line plus one clause).
///
/// Accepts the same dialect as [`parse`] (comments anywhere, clauses
/// spanning/sharing lines, `%` terminator, understated headers, largest
/// header winning when several occur) and reports the same errors on the
/// same lines; `stream_into` into a fresh [`Cnf`] produces exactly what
/// `parse` returns (a property test pins this agreement).
///
/// # Errors
///
/// Returns [`ReadDimacsError::Io`] on reader failure and
/// [`ReadDimacsError::Parse`] on malformed content. The sink may have
/// received any prefix of the stream when an error is returned.
pub fn stream_into<R: Read, S: ClauseSink>(
    reader: R,
    sink: &mut S,
) -> Result<DimacsSummary, ReadDimacsError> {
    let mut reader = BufReader::new(reader);
    let mut state = LineParser::default();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(ReadDimacsError::Io)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        if !state
            .line(lineno, &line, sink)
            .map_err(ReadDimacsError::Parse)?
        {
            break;
        }
    }
    state.finish(sink).map_err(ReadDimacsError::Parse)
}

/// The shared DIMACS line-parsing core behind [`parse`] and
/// [`stream_into`]: both feed lines through [`LineParser::line`] and close
/// with [`LineParser::finish`], so the buffered and streaming paths cannot
/// drift apart in dialect or error reporting.
#[derive(Default)]
struct LineParser {
    current: Vec<Lit>,
    summary: DimacsSummary,
    max_var: usize,
    last_line: usize,
}

impl LineParser {
    /// Processes one input line (1-based `lineno`). Returns `Ok(false)` on
    /// the `%` terminator line, after which no further lines should be fed.
    fn line<S: ClauseSink>(
        &mut self,
        lineno: usize,
        line: &str,
        sink: &mut S,
    ) -> Result<bool, ParseDimacsError> {
        self.last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(true);
        }
        if let Some(comment) = trimmed.strip_prefix('c') {
            // `c` must be a standalone token ("c foo"), not e.g. "clause".
            if comment.is_empty() || comment.starts_with(char::is_whitespace) {
                sink.comment(comment.trim_start());
                return Ok(true);
            }
            return Err(ParseDimacsError {
                line: lineno,
                kind: ErrorKind::BadToken(trimmed.split_whitespace().next().unwrap().into()),
            });
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let (_p, format) = (parts.next(), parts.next());
            let nv = parts.next().and_then(|s| s.parse::<usize>().ok());
            let nc = parts.next().and_then(|s| s.parse::<usize>().ok());
            if format != Some("cnf") || nv.is_none() || nc.is_none() {
                return Err(ParseDimacsError {
                    line: lineno,
                    kind: ErrorKind::BadHeader(trimmed.into()),
                });
            }
            let (nv, nc) = (nv.unwrap(), nc.unwrap());
            self.summary.num_vars = self.summary.num_vars.max(nv);
            sink.header(nv, nc);
            return Ok(true);
        }
        // `%` terminates some SATLIB files.
        if trimmed.starts_with('%') {
            return Ok(false);
        }
        for tok in trimmed.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                kind: ErrorKind::BadToken(tok.into()),
            })?;
            if n == 0 {
                self.summary.num_clauses += 1;
                sink.clause(&self.current);
                self.current.clear();
            } else {
                if n.unsigned_abs() > u32::MAX as u64 / 2 {
                    return Err(ParseDimacsError {
                        line: lineno,
                        kind: ErrorKind::LiteralOutOfRange(n),
                    });
                }
                self.max_var = self.max_var.max(n.unsigned_abs() as usize);
                self.current.push(Lit::from_dimacs(n as i32));
            }
        }
        Ok(true)
    }

    /// Closes the stream: rejects an unterminated trailing clause and
    /// returns the effective summary.
    fn finish<S: ClauseSink>(self, _sink: &mut S) -> Result<DimacsSummary, ParseDimacsError> {
        if !self.current.is_empty() {
            return Err(ParseDimacsError {
                line: self.last_line,
                kind: ErrorKind::UnterminatedClause,
            });
        }
        let mut summary = self.summary;
        summary.num_vars = summary.num_vars.max(self.max_var);
        Ok(summary)
    }
}

/// Reads and parses DIMACS CNF from any [`Read`] implementor (a `&mut`
/// reference works too, since `Read` is implemented for `&mut R`).
///
/// # Errors
///
/// Returns [`ReadDimacsError::Io`] on I/O failure and
/// [`ReadDimacsError::Parse`] on malformed content.
pub fn read<R: Read>(reader: R) -> Result<Cnf, ReadDimacsError> {
    let mut cnf = Cnf::new();
    stream_into(reader, &mut cnf)?;
    Ok(cnf)
}

/// Error produced by [`read`].
#[derive(Debug)]
pub enum ReadDimacsError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The content was not valid DIMACS.
    Parse(ParseDimacsError),
}

impl fmt::Display for ReadDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadDimacsError::Io(e) => write!(f, "i/o error reading DIMACS: {e}"),
            ReadDimacsError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadDimacsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadDimacsError::Io(e) => Some(e),
            ReadDimacsError::Parse(e) => Some(e),
        }
    }
}

/// Serializes a [`Cnf`] as DIMACS text.
pub fn to_string(cnf: &Cnf) -> String {
    let mut out = String::new();
    for comment in cnf.comments() {
        out.push_str("c ");
        out.push_str(comment);
        out.push('\n');
    }
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.iter() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

/// Writes a [`Cnf`] in DIMACS format to any [`Write`] implementor (a `&mut`
/// reference works too).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(mut writer: W, cnf: &Cnf) -> io::Result<()> {
    writer.write_all(to_string(cnf).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let cnf = parse("p cnf 3 2\n1 -2 0\n-1 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(
            cnf.clauses()[0].lits(),
            &[Lit::from_dimacs(1), Lit::from_dimacs(-2)]
        );
    }

    #[test]
    fn honors_declared_var_count_as_lower_bound() {
        let cnf = parse("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn clause_may_span_lines_and_share_lines() {
        let cnf = parse("p cnf 3 3\n1 2\n3 0 -1 0\n-2 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 3);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let cnf = parse("c hello\n\nc world\np cnf 1 1\nc mid\n1 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(
            cnf.comments(),
            &["hello".to_string(), "world".into(), "mid".into()]
        );
    }

    #[test]
    fn percent_terminates_satlib_files() {
        let cnf = parse("p cnf 1 1\n1 0\n%\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn rejects_bad_token() {
        let err = parse("p cnf 1 1\none 0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unexpected token"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse("p sat 3 2\n").is_err());
        assert!(parse("p cnf x 2\n").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not terminated"));
    }

    #[test]
    fn roundtrip_preserves_clauses() {
        let src = "c demo\np cnf 4 3\n1 -2 0\n3 4 -1 0\n-4 0\n";
        let cnf = parse(src).unwrap();
        let again = parse(&to_string(&cnf)).unwrap();
        assert_eq!(cnf.clauses(), again.clauses());
        assert_eq!(cnf.num_vars(), again.num_vars());
    }

    #[test]
    fn read_and_write_through_io() {
        let src = b"p cnf 2 1\n1 2 0\n".to_vec();
        let cnf = read(&src[..]).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &cnf).unwrap();
        let again = read(&buf[..]).unwrap();
        assert_eq!(cnf.clauses(), again.clauses());
    }

    #[test]
    fn empty_clause_roundtrips() {
        let cnf = parse("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.clauses()[0].is_empty());
        let again = parse(&to_string(&cnf)).unwrap();
        assert!(again.clauses()[0].is_empty());
    }
}
