//! CNF formulas.

use std::fmt;

use crate::{Assignment, Clause, LBool, Lit, Var};

/// A formula in conjunctive normal form: a conjunction of [`Clause`]s over
/// variables `x0 .. x(n-1)`.
///
/// `Cnf` is the interchange type between benchmark generators, the solver
/// and the DIMACS reader/writer. It tracks the number of variables
/// explicitly so that formulas with unreferenced variables (common in
/// DIMACS files) round-trip faithfully.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::{Cnf, Lit};
///
/// // (x0 ∨ ¬x1) ∧ (x1)
/// let mut cnf = Cnf::new();
/// let x0 = cnf.fresh_var();
/// let x1 = cnf.fresh_var();
/// cnf.add_clause([Lit::pos(x0), Lit::neg(x1)]);
/// cnf.add_clause([Lit::pos(x1)]);
/// assert_eq!((cnf.num_vars(), cnf.num_clauses()), (2, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Optional human-readable comment lines (serialized as DIMACS `c` lines).
    comments: Vec<String>,
}

impl Cnf {
    /// Creates an empty formula with no variables and no clauses.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates a formula over `num_vars` variables and no clauses.
    pub fn with_vars(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            ..Cnf::default()
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn fresh_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh_var()).collect()
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable count to at least `n` without adding clauses —
    /// used when an external source (a DIMACS header, a solver) declares
    /// variables the clauses may never mention. Never shrinks.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// Returns the clauses as a slice.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Appends a clause built from `lits`, growing the variable count to
    /// cover every referenced variable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause = Clause::from_lits(lits);
        for lit in &clause {
            let need = lit.var().index() + 1;
            if need > self.num_vars {
                self.num_vars = need;
            }
        }
        self.clauses.push(clause);
    }

    /// Appends an already-built [`Clause`].
    pub fn push_clause(&mut self, clause: Clause) {
        self.add_clause(clause.into_lits());
    }

    /// Adds a comment line, emitted as a DIMACS `c` line by the writer.
    pub fn add_comment(&mut self, text: impl Into<String>) {
        self.comments.push(text.into());
    }

    /// Returns the comment lines.
    pub fn comments(&self) -> &[String] {
        &self.comments
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Evaluates the formula under `assignment`.
    ///
    /// Returns [`LBool::True`] if every clause is satisfied, [`LBool::False`]
    /// if some clause is falsified, otherwise [`LBool::Undef`].
    pub fn eval(&self, assignment: &Assignment) -> LBool {
        let mut all_true = true;
        for clause in &self.clauses {
            match clause.eval(assignment) {
                LBool::False => return LBool::False,
                LBool::Undef => all_true = false,
                LBool::True => {}
            }
        }
        if all_true {
            LBool::True
        } else {
            LBool::Undef
        }
    }

    /// Returns `true` iff `assignment` satisfies every clause — the model
    /// check used throughout the test suite to validate solver output.
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        self.eval(assignment) == LBool::True
    }

    /// Merges another formula into this one, remapping its variables to a
    /// fresh block. Returns the variable offset applied.
    ///
    /// Useful for composing benchmark instances (e.g. stacking several
    /// miters into one CNF).
    pub fn append_disjoint(&mut self, other: &Cnf) -> usize {
        let offset = self.num_vars;
        for clause in other.iter() {
            let shifted = clause
                .iter()
                .map(|l| Lit::new(Var::new((l.var().index() + offset) as u32), l.is_negative()));
            self.add_clause(shifted);
        }
        self.num_vars = self.num_vars.max(offset + other.num_vars);
        offset
    }

    /// Exhaustive satisfiability check by enumeration — the reference oracle
    /// for property tests. Returns a model if one exists.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables (enumeration would
    /// be infeasible); this is a test-support method, not a solver.
    pub fn solve_by_enumeration(&self) -> Option<Assignment> {
        assert!(
            self.num_vars <= 24,
            "enumeration oracle limited to 24 variables, formula has {}",
            self.num_vars
        );
        let n = self.num_vars;
        for bits in 0u64..(1u64 << n) {
            let a = Assignment::from_bools((0..n).map(|i| bits >> i & 1 == 1));
            if self.is_satisfied_by(&a) {
                return Some(a);
            }
        }
        None
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new();
        for c in iter {
            cnf.push_clause(c);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.push_clause(c);
        }
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({clause})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(5)]);
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn eval_three_states() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1)]);
        let mut a = Assignment::new(2);
        assert_eq!(cnf.eval(&a), LBool::Undef);
        a.assign(Var::new(0), false);
        a.assign(Var::new(1), true);
        assert_eq!(cnf.eval(&a), LBool::True);
        a.assign(Var::new(0), true);
        assert_eq!(cnf.eval(&a), LBool::False);
    }

    #[test]
    fn enumeration_finds_model_of_simple_formula() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(2)]);
        cnf.add_clause([lit(-2), lit(3)]);
        let model = cnf.solve_by_enumeration().expect("satisfiable");
        assert!(cnf.is_satisfied_by(&model));
    }

    #[test]
    fn enumeration_detects_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        assert!(cnf.solve_by_enumeration().is_none());
    }

    #[test]
    fn empty_formula_is_trivially_true() {
        let cnf = Cnf::new();
        assert_eq!(cnf.eval(&Assignment::new(0)), LBool::True);
        assert!(cnf.solve_by_enumeration().is_some());
    }

    #[test]
    fn formula_with_empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.push_clause(Clause::new());
        assert!(cnf.solve_by_enumeration().is_none());
    }

    #[test]
    fn append_disjoint_offsets_variables() {
        let mut a = Cnf::new();
        a.add_clause([lit(1), lit(2)]);
        let mut b = Cnf::new();
        b.add_clause([lit(1)]);
        let off = a.append_disjoint(&b);
        assert_eq!(off, 2);
        assert_eq!(a.num_vars(), 3);
        assert_eq!(a.clauses()[1].lits()[0], lit(3));
    }

    #[test]
    fn num_lits_counts_occurrences() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(2)]);
        assert_eq!(cnf.num_lits(), 3);
    }
}
