//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from `0`.
///
/// `Var` is a cheap, copyable index newtype. In DIMACS text a `Var(i)`
/// renders as `i + 1`.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_dimacs(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the 0-based index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the 1-based DIMACS number of this variable.
    #[inline]
    pub const fn to_dimacs(self) -> i32 {
        self.0 as i32 + 1
    }

    /// Creates a variable from a positive 1-based DIMACS number.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 0`.
    #[inline]
    pub fn from_dimacs(n: i32) -> Self {
        assert!(n > 0, "DIMACS variable numbers are positive, got {n}");
        Var(n as u32 - 1)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Var> for usize {
    #[inline]
    fn from(v: Var) -> usize {
        v.index()
    }
}

/// A literal: a variable together with a sign.
///
/// Internally packed as `var << 1 | negated`, so literals of variable `v`
/// occupy codes `2v` (positive) and `2v + 1` (negative). This code doubles
/// as the index into per-literal tables such as watch lists and the paper's
/// `lit_activity` counters.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::{Lit, Var};
///
/// let x = Var::new(0);
/// let a = Lit::pos(x);
/// assert_eq!(!a, Lit::neg(x));
/// assert_eq!((!a).var(), x);
/// assert!((!a).is_negative());
/// assert_eq!(a.to_dimacs(), 1);
/// assert_eq!((!a).to_dimacs(), -1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign (`negated = true` for `¬v`).
    #[inline]
    pub const fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | negated as u32)
    }

    /// The positive literal of `var`.
    #[inline]
    pub const fn pos(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// The negative literal of `var`.
    #[inline]
    pub const fn neg(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// Reconstructs a literal from its packed code (see type docs).
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the packed code (`var << 1 | negated`).
    #[inline]
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the variable underlying this literal.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a negated literal (`¬x`).
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is a positive literal (`x`).
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the signed 1-based DIMACS representation.
    #[inline]
    pub const fn to_dimacs(self) -> i32 {
        let v = (self.0 >> 1) as i32 + 1;
        if self.0 & 1 == 1 {
            -v
        } else {
            v
        }
    }

    /// Creates a literal from a non-zero DIMACS integer.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (DIMACS uses `0` as a clause terminator).
    #[inline]
    pub fn from_dimacs(n: i32) -> Self {
        assert!(n != 0, "0 is the DIMACS clause terminator, not a literal");
        let var = Var::new(n.unsigned_abs() - 1);
        Lit::new(var, n < 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    /// Negates the literal: `!x == ¬x` and `!¬x == x`.
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({})", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrips_through_dimacs() {
        for i in [0u32, 1, 7, 1000] {
            let v = Var::new(i);
            assert_eq!(Var::from_dimacs(v.to_dimacs()), v);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn var_from_dimacs_rejects_zero() {
        let _ = Var::from_dimacs(0);
    }

    #[test]
    fn lit_packing_layout() {
        let v = Var::new(5);
        assert_eq!(Lit::pos(v).code(), 10);
        assert_eq!(Lit::neg(v).code(), 11);
        assert_eq!(Lit::from_code(10), Lit::pos(v));
    }

    #[test]
    fn lit_negation_is_involutive() {
        let l = Lit::neg(Var::new(3));
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn lit_dimacs_roundtrip() {
        for n in [1, -1, 2, -2, 42, -42] {
            assert_eq!(Lit::from_dimacs(n).to_dimacs(), n);
        }
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn lit_from_dimacs_rejects_zero() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_formats() {
        let v = Var::new(2);
        assert_eq!(Lit::pos(v).to_string(), "x2");
        assert_eq!(Lit::neg(v).to_string(), "¬x2");
        assert_eq!(v.to_string(), "x2");
    }

    #[test]
    fn ordering_groups_literals_by_variable() {
        let a = Lit::pos(Var::new(1));
        let b = Lit::neg(Var::new(1));
        let c = Lit::pos(Var::new(2));
        assert!(a < b && b < c);
    }
}
