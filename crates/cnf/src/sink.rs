//! Streaming clause consumption.
//!
//! [`ClauseSink`] is the receiving end of clause *producers* — most
//! prominently [`dimacs::stream_into`](crate::dimacs::stream_into), which
//! feeds a DIMACS file clause-by-clause into any sink without materializing
//! an intermediate [`Cnf`]. A solver that implements `ClauseSink` therefore
//! ingests problem files straight into its internal clause database; `Cnf`
//! implements it too, so the buffered and streaming paths share one
//! vocabulary.
//!
//! # Examples
//!
//! ```
//! use berkmin_cnf::{dimacs, ClauseSink, Cnf, Lit};
//!
//! /// A sink that only counts.
//! #[derive(Default)]
//! struct Counter {
//!     clauses: usize,
//!     lits: usize,
//! }
//!
//! impl ClauseSink for Counter {
//!     fn clause(&mut self, lits: &[Lit]) {
//!         self.clauses += 1;
//!         self.lits += lits.len();
//!     }
//! }
//!
//! let mut counter = Counter::default();
//! let summary = dimacs::stream_into("p cnf 3 2\n1 -2 0\n2 3 0\n".as_bytes(), &mut counter)?;
//! assert_eq!((counter.clauses, counter.lits), (2, 4));
//! assert_eq!((summary.num_vars, summary.num_clauses), (3, 2));
//! # Ok::<(), berkmin_cnf::dimacs::ReadDimacsError>(())
//! ```

use crate::{Cnf, Lit};

/// Receiver of a clause stream (e.g. from a DIMACS parse).
///
/// Producers call the methods in document order: [`ClauseSink::header`]
/// and [`ClauseSink::comment`] as encountered, [`ClauseSink::clause`] once
/// per terminated clause. Only `clause` is mandatory; the other callbacks
/// default to no-ops, so sinks that just want the clauses (a solver, a
/// counter) implement a single method.
pub trait ClauseSink {
    /// A `p cnf <num_vars> <num_clauses>` header line was seen. The declared
    /// variable count is a *lower bound* on the variable space (historical
    /// files understate it); sinks that track variables should grow to at
    /// least `num_vars`. The declared clause count is advisory only.
    fn header(&mut self, num_vars: usize, num_clauses: usize) {
        let _ = (num_vars, num_clauses);
    }

    /// A complete clause was read (the literals before its `0` terminator,
    /// in input order, unnormalized). The slice is only valid for the
    /// duration of the call.
    fn clause(&mut self, lits: &[Lit]);

    /// A `c` comment line was seen (leading whitespace stripped).
    fn comment(&mut self, text: &str) {
        let _ = text;
    }
}

impl<S: ClauseSink + ?Sized> ClauseSink for &mut S {
    fn header(&mut self, num_vars: usize, num_clauses: usize) {
        (**self).header(num_vars, num_clauses);
    }

    fn clause(&mut self, lits: &[Lit]) {
        (**self).clause(lits);
    }

    fn comment(&mut self, text: &str) {
        (**self).comment(text);
    }
}

/// Streaming into a [`Cnf`] reproduces exactly what
/// [`dimacs::parse`](crate::dimacs::parse) builds: clauses in input order,
/// the declared variable count honored as a lower bound, comments kept.
impl ClauseSink for Cnf {
    fn header(&mut self, num_vars: usize, _num_clauses: usize) {
        self.ensure_vars(num_vars);
    }

    fn clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }

    fn comment(&mut self, text: &str) {
        self.add_comment(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn cnf_sink_grows_vars_from_header_and_clauses() {
        let mut cnf = Cnf::new();
        ClauseSink::header(&mut cnf, 5, 1);
        assert_eq!(cnf.num_vars(), 5);
        ClauseSink::clause(&mut cnf, &[Lit::pos(Var::new(8))]);
        assert_eq!(cnf.num_vars(), 9);
        ClauseSink::comment(&mut cnf, "hello");
        assert_eq!(cnf.comments(), &["hello".to_string()]);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut cnf = Cnf::new();
        let mut sink = &mut cnf;
        ClauseSink::clause(&mut sink, &[Lit::pos(Var::new(0))]);
        assert_eq!(cnf.num_clauses(), 1);
    }
}
