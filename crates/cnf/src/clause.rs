//! Owned clauses (disjunctions of literals).

use std::fmt;
use std::ops::Index;

use crate::{Assignment, LBool, Lit};

/// An owned clause: a disjunction of literals.
///
/// `Clause` is the exchange format between generators, the solver and the
/// proof checker. The solver keeps its own packed representation internally;
/// this type optimizes for clarity, not propagation speed.
///
/// # Examples
///
/// ```
/// use berkmin_cnf::{Clause, Lit, Var};
///
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let c = Clause::from_lits([Lit::pos(x), Lit::neg(y)]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(Lit::pos(x)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates an empty clause (which is unsatisfiable).
    #[inline]
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from an iterator of literals, preserving order.
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Returns the literals as a slice.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of literals (the clause *length* in the paper's
    /// terminology, §8).
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains exactly one literal.
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Returns `true` if the clause contains exactly two literals — the
    /// "binary" clauses the `nb_two` branch-selection cost function counts
    /// (paper §7).
    #[inline]
    pub fn is_binary(&self) -> bool {
        self.lits.len() == 2
    }

    /// Returns `true` if `lit` occurs in the clause.
    #[inline]
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Appends a literal.
    #[inline]
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Sorts literals and removes duplicates; returns `None` if the clause is
    /// a tautology (contains both `x` and `¬x`), since a tautology carries no
    /// constraint and solvers may drop it.
    pub fn normalized(mut self) -> Option<Clause> {
        self.lits.sort_unstable();
        self.lits.dedup();
        for w in self.lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        Some(self)
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// Returns [`LBool::True`] if some literal is true, [`LBool::False`] if
    /// all literals are false, and [`LBool::Undef`] otherwise.
    pub fn eval(&self, assignment: &Assignment) -> LBool {
        let mut all_false = true;
        for &lit in &self.lits {
            match assignment.lit_value(lit) {
                LBool::True => return LBool::True,
                LBool::Undef => all_false = false,
                LBool::False => {}
            }
        }
        if all_false {
            LBool::False
        } else {
            LBool::Undef
        }
    }

    /// Consumes the clause and returns the underlying literal vector.
    #[inline]
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }
}

impl Index<usize> for Clause {
    type Output = Lit;

    #[inline]
    fn index(&self, i: usize) -> &Lit {
        &self.lits[i]
    }
}

impl From<Vec<Lit>> for Clause {
    #[inline]
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.lits.iter().map(|l| l.to_dimacs()))
            .finish()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        for (i, lit) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn classification_helpers() {
        assert!(Clause::new().is_empty());
        assert!(Clause::from_lits([lit(1)]).is_unit());
        assert!(Clause::from_lits([lit(1), lit(-2)]).is_binary());
        assert!(!Clause::from_lits([lit(1), lit(2), lit(3)]).is_binary());
    }

    #[test]
    fn normalized_dedups_and_sorts() {
        let c = Clause::from_lits([lit(3), lit(1), lit(3)])
            .normalized()
            .unwrap();
        assert_eq!(c.lits(), &[lit(1), lit(3)]);
    }

    #[test]
    fn normalized_detects_tautology() {
        assert!(Clause::from_lits([lit(2), lit(-2)]).normalized().is_none());
    }

    #[test]
    fn eval_reports_three_states() {
        let mut a = Assignment::new(3);
        let c = Clause::from_lits([lit(1), lit(2)]);
        assert_eq!(c.eval(&a), LBool::Undef);
        a.assign(Var::new(0), false);
        assert_eq!(c.eval(&a), LBool::Undef);
        a.assign(Var::new(1), false);
        assert_eq!(c.eval(&a), LBool::False);
        a.assign(Var::new(1), true);
        assert_eq!(c.eval(&a), LBool::True);
    }

    #[test]
    fn empty_clause_is_false_under_any_assignment() {
        let a = Assignment::new(0);
        assert_eq!(Clause::new().eval(&a), LBool::False);
    }

    #[test]
    fn display_renders_disjunction() {
        let c = Clause::from_lits([lit(1), lit(-2)]);
        assert_eq!(c.to_string(), "x0 ∨ ¬x1");
        assert_eq!(Clause::new().to_string(), "⊥");
    }

    #[test]
    fn collect_from_iterator() {
        let c: Clause = [lit(1), lit(2)].into_iter().collect();
        assert_eq!(c.len(), 2);
    }
}
