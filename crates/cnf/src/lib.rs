//! Core CNF data types for the BerkMin SAT-solver suite.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace: [`Var`] and [`Lit`] (packed, copyable handles), [`Clause`]
//! (an owned disjunction of literals), [`Cnf`] (a formula plus variable
//! bookkeeping), [`Assignment`] (a total/partial valuation) and DIMACS
//! reading/writing in [`dimacs`].
//!
//! # Conventions
//!
//! Variables are numbered from `0`. A literal packs a variable and a sign
//! into a single `u32` (`code = var << 1 | negated`), the layout used by the
//! solver's watch lists. In DIMACS text, variable `i` (0-based) appears as
//! `i + 1`, negated literals carry a minus sign.
//!
//! # Examples
//!
//! ```
//! use berkmin_cnf::{Cnf, Lit, Var};
//!
//! let mut cnf = Cnf::new();
//! let x = cnf.fresh_var();
//! let y = cnf.fresh_var();
//! cnf.add_clause([Lit::pos(x), Lit::neg(y)]);
//! cnf.add_clause([Lit::neg(x), Lit::pos(y)]);
//! assert_eq!(cnf.num_vars(), 2);
//! assert_eq!(cnf.num_clauses(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
pub mod dimacs;
mod formula;
mod lit;
mod sink;

pub use assignment::{Assignment, LBool};
pub use clause::Clause;
pub use formula::Cnf;
pub use lit::{Lit, Var};
pub use sink::ClauseSink;
