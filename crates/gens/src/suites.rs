//! Laptop-scale reconstructions of the paper's 12 benchmark classes.
//!
//! The original files (SATLIB, Velev's CMU suite, the Beijing set) are
//! 2001-era artifacts we cannot download; every class is regenerated from
//! the same problem family at a size where the full ablation grid of
//! Tables 1–7 runs in minutes. The per-class scale factors are recorded in
//! EXPERIMENTS.md.

use crate::{
    beijing, blocksworld, bmc_gen, hanoi, hole, ksat, miters, parity, pipeline, BenchInstance,
};

/// The paper's benchmark classes, in the row order of Tables 1/2/4/5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperClass {
    /// DIMACS pigeonhole (UNSAT).
    Hole,
    /// Blocks-world planning (SAT).
    Blocksworld,
    /// Parity-function learning (SAT).
    Par16,
    /// Superscalar-suite, first release (mostly UNSAT, easy).
    Sss10,
    /// Superscalar-suite, revision a (mixed, easy).
    Sss10a,
    /// Superscalar-suite, satisfiable release.
    SssSat10,
    /// Formally-verified-pipeline suite 1.0 (UNSAT).
    FvpUnsat10,
    /// VLIW processor, satisfiable.
    VliwSat10,
    /// The Beijing adder/CSP set (mostly SAT).
    Beijing,
    /// Towers of Hanoi planning (SAT).
    Hanoi,
    /// Equivalence miters of artificial circuits (UNSAT).
    Miters,
    /// Formally-verified-pipeline suite 2.0 (`Npipe`, UNSAT).
    FvpUnsat20,
}

impl PaperClass {
    /// The class name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperClass::Hole => "Hole",
            PaperClass::Blocksworld => "Blocksworld",
            PaperClass::Par16 => "Par16",
            PaperClass::Sss10 => "Sss1.0",
            PaperClass::Sss10a => "Sss1.0a",
            PaperClass::SssSat10 => "Sss_sat1.0",
            PaperClass::FvpUnsat10 => "Fvp_unsat1.0",
            PaperClass::VliwSat10 => "Vliw_sat1.0",
            PaperClass::Beijing => "Beijing",
            PaperClass::Hanoi => "Hanoi",
            PaperClass::Miters => "Miters",
            PaperClass::FvpUnsat20 => "Fvp_unsat2.0",
        }
    }
}

/// All 12 classes in the row order of the ablation tables (Tables 1/2/4/5).
pub const ABLATION_ORDER: [PaperClass; 12] = [
    PaperClass::Hole,
    PaperClass::Blocksworld,
    PaperClass::Par16,
    PaperClass::Sss10,
    PaperClass::Sss10a,
    PaperClass::SssSat10,
    PaperClass::FvpUnsat10,
    PaperClass::VliwSat10,
    PaperClass::Beijing,
    PaperClass::Hanoi,
    PaperClass::Miters,
    PaperClass::FvpUnsat20,
];

/// Generates the laptop-scale instance suite for a class.
///
/// Sizes are calibrated (see EXPERIMENTS.md) so the full BerkMin
/// configuration finishes each class in seconds while crippled ablation
/// arms show the paper's slowdowns and aborts.
pub fn class_suite(class: PaperClass) -> Vec<BenchInstance> {
    match class {
        PaperClass::Hole => (6..=9).map(hole::pigeonhole).collect(),
        PaperClass::Blocksworld => vec![
            blocksworld::blocksworld(6, 8, 0),
            blocksworld::blocksworld_tight(7, 10, 1),
            blocksworld::blocksworld_tight(7, 10, 2),
            blocksworld::blocksworld_tight_unsat(7, 10, 1),
        ],
        PaperClass::Par16 => vec![
            parity::parity_learning(16, 30, 0),
            parity::parity_learning(24, 26, 1),
            parity::parity_learning(28, 30, 2),
            parity::parity_learning(32, 34, 3),
        ],
        PaperClass::Sss10 => {
            let mut v = Vec::new();
            for seed in 0..4 {
                v.push(pipeline::sss_check(4, false, seed));
                v.push(pipeline::sss_check(5, true, seed));
            }
            v
        }
        PaperClass::Sss10a => (0..4)
            .map(|seed| pipeline::sss_check(6, seed % 2 == 1, 10 + seed))
            .collect(),
        PaperClass::SssSat10 => (0..4)
            .map(|seed| pipeline::sss_check(6 + seed as usize % 3, true, 20 + seed))
            .collect(),
        PaperClass::FvpUnsat10 => {
            vec![
                pipeline::npipe(3),
                pipeline::npipe_ooo(3),
                pipeline::npipe(4),
            ]
        }
        PaperClass::VliwSat10 => {
            let mut v: Vec<BenchInstance> =
                (0..2).map(|seed| pipeline::vliw_sat(16, seed)).collect();
            v.push(miters::buggy_miter(900, 60, 3));
            v
        }
        PaperClass::Beijing => vec![
            beijing::adder_goal(16, 2, 0),
            beijing::chained_adder_goal(12, 0),
            beijing::adder_unsat(24),
            beijing::factor_semiprime(12, 0),
            beijing::factor_prime(12, 0),
        ],
        PaperClass::Hanoi => vec![hanoi::hanoi(5), hanoi::hanoi(6), hanoi::hanoi_unsat(6)],
        PaperClass::Miters => vec![
            miters::equivalent_miter(1500, 60, 0),
            miters::multiplier_miter(6, 0),
            miters::rect_multiplier_miter(6, 7, 0),
        ],
        PaperClass::FvpUnsat20 => vec![pipeline::npipe(4), pipeline::npipe(5)],
    }
}

/// The SAT-2002 final-stage analog suite (Table 10): one instance per row
/// of the paper's table, mapped to the closest generator family. Returns
/// `(family, instance)` pairs in the paper's row order.
pub fn sat2002_suite() -> Vec<(&'static str, BenchInstance)> {
    vec![
        ("Bmc2", bmc_gen::bmc_counter_enable(7)),
        ("Comb", miters::multiplier_miter(6, 2)),
        ("Comb", miters::rect_multiplier_miter(6, 7, 3)),
        ("Dinphil", hole::pigeonhole(10)),
        ("F2clk", bmc_gen::bmc_f2clk(6)),
        ("Fifo", bmc_gen::bmc_fifo(24, 64)),
        ("Fifo", bmc_gen::bmc_fifo(32, 80)),
        ("Fvp-unsat-2.0", pipeline::npipe(4)),
        ("Fvp-unsat-2.0", pipeline::npipe_ooo(4)),
        ("Fvp-unsat-2.0", pipeline::npipe(5)),
        ("Ip", miters::wallace_vs_array_miter(6)),
        ("Ip", miters::rect_multiplier_miter(5, 7, 50)),
        ("Ip", miters::wallace_vs_array_miter(7)),
        ("Satex-challenges", ksat::planted_ksat(120, 1100, 4, 1)),
        ("Satex-challenges", parity::parity_learning(28, 30, 9)),
        ("W08", hanoi::hanoi(7)),
        ("W08", blocksworld::blocksworld(7, 10, 15)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_generates_nonempty_suites() {
        for class in ABLATION_ORDER {
            let suite = class_suite(class);
            assert!(!suite.is_empty(), "{} suite is empty", class.name());
            for inst in &suite {
                assert!(inst.cnf.num_clauses() > 0, "{} has empty CNF", inst.name);
            }
        }
    }

    #[test]
    fn class_names_match_table_rows() {
        let names: Vec<&str> = ABLATION_ORDER.iter().map(|c| c.name()).collect();
        assert_eq!(names[0], "Hole");
        assert_eq!(names[11], "Fvp_unsat2.0");
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn sat2002_suite_has_seventeen_rows() {
        // Mirrors the 17 solved-instance rows of Table 10.
        assert_eq!(sat2002_suite().len(), 17);
    }

    #[test]
    fn expected_verdicts_cover_both_polarities() {
        let suite = sat2002_suite();
        let sat = suite
            .iter()
            .filter(|(_, i)| i.expected == Some(true))
            .count();
        let unsat = suite
            .iter()
            .filter(|(_, i)| i.expected == Some(false))
            .count();
        assert!(sat >= 5, "need satisfiable rows, got {sat}");
        assert!(unsat >= 8, "need unsatisfiable rows, got {unsat}");
    }
}
