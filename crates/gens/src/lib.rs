//! # berkmin-gens — benchmark generators for the BerkMin reproduction
//!
//! Regenerates, from scratch and at controllable scale, every workload
//! class the paper evaluates on (§4, §9):
//!
//! | Paper class | Module | Construction |
//! |---|---|---|
//! | Hole | [`hole`] | pigeonhole principle (UNSAT) |
//! | Par16 | [`parity`] | parity-function learning via XOR chains (SAT) |
//! | Hanoi | [`hanoi`] | SATPLAN towers of Hanoi at optimal horizon (SAT) |
//! | Blocksworld | [`blocksworld`] | SATPLAN blocks world, scrambled goals (SAT) |
//! | Beijing | [`beijing`] | adder-circuit justification & impossibility CNFs |
//! | Miters | [`miters`] | random-circuit equivalence miters (UNSAT) + faulted (SAT) |
//! | Sss / Fvp / Vliw | [`pipeline`] | datapath-verification miters (`Npipe`, `vliw_sat`, …) |
//! | SAT-2002 rows | [`bmc_gen`], [`ksat`] | BMC counters/FIFOs, planted & XOR-inconsistent k-SAT |
//!
//! [`suites`] assembles the 12 classes in the paper's table order at
//! laptop scale; every instance carries its construction-guaranteed
//! verdict in [`BenchInstance::expected`], which the test suite
//! cross-checks against the solver.
//!
//! # Example
//!
//! ```
//! use berkmin_gens::{hole, suites};
//!
//! let inst = hole::pigeonhole(6);
//! assert_eq!(inst.expected, Some(false)); // pigeonhole is UNSAT
//!
//! let classes = suites::ABLATION_ORDER;
//! assert_eq!(classes.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beijing;
pub mod blocksworld;
pub mod bmc_gen;
pub mod extra;
pub mod hanoi;
pub mod hole;
mod instance;
pub mod ksat;
pub mod miters;
pub mod parity;
pub mod pipeline;
pub mod suites;

pub use instance::BenchInstance;
