//! The *Hanoi* class: Towers-of-Hanoi SAT planning (DIMACS `hanoi4/5`,
//! plus the `hanoi6` instance the paper added, §4).
//!
//! The classical SATPLAN encoding: peg-membership state variables, one
//! action per step, explanatory frame axioms. `hanoi(n)` asks for a plan of
//! exactly the optimal length `2^n − 1` (satisfiable); one step fewer is
//! unsatisfiable.

use berkmin_cnf::{Cnf, Lit, Var};

use crate::BenchInstance;

const PEGS: usize = 3;

struct Vars {
    disks: usize,
    steps: usize,
}

impl Vars {
    /// `on(d, p, t)`: disk `d` (0 = smallest) is on peg `p` at time `t`.
    fn on(&self, d: usize, p: usize, t: usize) -> Var {
        debug_assert!(d < self.disks && p < PEGS && t <= self.steps);
        Var::new(((t * self.disks + d) * PEGS + p) as u32)
    }

    /// `mv(d, p, q, t)`: disk `d` moves from peg `p` to peg `q` at step `t`.
    fn mv(&self, d: usize, p: usize, q: usize, t: usize) -> Var {
        debug_assert!(p != q && t < self.steps);
        let base = (self.steps + 1) * self.disks * PEGS;
        // q encoded among the two pegs ≠ p: index 0 or 1.
        let qi = if q > p { q - 1 } else { q };
        Var::new((base + ((t * self.disks + d) * PEGS + p) * 2 + qi) as u32)
    }

    fn total(&self) -> usize {
        (self.steps + 1) * self.disks * PEGS + self.steps * self.disks * PEGS * 2
    }
}

/// Builds the Hanoi planning CNF for `disks` disks and a horizon of
/// `steps` moves (all disks start on peg 0, must end on peg 2).
pub fn hanoi_with_horizon(disks: usize, steps: usize) -> Cnf {
    assert!(disks > 0, "need at least one disk");
    assert!(steps > 0, "need at least one step");
    let v = Vars { disks, steps };
    let mut cnf = Cnf::with_vars(v.total());
    cnf.add_comment(format!("towers of hanoi: {disks} disks, {steps} steps"));

    // Every disk is on exactly one peg at every time.
    for t in 0..=steps {
        for d in 0..disks {
            cnf.add_clause((0..PEGS).map(|p| Lit::pos(v.on(d, p, t))));
            for p1 in 0..PEGS {
                for p2 in (p1 + 1)..PEGS {
                    cnf.add_clause([Lit::neg(v.on(d, p1, t)), Lit::neg(v.on(d, p2, t))]);
                }
            }
        }
    }

    // Initial and goal states.
    for d in 0..disks {
        cnf.add_clause([Lit::pos(v.on(d, 0, 0))]);
        cnf.add_clause([Lit::pos(v.on(d, 2, steps))]);
    }

    // Exactly one move per step.
    let moves_at = |t: usize| -> Vec<Var> {
        let mut ms = Vec::new();
        for d in 0..disks {
            for p in 0..PEGS {
                for q in 0..PEGS {
                    if p != q {
                        ms.push(v.mv(d, p, q, t));
                    }
                }
            }
        }
        ms
    };
    for t in 0..steps {
        let ms = moves_at(t);
        cnf.add_clause(ms.iter().map(|&m| Lit::pos(m)));
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                cnf.add_clause([Lit::neg(ms[i]), Lit::neg(ms[j])]);
            }
        }
    }

    // Preconditions and effects.
    for t in 0..steps {
        for d in 0..disks {
            for p in 0..PEGS {
                for q in 0..PEGS {
                    if p == q {
                        continue;
                    }
                    let m = Lit::neg(v.mv(d, p, q, t));
                    // Disk must be on the source peg.
                    cnf.add_clause([m, Lit::pos(v.on(d, p, t))]);
                    // No smaller disk on source (d is on top) or target
                    // (no placing a larger disk onto a smaller one).
                    for smaller in 0..d {
                        cnf.add_clause([m, Lit::neg(v.on(smaller, p, t))]);
                        cnf.add_clause([m, Lit::neg(v.on(smaller, q, t))]);
                    }
                    // Effect: disk arrives on the target peg.
                    cnf.add_clause([m, Lit::pos(v.on(d, q, t + 1))]);
                }
            }
        }
    }

    // Explanatory frame axioms: peg membership changes only through moves.
    for t in 0..steps {
        for d in 0..disks {
            for p in 0..PEGS {
                // Left the peg ⇒ some move from p.
                let mut away: Vec<Lit> = vec![Lit::neg(v.on(d, p, t)), Lit::pos(v.on(d, p, t + 1))];
                // Arrived on the peg ⇒ some move onto p.
                let mut onto: Vec<Lit> = vec![Lit::pos(v.on(d, p, t)), Lit::neg(v.on(d, p, t + 1))];
                for q in 0..PEGS {
                    if q != p {
                        away.push(Lit::pos(v.mv(d, p, q, t)));
                        onto.push(Lit::pos(v.mv(d, q, p, t)));
                    }
                }
                cnf.add_clause(away);
                cnf.add_clause(onto);
            }
        }
    }

    cnf
}

/// The optimal plan length for `disks` disks.
pub fn optimal_steps(disks: usize) -> usize {
    (1usize << disks) - 1
}

/// `hanoiN`: plan of exactly the optimal length `2^N − 1` — satisfiable.
pub fn hanoi(disks: usize) -> BenchInstance {
    let steps = optimal_steps(disks);
    BenchInstance::new(
        format!("hanoi{disks}"),
        hanoi_with_horizon(disks, steps),
        Some(true),
    )
}

/// One step short of optimal — unsatisfiable (the optimality side of the
/// classic theorem, useful for UNSAT stress).
pub fn hanoi_unsat(disks: usize) -> BenchInstance {
    let steps = optimal_steps(disks) - 1;
    BenchInstance::new(
        format!("hanoi{disks}u"),
        hanoi_with_horizon(disks, steps),
        Some(false),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn optimal_lengths() {
        assert_eq!(optimal_steps(1), 1);
        assert_eq!(optimal_steps(3), 7);
        assert_eq!(optimal_steps(5), 31);
    }

    #[test]
    fn one_disk_moves_once() {
        let inst = hanoi(1);
        let model = inst.cnf.solve_by_enumeration().expect("trivially solvable");
        assert!(inst.cnf.is_satisfied_by(&model));
    }

    #[test]
    fn hanoi3_sat_at_optimum_unsat_below() {
        let sat = hanoi(3);
        let mut s = Solver::new(&sat.cnf, SolverConfig::berkmin());
        let status = s.solve();
        let model = status.model().expect("hanoi3 at 7 steps is solvable");
        assert!(sat.cnf.is_satisfied_by(model));

        let unsat = hanoi_unsat(3);
        let mut s = Solver::new(&unsat.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat(), "6 steps cannot solve 3 disks");
    }

    #[test]
    fn hanoi4_is_satisfiable() {
        let inst = hanoi(4);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        let status = s.solve();
        assert!(status.is_sat());
        assert!(inst.cnf.is_satisfied_by(status.model().unwrap()));
    }

    #[test]
    fn model_encodes_a_legal_plan() {
        // Decode the hanoi(2) plan (3 moves) and re-validate it by hand.
        let disks = 2;
        let steps = 3;
        let cnf = hanoi_with_horizon(disks, steps);
        let mut s = Solver::new(&cnf, SolverConfig::berkmin());
        let status = s.solve();
        let model = status.model().unwrap();
        let v = Vars { disks, steps };
        // Walk the state trajectory, checking Hanoi legality.
        let mut pegs: Vec<Vec<usize>> = vec![vec![1, 0], vec![], vec![]]; // bottom→top
        for t in 0..steps {
            // Find the move taken at t.
            let mut the_move = None;
            for d in 0..disks {
                for p in 0..3 {
                    for q in 0..3 {
                        if p != q && model.satisfies(Lit::pos(v.mv(d, p, q, t))) {
                            assert!(the_move.is_none(), "two moves at step {t}");
                            the_move = Some((d, p, q));
                        }
                    }
                }
            }
            let (d, p, q) = the_move.expect("one move per step");
            assert_eq!(pegs[p].last(), Some(&d), "moved disk must be on top");
            assert!(
                pegs[q].last().map_or(true, |&top| top > d),
                "cannot place {d} on smaller disk"
            );
            pegs[p].pop();
            pegs[q].push(d);
        }
        assert_eq!(pegs[2], vec![1, 0], "all disks on peg 2");
    }
}
