//! Benchmark-instance wrapper shared by all generators.

use berkmin_cnf::Cnf;
use std::fmt;

/// A generated benchmark instance: a CNF plus its provenance and, where the
/// construction guarantees it, the expected verdict.
#[derive(Debug, Clone)]
pub struct BenchInstance {
    /// Instance name in the paper's style (e.g. `hole8`, `miter70_60_5`).
    pub name: String,
    /// The formula.
    pub cnf: Cnf,
    /// `Some(true)` = satisfiable by construction, `Some(false)` =
    /// unsatisfiable by construction, `None` = unknown a priori.
    pub expected: Option<bool>,
}

impl BenchInstance {
    /// Creates an instance with a known verdict.
    pub fn new(name: impl Into<String>, cnf: Cnf, expected: Option<bool>) -> Self {
        BenchInstance {
            name: name.into(),
            cnf,
            expected,
        }
    }
}

impl fmt::Display for BenchInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vars, {} clauses, expected {})",
            self.name,
            self.cnf.num_vars(),
            self.cnf.num_clauses(),
            match self.expected {
                Some(true) => "SAT",
                Some(false) => "UNSAT",
                None => "?",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes() {
        let mut cnf = Cnf::new();
        cnf.add_clause([berkmin_cnf::Lit::from_dimacs(1)]);
        let inst = BenchInstance::new("demo", cnf, Some(true));
        assert_eq!(inst.to_string(), "demo (1 vars, 1 clauses, expected SAT)");
    }
}
