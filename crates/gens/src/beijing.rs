//! The *Beijing* class analog: adder-circuit constraint problems.
//!
//! The 1996 Beijing suite (`2bitadd_*`, `3bitadd_*`, …) encodes adder
//! synthesis/justification constraints — "hard class of easy CNFs" (§4):
//! every instance is easy for *some* solver but each solver of the era
//! stumbled on a few. We regenerate the family from actual adder circuits:
//! satisfiable goal-justification instances ("which inputs produce this
//! sum?") and unsatisfiable arithmetic impossibilities ("make `a + a`
//! odd").

use berkmin_circuit::{arith, encode};
use berkmin_cnf::Lit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// Satisfiable justification: find inputs of a `bits`-wide ripple-carry
/// adder whose sum equals a randomly chosen (always reachable) target.
/// Several targets are stacked into one CNF to mimic the multi-constraint
/// `Nbitadd` instances.
pub fn adder_goal(bits: usize, rounds: usize, seed: u64) -> BenchInstance {
    assert!(bits > 0 && rounds > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = berkmin_cnf::Cnf::new();
    cnf.add_comment(format!(
        "beijing-style adder justification: {bits} bits × {rounds} (SAT)"
    ));
    for _ in 0..rounds {
        let adder = arith::ripple_carry_adder(bits);
        let mut enc = encode(&adder);
        // Choose a reachable target by simulating a random input.
        let a: u64 = rng.gen_range(0..1u64 << bits);
        let b: u64 = rng.gen_range(0..1u64 << bits);
        let cin = rng.gen_bool(0.5);
        let sum = a + b + cin as u64;
        for i in 0..=bits {
            enc.constrain_output(i, sum >> i & 1 == 1);
        }
        cnf.append_disjoint(&enc.cnf);
    }
    BenchInstance::new(format!("{bits}bitadd_{rounds}_{seed}"), cnf, Some(true))
}

/// Unsatisfiable arithmetic impossibility: wire both adder operands to the
/// same inputs with carry-in 0 (computing `2a`) and demand an odd sum.
pub fn adder_unsat(bits: usize) -> BenchInstance {
    assert!(bits > 0);
    let adder = arith::ripple_carry_adder(bits);
    let mut enc = encode(&adder);
    // a_i ≡ b_i for all i; cin = 0; sum bit 0 = 1.
    for i in 0..bits {
        let a = enc.input_vars[i];
        let b = enc.input_vars[bits + i];
        enc.cnf.add_clause([Lit::pos(a), Lit::neg(b)]);
        enc.cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
    }
    let cin = enc.input_vars[2 * bits];
    enc.cnf.add_clause([Lit::neg(cin)]);
    enc.constrain_output(0, true);
    BenchInstance::new(format!("{bits}bitadd_odd"), enc.cnf, Some(false))
}

/// A chained variant (`3bitadd`-style): two adders composed, the second
/// consuming the first's sum; justification of a reachable final target.
pub fn chained_adder_goal(bits: usize, seed: u64) -> BenchInstance {
    assert!(bits > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Build (a + b) + c with a single netlist.
    let mut n = berkmin_circuit::Netlist::new();
    let a = n.inputs_n(bits);
    let b = n.inputs_n(bits);
    let c = n.inputs_n(bits);
    let zero = n.constant(false);
    let (s1, c1) = arith::ripple_add(&mut n, &a, &b, zero);
    let (s2, c2) = arith::ripple_add(&mut n, &s1, &c, zero);
    for s in &s2 {
        n.set_output(*s);
    }
    // Final carry bit: c1 OR c2 can both fire; expose the pair.
    let carry_sum = n.xor(c1, c2);
    let carry_carry = n.and(c1, c2);
    n.set_output(carry_sum);
    n.set_output(carry_carry);

    let av: u64 = rng.gen_range(0..1u64 << bits);
    let bv: u64 = rng.gen_range(0..1u64 << bits);
    let cv: u64 = rng.gen_range(0..1u64 << bits);
    // Reproduce the circuit's own arithmetic to pick a reachable target.
    let mask = (1u64 << bits) - 1;
    let t1 = av + bv;
    let c1v = t1 >> bits & 1;
    let t2 = (t1 & mask) + cv;
    let c2v = t2 >> bits & 1;
    let target_sum = t2 & mask;
    let (cs, cc) = (c1v ^ c2v, c1v & c2v);

    let mut enc = encode(&n);
    for i in 0..bits {
        enc.constrain_output(i, target_sum >> i & 1 == 1);
    }
    enc.constrain_output(bits, cs == 1);
    enc.constrain_output(bits + 1, cc == 1);
    BenchInstance::new(format!("{bits}bitadd3_{seed}"), enc.cnf, Some(true))
}

/// Returns `true` iff `n` is prime (trial division; inputs are small).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

/// Satisfiable factoring: find `a, b` with `a · b = p · q` for random
/// `bits`-wide primes-or-odd factors — the multiplier-justification twist
/// on the Beijing adder CSPs, and a classically hard SAT family.
pub fn factor_semiprime(bits: usize, seed: u64) -> BenchInstance {
    assert!(bits >= 3, "need at least 3-bit factors");
    let mut rng = StdRng::seed_from_u64(seed);
    // Two random odd factors ≥ 3 that fit in `bits` bits.
    let max = (1u64 << bits) - 1;
    let pick = |rng: &mut StdRng| -> u64 {
        loop {
            let f = rng.gen_range(3..=max) | 1;
            if f >= 3 {
                return f;
            }
        }
    };
    let p = pick(&mut rng);
    let q = pick(&mut rng);
    let n = p * q;
    let mul = arith::array_multiplier(bits);
    let mut enc = encode(&mul);
    for i in 0..2 * bits {
        enc.constrain_output(i, n >> i & 1 == 1);
    }
    BenchInstance::new(format!("factor{bits}_{seed}"), enc.cnf, Some(true))
}

/// Unsatisfiable factoring: demand that the `bits`×`bits` multiplier
/// produce a prime `≥ 2^bits`. Its only factorizations are `1 × p`, and
/// `p` does not fit in `bits` bits, so no input justifies the output.
pub fn factor_prime(bits: usize, seed: u64) -> BenchInstance {
    assert!((4..=16).contains(&bits), "supported factor widths: 4..=16");
    // Deterministically pick a prime in [2^bits, 2^(2·bits)).
    let lo = 1u64 << bits;
    let hi = (1u64 << (2 * bits)) - 1;
    let mut candidate = (lo + (seed % (hi - lo))) | 1;
    while !is_prime(candidate) {
        candidate += 2;
        if candidate > hi {
            candidate = lo | 1;
        }
    }
    let mul = arith::array_multiplier(bits);
    let mut enc = encode(&mul);
    for i in 0..2 * bits {
        enc.constrain_output(i, candidate >> i & 1 == 1);
    }
    BenchInstance::new(format!("primefac{bits}_{seed}"), enc.cnf, Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn adder_goals_are_satisfiable() {
        for seed in 0..3 {
            let inst = adder_goal(6, 2, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            let status = s.solve();
            let model = status.model().expect("reachable target");
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn doubled_operand_cannot_be_odd() {
        for bits in [2, 4, 8] {
            let inst = adder_unsat(bits);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "{bits} bits");
        }
    }

    #[test]
    fn chained_adders_are_satisfiable() {
        let inst = chained_adder_goal(5, 3);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        let status = s.solve();
        assert!(status.is_sat());
        assert!(inst.cnf.is_satisfied_by(status.model().unwrap()));
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(adder_goal(2, 10, 0).name, "2bitadd_10_0");
        assert_eq!(adder_unsat(3).name, "3bitadd_odd");
    }

    #[test]
    fn semiprime_factoring_is_sat() {
        let inst = factor_semiprime(4, 1);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        let status = s.solve();
        assert!(status.is_sat());
        assert!(inst.cnf.is_satisfied_by(status.model().unwrap()));
    }

    #[test]
    fn prime_products_are_unsat() {
        for seed in [0, 99] {
            let inst = factor_prime(4, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "{}", inst.name);
        }
    }

    #[test]
    fn primality_helper() {
        assert!(is_prime(2) && is_prime(17) && is_prime(8191));
        assert!(!is_prime(1) && !is_prime(15) && !is_prime(8192));
    }
}
