//! The *Hole* class: pigeonhole-principle formulas (DIMACS `holeN`).
//!
//! `PHP(n)` states that `n + 1` pigeons fit into `n` holes with at most one
//! pigeon per hole — unsatisfiable, with exponential-size resolution proofs,
//! which is why the class appears in every solver evaluation including the
//! paper's Tables 1–6.

use berkmin_cnf::{Cnf, Lit, Var};

use crate::BenchInstance;

/// Generates the pigeonhole formula `holeN`: `n + 1` pigeons, `n` holes.
///
/// Variables: `p(i, j)` ⇔ pigeon `i` sits in hole `j`. Clauses: every
/// pigeon sits somewhere; no hole holds two pigeons. Always UNSAT.
///
/// # Panics
///
/// Panics if `holes == 0`.
pub fn pigeonhole(holes: usize) -> BenchInstance {
    assert!(holes > 0, "need at least one hole");
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    let mut cnf = Cnf::with_vars(pigeons * holes);
    cnf.add_comment(format!(
        "pigeonhole: {pigeons} pigeons, {holes} holes (UNSAT)"
    ));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    BenchInstance::new(format!("hole{holes}"), cnf, Some(false))
}

/// The satisfiable sibling (`n` pigeons in `n` holes) — not part of the
/// paper's class but useful as a sanity counterpart in tests.
pub fn pigeonhole_sat(holes: usize) -> BenchInstance {
    assert!(holes > 0, "need at least one hole");
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    let mut cnf = Cnf::with_vars(holes * holes);
    for p in 0..holes {
        cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
    }
    for h in 0..holes {
        for p1 in 0..holes {
            for p2 in (p1 + 1)..holes {
                cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    BenchInstance::new(format!("hole{holes}sat"), cnf, Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_formula_counts() {
        let inst = pigeonhole(4);
        // vars: 5*4; clauses: 5 (ALO) + 4 * C(5,2) = 5 + 40.
        assert_eq!(inst.cnf.num_vars(), 20);
        assert_eq!(inst.cnf.num_clauses(), 45);
        assert_eq!(inst.expected, Some(false));
    }

    #[test]
    fn small_instances_verified_by_enumeration() {
        assert!(pigeonhole(2).cnf.solve_by_enumeration().is_none());
        assert!(pigeonhole_sat(2).cnf.solve_by_enumeration().is_some());
        assert!(pigeonhole(3).cnf.solve_by_enumeration().is_none());
    }

    #[test]
    fn solver_proves_hole5_unsat() {
        let inst = pigeonhole(5);
        let mut s = berkmin::Solver::new(&inst.cnf, berkmin::SolverConfig::berkmin());
        assert!(s.solve().is_unsat());
    }
}
