//! The microprocessor-verification class analogs: *Sss*, *Fvp-unsat*,
//! *Vliw-sat* (Velev's CMU suites, §4/§9).
//!
//! The original CNFs check pipelined processor implementations against
//! sequential reference models; after Burch–Dill flushing the obligation
//! is a *combinational* equivalence between two datapaths. We regenerate
//! that shape: an ALU datapath vs. a `k`-round restructured copy (UNSAT —
//! the `Npipe` family, difficulty rising with `k`), satisfiable variants
//! with an injected stage bug (*Sss-sat*, *Vliw-sat*).

use berkmin_circuit::rewrite::{inject_fault, restructure};
use berkmin_circuit::{arith, eval64, miter, miter_cnf, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// Builds the reference datapath: an ALU of the given width feeding a
/// comparator-style zero flag — the flushed-pipeline proof obligation.
fn datapath(width: usize) -> Netlist {
    arith::alu(width)
}

/// The `Npipe` analog (Fvp-unsat-2.0's `4pipe … 7pipe`): the execution
/// stage's multiplier datapath mitered against a restructured
/// implementation. Widths are chosen so difficulty rises steeply with `k`
/// exactly as the paper's pipe family does (measured on this codebase:
/// `4pipe` ≈ 0.3 s, `5pipe` ≈ 2 s, `6pipe` ≈ 13 s, `7pipe` ≈ minutes with
/// the default configuration). UNSAT.
pub fn npipe(k: usize) -> BenchInstance {
    assert!(k > 0, "pipeline depth must be positive");
    // Multiplier operand widths per depth: the partial-product count is
    // the difficulty dial (cf. DESIGN.md).
    let (a_bits, b_bits) = match k {
        1 => (4, 4),
        2 => (5, 5),
        3 => (5, 6),
        4 => (6, 6),
        5 => (6, 7),
        6 => (7, 7),
        _ => (7, k + 1), // 7pipe = 7×8, growing beyond
    };
    let reference = arith::array_multiplier_rect(a_bits, b_bits);
    let mut impl_ = reference.clone();
    for round in 0..k.min(3) {
        impl_ = restructure(&impl_, 0xF00D + round as u64);
    }
    BenchInstance::new(
        format!("{k}pipe"),
        miter_cnf(&reference, &impl_),
        Some(false),
    )
}

/// An out-of-order flavored variant (`6pipe_6_ooo` analog): the datapath
/// restructured with a different seed schedule and an extra multiplier
/// stage mixed in.
pub fn npipe_ooo(k: usize) -> BenchInstance {
    assert!(k > 1, "ooo variant needs depth ≥ 2");
    let width = 2 * k;
    // Reference: ALU result XOR-folded with a small multiplier of the low
    // operand bits — models a second functional unit.
    let build = |seed: u64| -> Netlist {
        let mut n = Netlist::new();
        let a = n.inputs_n(width);
        let b = n.inputs_n(width);
        let op0 = n.input();
        let op1 = n.input();
        let alu = datapath(width);
        let mut alu_inputs: Vec<_> = a.iter().chain(&b).copied().collect();
        alu_inputs.push(op0);
        alu_inputs.push(op1);
        let alu_out = n.import(&alu, &alu_inputs);
        let mul = arith::array_multiplier(2);
        let mul_inputs = vec![a[0], a[1], b[0], b[1]];
        let mul_out = n.import(&mul, &mul_inputs);
        for (i, &o) in alu_out.iter().enumerate() {
            let folded = if i < mul_out.len() {
                n.xor(o, mul_out[i])
            } else {
                o
            };
            n.set_output(folded);
        }
        if seed == 0 {
            n
        } else {
            let mut out = n;
            for round in 0..k {
                out = restructure(&out, seed + round as u64);
            }
            out
        }
    };
    let reference = build(0);
    let impl_ = build(0xBEEF);
    BenchInstance::new(
        format!("{k}pipe_{k}_ooo"),
        miter_cnf(&reference, &impl_),
        Some(false),
    )
}

/// The *Vliw-sat* analog: a wide datapath with an injected, observable
/// stage bug — satisfiable, with rare counterexamples.
pub fn vliw_sat(width: usize, seed: u64) -> BenchInstance {
    let reference = datapath(width);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E57);
    let mut fault_seed = seed;
    loop {
        let staged = restructure(&reference, seed.wrapping_add(0xACE));
        if let Some((buggy, _)) = inject_fault(&staged, fault_seed) {
            if observable(&reference, &buggy, &mut rng) {
                return BenchInstance::new(
                    format!("vliw{width}_{seed}"),
                    miter_cnf(&reference, &buggy),
                    Some(true),
                );
            }
        }
        fault_seed = fault_seed.wrapping_add(1);
    }
}

/// The *Sss* analog: small, easy mixed instances (the paper solves the
/// whole Sss1.0 class in seconds). `bug = false` gives the UNSAT
/// correctness check, `bug = true` the SAT falsification check.
pub fn sss_check(width: usize, bug: bool, seed: u64) -> BenchInstance {
    let reference = datapath(width);
    if !bug {
        let impl_ = restructure(&reference, seed);
        BenchInstance::new(
            format!("sss{width}_{seed}"),
            miter_cnf(&reference, &impl_),
            Some(false),
        )
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        let mut fault_seed = seed;
        loop {
            if let Some((buggy, _)) = inject_fault(&reference, fault_seed) {
                if observable(&reference, &buggy, &mut rng) {
                    return BenchInstance::new(
                        format!("sss{width}_{seed}s"),
                        miter_cnf(&reference, &buggy),
                        Some(true),
                    );
                }
            }
            fault_seed = fault_seed.wrapping_add(1);
        }
    }
}

fn observable(a: &Netlist, b: &Netlist, rng: &mut StdRng) -> bool {
    let m = miter(a, b);
    for _ in 0..32 {
        let words: Vec<u64> = (0..m.num_inputs()).map(|_| rng.gen()).collect();
        if eval64(&m, &words)[0] != 0 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn npipe_instances_are_unsat() {
        for k in 1..=2 {
            let inst = npipe(k);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "{}", inst.name);
        }
    }

    #[test]
    fn ooo_variant_is_unsat() {
        let inst = npipe_ooo(2);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn vliw_instances_are_sat() {
        let inst = vliw_sat(4, 1);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        let status = s.solve();
        assert!(status.is_sat());
        assert!(inst.cnf.is_satisfied_by(status.model().unwrap()));
    }

    #[test]
    fn sss_pair_has_expected_verdicts() {
        let ok = sss_check(3, false, 2);
        let mut s = Solver::new(&ok.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());

        let bad = sss_check(3, true, 2);
        let mut s = Solver::new(&bad.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn difficulty_grows_with_depth() {
        // Deeper pipes must produce strictly larger CNFs (the difficulty
        // dial actually turns).
        let a = npipe(1);
        let b = npipe(2);
        assert!(b.cnf.num_clauses() > a.cnf.num_clauses());
        assert!(b.cnf.num_vars() > a.cnf.num_vars());
    }
}
