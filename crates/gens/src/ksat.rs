//! Random k-SAT generators: uniform, planted (guaranteed SAT), and
//! linearly inconsistent XOR systems (guaranteed UNSAT). Used for the
//! SAT-2002 `ip`/`cnf-r4` analogs and for stress tests.

use berkmin_cnf::{Cnf, Lit, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// Uniform random k-SAT over `n` variables with `m` clauses (distinct
/// variables within a clause). Verdict unknown a priori (`expected: None`).
pub fn random_ksat(n: usize, m: usize, k: usize, seed: u64) -> BenchInstance {
    assert!(k >= 1 && n >= k, "need n ≥ k ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::with_vars(n);
    cnf.add_comment(format!("uniform {k}-SAT: n={n}, m={m}"));
    for _ in 0..m {
        cnf.push_clause(random_clause(n, k, &mut rng, None));
    }
    BenchInstance::new(format!("uf{k}_{n}_{m}_{seed}"), cnf, None)
}

/// Planted random k-SAT: every clause is satisfied by a hidden assignment,
/// so the instance is SAT by construction (the SAT-2002 `cnf-r4-*` analog).
pub fn planted_ksat(n: usize, m: usize, k: usize, seed: u64) -> BenchInstance {
    assert!(k >= 1 && n >= k, "need n ≥ k ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let planted: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut cnf = Cnf::with_vars(n);
    cnf.add_comment(format!("planted {k}-SAT: n={n}, m={m} (SAT)"));
    for _ in 0..m {
        cnf.push_clause(random_clause(n, k, &mut rng, Some(&planted)));
    }
    BenchInstance::new(format!("pr{k}_{n}_{m}_{seed}"), cnf, Some(true))
}

fn random_clause(
    n: usize,
    k: usize,
    rng: &mut StdRng,
    planted: Option<&[bool]>,
) -> berkmin_cnf::Clause {
    loop {
        let mut vars: Vec<usize> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits: Vec<Lit> = vars
            .iter()
            .map(|&v| Lit::new(Var::new(v as u32), rng.gen()))
            .collect();
        if let Some(assign) = planted {
            let satisfied = lits
                .iter()
                .any(|l| assign[l.var().index()] != l.is_negative());
            if !satisfied {
                continue; // resample until the planted witness survives
            }
        }
        return berkmin_cnf::Clause::from_lits(lits);
    }
}

/// Guaranteed-UNSAT hard instances (`ip*` analogs): a consistent random
/// XOR system (each equation 3-CNF-ized) plus one equation that is the XOR
/// of *half the system* with a flipped right-hand side — linearly
/// inconsistent, hence unsatisfiable, but the contradiction is spread over
/// many equations, making the refutation resolution-hard like
/// Tseitin/Urquhart formulas.
pub fn xor_unsat(n: usize, m: usize, seed: u64) -> BenchInstance {
    assert!(n >= 3, "need at least 3 variables");
    assert!(m >= 2, "need at least 2 base equations");
    let mut rng = StdRng::seed_from_u64(seed);
    let secret: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut cnf = Cnf::with_vars(n);
    cnf.add_comment(format!("inconsistent XOR system: n={n}, m={m} (UNSAT)"));
    let mut equations: Vec<(Vec<usize>, bool)> = Vec::with_capacity(m + 1);
    for _ in 0..m {
        let mut vars: Vec<usize> = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.gen_range(0..n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let y = vars.iter().fold(false, |acc, &i| acc ^ secret[i]);
        equations.push((vars, y));
    }
    // Poisoned equation: the XOR of every second equation, RHS flipped.
    // Summing many equations leaves a wide residual support, so refuting
    // the system requires chaining through a large part of it.
    let mut combined = vec![false; n];
    let mut rhs = true;
    for (idx, (vars, y)) in equations.iter().enumerate() {
        if idx % 2 == 0 {
            for &v in vars {
                combined[v] ^= true;
            }
            rhs ^= y;
        }
    }
    let combo: Vec<usize> = (0..n).filter(|&i| combined[i]).collect();
    equations.push((combo, rhs));

    for (vars, y) in &equations {
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(Var::new(v as u32))).collect();
        crate::parity::xor_constraint(&mut cnf, &lits, *y);
    }
    BenchInstance::new(format!("xoru_{n}_{m}_{seed}"), cnf, Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn planted_instances_are_sat() {
        for seed in 0..3 {
            let inst = planted_ksat(30, 120, 3, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            let status = s.solve();
            let model = status.model().expect("planted ⇒ SAT");
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn xor_unsat_instances_are_unsat() {
        for seed in 0..3 {
            let inst = xor_unsat(12, 20, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "seed {seed}");
        }
    }

    #[test]
    fn xor_unsat_spreads_the_poison() {
        // The poisoned equation must involve more than a couple of
        // variables, otherwise the instance is trivially refutable.
        let inst = xor_unsat(40, 40, 7);
        assert!(inst.cnf.num_clauses() > 40 * 4, "chain encoding expected");
    }

    #[test]
    fn uniform_generator_shape() {
        let inst = random_ksat(20, 85, 3, 9);
        assert_eq!(inst.cnf.num_vars(), 20);
        assert_eq!(inst.cnf.num_clauses(), 85);
        assert!(inst.cnf.iter().all(|c| c.len() == 3));
        assert_eq!(inst.expected, None);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_ksat(15, 60, 3, 4).cnf.clauses(),
            random_ksat(15, 60, 3, 4).cnf.clauses()
        );
    }
}
