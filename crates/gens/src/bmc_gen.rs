//! Bounded-model-checking instances (the SAT-2002 `bmc2/cnt10` analog in
//! Table 10, plus `fifo`/`f2clk`-style reachability questions).

use berkmin_circuit::arith::{counter, enabled_counter};
use berkmin_circuit::bmc::unroll;
use berkmin_circuit::Netlist;
use berkmin_cnf::Lit;

use crate::BenchInstance;

/// `cntN`: does the N-bit counter reach the all-ones state within its
/// horizon? SAT exactly at `2^bits − 1` cycles after reset.
pub fn bmc_counter(bits: usize) -> BenchInstance {
    let horizon = (1usize << bits) - 1;
    let n = counter(bits);
    let mut enc = unroll(&n, horizon + 1);
    for o in 0..bits {
        enc.constrain_output_at(horizon, o, true);
    }
    BenchInstance::new(format!("cnt{bits}"), enc.cnf, Some(true))
}

/// The unsatisfiable sibling: all-ones demanded one cycle too early.
pub fn bmc_counter_unsat(bits: usize) -> BenchInstance {
    let horizon = (1usize << bits) - 2;
    let n = counter(bits);
    let mut enc = unroll(&n, horizon + 1);
    for o in 0..bits {
        enc.constrain_output_at(horizon, o, true);
    }
    BenchInstance::new(format!("cnt{bits}u"), enc.cnf, Some(false))
}

/// `cntN` with a free enable input per cycle: reaching all-ones at cycle
/// `2^bits − 1` forces *every* enable high — satisfiable with a unique
/// enable trace the solver must discover (unlike the free-running counter,
/// this is not solved by propagation alone).
pub fn bmc_counter_enable(bits: usize) -> BenchInstance {
    let horizon = (1usize << bits) - 1;
    let n = enabled_counter(bits);
    let mut enc = unroll(&n, horizon + 1);
    for o in 0..bits {
        enc.constrain_output_at(horizon, o, true);
    }
    BenchInstance::new(format!("cnt{bits}e"), enc.cnf, Some(true))
}

/// The unsatisfiable sibling of [`bmc_counter_enable`]: all-ones demanded
/// one cycle too early — no enable trace can get there.
pub fn bmc_counter_enable_unsat(bits: usize) -> BenchInstance {
    let horizon = (1usize << bits) - 2;
    let n = enabled_counter(bits);
    let mut enc = unroll(&n, horizon + 1);
    for o in 0..bits {
        enc.constrain_output_at(horizon, o, true);
    }
    BenchInstance::new(format!("cnt{bits}eu"), enc.cnf, Some(false))
}

/// One per-depth query of the enabled-counter reachability sweep: "is the
/// count all-ones at cycle `depth`?" — SAT iff `depth ≥ 2^bits − 1` (the
/// enable input lets the counter park once it arrives). This is the scratch
/// instance the incremental `BmcDriver` sweep answers with one warm solver;
/// benches build one per depth to measure what clause reuse saves.
pub fn bmc_counter_enable_at(bits: usize, depth: usize) -> BenchInstance {
    let n = enabled_counter(bits);
    let mut enc = unroll(&n, depth + 1);
    for o in 0..bits {
        enc.constrain_output_at(depth, o, true);
    }
    let expected = Some(depth >= (1usize << bits) - 1);
    BenchInstance::new(format!("cnt{bits}e@{depth}"), enc.cnf, expected)
}

/// Builds a `depth`-stage shift register (FIFO skeleton): input bit enters
/// stage 0; output is the last stage.
fn shift_register(depth: usize) -> Netlist {
    let mut n = Netlist::new();
    let din = n.input();
    let mut prev = din;
    let mut regs = Vec::with_capacity(depth);
    for _ in 0..depth {
        let q = n.dff(false);
        n.connect_dff(q, prev);
        regs.push(q);
        prev = q;
    }
    n.set_output(*regs.last().expect("depth > 0"));
    n
}

/// `fifoN_T` analog: can the FIFO's output be 1 at cycle `T`? The first
/// bit needs `depth` cycles to traverse, so the property is SAT iff
/// `cycle ≥ depth`.
pub fn bmc_fifo(depth: usize, cycle: usize) -> BenchInstance {
    assert!(depth > 0, "fifo needs at least one stage");
    let n = shift_register(depth);
    let mut enc = unroll(&n, cycle + 1);
    enc.constrain_output_at(cycle, 0, true);
    let expected = Some(cycle >= depth);
    BenchInstance::new(format!("fifo{depth}_{cycle}"), enc.cnf, expected)
}

/// `f2clk` analog: two counters clocked against each other — a fast 1-bit
/// toggle and a slow `bits`-bit counter; ask whether the toggle and the
/// counter's MSB can be simultaneously high *and* the counter's lower bits
/// all zero at an odd cycle where parity forbids it. Constructed UNSAT:
/// the toggle equals cycle parity and the counter MSB first rises at cycle
/// `2^(bits-1)` (even), so demanding both `toggle = 1` (odd cycle) and
/// `count = 2^(bits-1)` (which happens only at even cycles ≤ horizon) at
/// the same cycle `2^(bits-1)` is impossible.
pub fn bmc_f2clk(bits: usize) -> BenchInstance {
    assert!(bits >= 2, "need a multi-bit counter");
    let mut n = Netlist::new();
    // Toggle flip-flop: equals cycle parity.
    let t = n.dff(false);
    let nt = n.not(t);
    n.connect_dff(t, nt);
    // Counter.
    let cnt = counter(bits);
    let cnt_outs = n.import(&cnt, &[]);
    n.set_output(t);
    for o in cnt_outs {
        n.set_output(o);
    }
    let cycle = 1usize << (bits - 1); // counter == 2^(bits-1) exactly here
    let mut enc = unroll(&n, cycle + 1);
    // toggle = 1 at an even cycle: impossible.
    enc.constrain_output_at(cycle, 0, true);
    // counter = 2^(bits-1): MSB 1, others 0 (consistent on its own).
    for b in 0..bits {
        enc.constrain_output_at(cycle, 1 + b, b == bits - 1);
    }
    BenchInstance::new(format!("f2clk_{bits}"), enc.cnf, Some(false))
}

/// Extra units pinning input bits for [`bmc_fifo`]-style instances where a
/// specific data pattern must traverse (used by tests to cross-check the
/// data path, not just reachability).
pub fn bmc_fifo_pattern(depth: usize, cycle: usize, bit: bool) -> BenchInstance {
    let mut inst = bmc_fifo(depth, cycle);
    if cycle >= depth {
        // Force the input at the cycle that reaches the output.
        let n = shift_register(depth);
        let enc = unroll(&n, cycle + 1);
        let v = enc.input_vars[cycle - depth][0];
        inst.cnf.add_clause([Lit::new(v, !bit)]);
        inst.expected = Some(bit); // output must equal the injected bit
        inst.name = format!("fifo{depth}_{cycle}_{}", u8::from(bit));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    fn solve(inst: &BenchInstance) -> bool {
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        match s.solve() {
            berkmin::SolveStatus::Sat(m) => {
                assert!(inst.cnf.is_satisfied_by(&m), "{}: bad model", inst.name);
                true
            }
            berkmin::SolveStatus::Unsat => false,
            berkmin::SolveStatus::Unknown(r) => panic!("{}: aborted {r}", inst.name),
        }
    }

    #[test]
    fn counter_reaches_max_exactly_on_time() {
        assert!(solve(&bmc_counter(3)));
        assert!(!solve(&bmc_counter_unsat(3)));
    }

    #[test]
    fn counter_cnt4_solves() {
        assert!(solve(&bmc_counter(4)));
    }

    #[test]
    fn enabled_counter_needs_every_enable() {
        assert!(solve(&bmc_counter_enable(3)));
        assert!(!solve(&bmc_counter_enable_unsat(3)));
    }

    #[test]
    fn per_depth_queries_flip_at_the_horizon() {
        for depth in 0..=8 {
            let inst = bmc_counter_enable_at(3, depth);
            assert_eq!(solve(&inst), depth >= 7, "{}", inst.name);
        }
    }

    #[test]
    fn fifo_latency_is_exact() {
        assert!(!solve(&bmc_fifo(4, 3)), "bit cannot arrive early");
        assert!(solve(&bmc_fifo(4, 4)), "bit arrives after depth cycles");
        assert!(solve(&bmc_fifo(4, 7)), "later cycles also reachable");
    }

    #[test]
    fn fifo_pattern_forces_data_value() {
        assert!(solve(&bmc_fifo_pattern(3, 5, true)));
        assert!(!solve(&bmc_fifo_pattern(3, 5, false)));
    }

    #[test]
    fn f2clk_parity_conflict_is_unsat() {
        assert!(!solve(&bmc_f2clk(3)));
        assert!(!solve(&bmc_f2clk(4)));
    }
}
