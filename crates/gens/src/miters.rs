//! The *Miters* class: equivalence-checking miters of artificial
//! combinational circuits (§4: "artificial circuits were used because
//! their complexity was easy to control").
//!
//! Unsatisfiable instances miter a random circuit against an
//! equivalence-preserving restructured copy; satisfiable ones inject a
//! single observable gate fault first. Instance names follow the paper's
//! `miter<gates>_<window>_<seed>` pattern (cf. `miter70_60_5` in Table 3).

use berkmin_circuit::random::{random_circuit, RandomCircuitSpec};
use berkmin_circuit::rewrite::{inject_fault, restructure};
use berkmin_circuit::{arith, eval64, miter, miter_cnf, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// UNSAT miter: random circuit vs. its restructured (equivalent) copy.
pub fn equivalent_miter(gates: usize, window: usize, seed: u64) -> BenchInstance {
    let spec = RandomCircuitSpec {
        inputs: 16,
        gates,
        outputs: 8.min(gates),
        window,
        seed,
    };
    let c = random_circuit(&spec);
    let c2 = restructure(&c, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    BenchInstance::new(
        format!("miter{gates}_{window}_{seed}"),
        miter_cnf(&c, &c2),
        Some(false),
    )
}

/// SAT miter: random circuit vs. a copy with one *observable* injected
/// fault. Observability is confirmed by random simulation before the
/// instance is emitted (masked faults retry with the next seed), so the
/// expected verdict is guaranteed.
pub fn buggy_miter(gates: usize, window: usize, seed: u64) -> BenchInstance {
    let spec = RandomCircuitSpec {
        inputs: 16,
        gates,
        outputs: 8.min(gates),
        window,
        seed,
    };
    let c = random_circuit(&spec);
    let mut fault_seed = seed.wrapping_add(0xFA017);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C0);
    loop {
        if let Some((buggy, _)) = inject_fault(&c, fault_seed) {
            if observable_difference(&c, &buggy, &mut rng) {
                return BenchInstance::new(
                    format!("miter{gates}_{window}_{seed}b"),
                    miter_cnf(&c, &buggy),
                    Some(true),
                );
            }
        }
        fault_seed = fault_seed.wrapping_add(1);
    }
}

/// Simulates 2048 random patterns looking for a disagreement.
fn observable_difference(a: &Netlist, b: &Netlist, rng: &mut StdRng) -> bool {
    let m = miter(a, b);
    for _ in 0..32 {
        let words: Vec<u64> = (0..m.num_inputs()).map(|_| rng.gen()).collect();
        if eval64(&m, &words)[0] != 0 {
            return true;
        }
    }
    false
}

/// Structured UNSAT miter: ripple-carry vs. carry-select adder — the
/// datapath-style equivalence check (also the backbone of the pipeline
/// classes).
pub fn adder_miter(bits: usize, block: usize) -> BenchInstance {
    let r = arith::ripple_carry_adder(bits);
    let cs = arith::carry_select_adder(bits, block);
    BenchInstance::new(
        format!("addmiter{bits}_{block}"),
        miter_cnf(&r, &cs),
        Some(false),
    )
}

/// Structured UNSAT miter: array multiplier vs. restructured copy.
/// Multiplier miters grow hard very quickly with width — the class's
/// difficulty dial (measured here: 5 bits ≈ 0.03 s, 6 ≈ 0.3 s, 7 ≈ 13 s,
/// 8 ≈ 8 min under the default configuration).
pub fn multiplier_miter(bits: usize, seed: u64) -> BenchInstance {
    let m = arith::array_multiplier(bits);
    let m2 = restructure(&m, seed);
    BenchInstance::new(
        format!("mulmiter{bits}_{seed}"),
        miter_cnf(&m, &m2),
        Some(false),
    )
}

/// Rectangular-multiplier miter: the fine-grained difficulty dial between
/// the square sizes (hardness tracks the partial-product count `a · b`).
pub fn rect_multiplier_miter(a_bits: usize, b_bits: usize, seed: u64) -> BenchInstance {
    let m = arith::array_multiplier_rect(a_bits, b_bits);
    let m2 = restructure(&m, seed);
    BenchInstance::new(
        format!("mulmiter{a_bits}x{b_bits}_{seed}"),
        miter_cnf(&m, &m2),
        Some(false),
    )
}

/// Architecture miter: array multiplier vs. Wallace-tree multiplier — the
/// same function computed by genuinely different circuits, the classic
/// "hard multiplier equivalence" benchmark (no restructuring involved).
pub fn wallace_vs_array_miter(bits: usize) -> BenchInstance {
    let a = arith::array_multiplier(bits);
    let w = arith::wallace_multiplier(bits);
    BenchInstance::new(format!("wallace{bits}"), miter_cnf(&a, &w), Some(false))
}

/// Architecture miter: ripple-carry vs. Kogge–Stone adder (linear vs.
/// logarithmic carry structure). UNSAT.
pub fn adder_arch_miter(bits: usize) -> BenchInstance {
    let r = arith::ripple_carry_adder(bits);
    let ks = arith::kogge_stone_adder(bits);
    BenchInstance::new(format!("ksmiter{bits}"), miter_cnf(&r, &ks), Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn equivalent_miters_prove_unsat() {
        for seed in 0..2 {
            let inst = equivalent_miter(60, 20, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "{}", inst.name);
        }
    }

    #[test]
    fn buggy_miters_yield_counterexamples() {
        for seed in 0..2 {
            let inst = buggy_miter(60, 20, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            let status = s.solve();
            let model = status
                .model()
                .unwrap_or_else(|| panic!("{} must be SAT", inst.name));
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn adder_miters_prove_unsat() {
        let inst = adder_miter(8, 3);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn multiplier_miters_prove_unsat() {
        let inst = multiplier_miter(3, 5);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(equivalent_miter(70, 60, 5).name, "miter70_60_5");
    }

    #[test]
    fn architecture_miters_prove_unsat() {
        let w = wallace_vs_array_miter(3);
        let mut s = Solver::new(&w.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());

        let ks = adder_arch_miter(8);
        let mut s = Solver::new(&ks.cnf, SolverConfig::berkmin());
        assert!(s.solve().is_unsat());
    }
}
