//! Bonus benchmark families beyond the paper's twelve classes: N-queens
//! and graph coloring. Useful for widening robustness comparisons and as
//! user-facing examples of classic CNF encodings.

use berkmin_cnf::{Cnf, Lit, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// The N-queens problem: place `n` non-attacking queens on an n×n board.
/// Satisfiable for `n = 1` and every `n ≥ 4`; unsatisfiable for 2 and 3.
pub fn queens(n: usize) -> BenchInstance {
    assert!(n > 0, "board size must be positive");
    let var = |r: usize, c: usize| Var::new((r * n + c) as u32);
    let mut cnf = Cnf::with_vars(n * n);
    cnf.add_comment(format!("{n}-queens"));
    // One queen per row (at-least-one + at-most-one).
    for r in 0..n {
        cnf.add_clause((0..n).map(|c| Lit::pos(var(r, c))));
        for c1 in 0..n {
            for c2 in (c1 + 1)..n {
                cnf.add_clause([Lit::neg(var(r, c1)), Lit::neg(var(r, c2))]);
            }
        }
    }
    // At most one per column.
    for c in 0..n {
        for r1 in 0..n {
            for r2 in (r1 + 1)..n {
                cnf.add_clause([Lit::neg(var(r1, c)), Lit::neg(var(r2, c))]);
            }
        }
    }
    // At most one per diagonal.
    for r1 in 0..n {
        for c1 in 0..n {
            for r2 in (r1 + 1)..n {
                let d = r2 - r1;
                if c1 + d < n {
                    cnf.add_clause([Lit::neg(var(r1, c1)), Lit::neg(var(r2, c1 + d))]);
                }
                if c1 >= d {
                    cnf.add_clause([Lit::neg(var(r1, c1)), Lit::neg(var(r2, c1 - d))]);
                }
            }
        }
    }
    let expected = Some(n == 1 || n >= 4);
    BenchInstance::new(format!("queens{n}"), cnf, expected)
}

/// Graph k-coloring of a random graph with a *planted* k-coloring —
/// satisfiable by construction.
pub fn planted_coloring(nodes: usize, edges: usize, colors: usize, seed: u64) -> BenchInstance {
    assert!(colors >= 2, "need at least two colors");
    assert!(nodes >= colors, "need at least `colors` nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let planted: Vec<usize> = (0..nodes).map(|_| rng.gen_range(0..colors)).collect();
    let var = |v: usize, c: usize| Var::new((v * colors + c) as u32);
    let mut cnf = Cnf::with_vars(nodes * colors);
    cnf.add_comment(format!(
        "planted {colors}-coloring: {nodes} nodes, {edges} edges (SAT)"
    ));
    // Each node gets at least one color (at-most-one left implicit: extra
    // colors never falsify an edge constraint).
    for v in 0..nodes {
        cnf.add_clause((0..colors).map(|c| Lit::pos(var(v, c))));
    }
    // Random edges compatible with the planted coloring.
    let mut placed = 0;
    let mut guard = 0;
    while placed < edges && guard < edges * 100 {
        guard += 1;
        let u = rng.gen_range(0..nodes);
        let w = rng.gen_range(0..nodes);
        if u == w || planted[u] == planted[w] {
            continue;
        }
        for c in 0..colors {
            cnf.add_clause([Lit::neg(var(u, c)), Lit::neg(var(w, c))]);
        }
        placed += 1;
    }
    BenchInstance::new(
        format!("color{colors}_{nodes}_{placed}_{seed}"),
        cnf,
        Some(true),
    )
}

/// k-coloring of the complete graph on `k + 1` nodes — unsatisfiable by the
/// pigeonhole principle, but structurally a coloring instance.
pub fn clique_coloring_unsat(colors: usize) -> BenchInstance {
    let nodes = colors + 1;
    let var = |v: usize, c: usize| Var::new((v * colors + c) as u32);
    let mut cnf = Cnf::with_vars(nodes * colors);
    cnf.add_comment(format!("K{nodes} with {colors} colors (UNSAT)"));
    for v in 0..nodes {
        cnf.add_clause((0..colors).map(|c| Lit::pos(var(v, c))));
    }
    for u in 0..nodes {
        for w in (u + 1)..nodes {
            for c in 0..colors {
                cnf.add_clause([Lit::neg(var(u, c)), Lit::neg(var(w, c))]);
            }
        }
    }
    BenchInstance::new(format!("clique{nodes}_{colors}"), cnf, Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    fn solve(inst: &BenchInstance) -> bool {
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        match s.solve() {
            berkmin::SolveStatus::Sat(m) => {
                assert!(inst.cnf.is_satisfied_by(&m), "{}", inst.name);
                true
            }
            berkmin::SolveStatus::Unsat => false,
            berkmin::SolveStatus::Unknown(r) => panic!("{}: {r}", inst.name),
        }
    }

    #[test]
    fn queens_satisfiability_boundary() {
        assert!(solve(&queens(1)));
        assert!(!solve(&queens(2)));
        assert!(!solve(&queens(3)));
        assert!(solve(&queens(4)));
        assert!(solve(&queens(8)));
    }

    #[test]
    fn queens_model_is_a_real_placement() {
        let n = 6;
        let inst = queens(n);
        let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
        let status = s.solve();
        let m = status.model().unwrap();
        // Exactly n queens, one per row, pairwise non-attacking.
        let mut queens_at = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if m.satisfies(berkmin_cnf::Lit::pos(Var::new((r * n + c) as u32))) {
                    queens_at.push((r as i64, c as i64));
                }
            }
        }
        assert_eq!(queens_at.len(), n);
        for (i, &(r1, c1)) in queens_at.iter().enumerate() {
            for &(r2, c2) in &queens_at[i + 1..] {
                assert_ne!(r1, r2);
                assert_ne!(c1, c2);
                assert_ne!((r1 - r2).abs(), (c1 - c2).abs(), "diagonal attack");
            }
        }
    }

    #[test]
    fn planted_coloring_is_sat() {
        for seed in 0..3 {
            assert!(solve(&planted_coloring(20, 40, 3, seed)));
        }
    }

    #[test]
    fn clique_needs_more_colors() {
        assert!(!solve(&clique_coloring_unsat(3)));
        assert!(!solve(&clique_coloring_unsat(5)));
    }
}
