//! The *Par16* class: parity-function learning (DIMACS `parN-k`).
//!
//! Each instance encodes "find the secret parity function consistent with
//! these samples": unknowns `s_1..s_n`, and for every sample a constraint
//! `⊕_{i ∈ S_k} s_i = y_k`. The DIMACS `par8/16/32` family is exactly this,
//! 3-CNF-ized through XOR chains with auxiliary variables. Generating the
//! samples from an actual secret keeps the instance satisfiable.

use berkmin_cnf::{Cnf, Lit, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchInstance;

/// Adds clauses forcing `c = a ⊕ b`.
fn xor3(cnf: &mut Cnf, a: Lit, b: Lit, c: Lit) {
    cnf.add_clause([!a, !b, !c]);
    cnf.add_clause([a, b, !c]);
    cnf.add_clause([a, !b, c]);
    cnf.add_clause([!a, b, c]);
}

/// Adds clauses forcing `⊕ lits = parity` (via a chain of fresh variables).
///
/// Shared by the parity-learning and XOR-system generators; public within
/// the crate's generator family because the SAT-2002 `ip*` analogs in
/// [`crate::ksat`] reuse it for long equations.
pub fn xor_constraint(cnf: &mut Cnf, lits: &[Lit], parity: bool) {
    match lits {
        [] => {
            if parity {
                // 0 = 1: contradiction.
                cnf.add_clause([]);
            }
        }
        [l] => {
            cnf.add_clause([if parity { *l } else { !*l }]);
        }
        _ => {
            let mut acc = lits[0];
            for &l in &lits[1..lits.len() - 1] {
                let fresh = Lit::pos(cnf.fresh_var());
                xor3(cnf, acc, l, fresh);
                acc = fresh;
            }
            let last = lits[lits.len() - 1];
            // acc ⊕ last = parity  ⇔  acc ⊕ last ⊕ ¬parity = 1
            let target = if parity { last } else { !last };
            // acc ⊕ target = 1 ⇔ acc ≠ target? No: we want acc ⊕ last = parity.
            // parity=true:  acc ⊕ last = 1  ⇔ (acc ∨ last)(¬acc ∨ ¬last)
            // parity=false: acc ⊕ last = 0  ⇔ (acc ∨ ¬last)(¬acc ∨ last)
            cnf.add_clause([acc, target]);
            cnf.add_clause([!acc, !target]);
        }
    }
}

/// Generates a `par16`-style parity-learning instance.
///
/// * `bits` — number of secret parity bits (par16 ⇒ 16);
/// * `samples` — number of observations (the DIMACS family uses ≈ 2·bits
///   plus redundancy);
/// * `seed` — drives the secret and the sample subsets.
///
/// Satisfiable by construction (the secret is a witness).
pub fn parity_learning(bits: usize, samples: usize, seed: u64) -> BenchInstance {
    assert!(bits > 1, "need at least two parity bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let secret: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let mut cnf = Cnf::with_vars(bits);
    cnf.add_comment(format!(
        "parity learning: {bits} bits, {samples} samples (SAT)"
    ));
    for _ in 0..samples {
        // Sample subsets of average size bits/2, at least 2 variables.
        let mut subset: Vec<usize> = (0..bits).filter(|_| rng.gen()).collect();
        while subset.len() < 2 {
            let extra = rng.gen_range(0..bits);
            if !subset.contains(&extra) {
                subset.push(extra);
            }
        }
        let y = subset.iter().fold(false, |acc, &i| acc ^ secret[i]);
        let lits: Vec<Lit> = subset
            .iter()
            .map(|&i| Lit::pos(Var::new(i as u32)))
            .collect();
        xor_constraint(&mut cnf, &lits, y);
    }
    BenchInstance::new(format!("par{bits}_{seed}"), cnf, Some(true))
}

/// An unsatisfiable parity system: a consistent sample set plus one sample
/// whose parity is deliberately flipped relative to the XOR of a subset of
/// the others (linear dependence with inconsistent right-hand side).
pub fn parity_unsat(bits: usize, seed: u64) -> BenchInstance {
    assert!(bits > 1, "need at least two parity bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let secret: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let mut cnf = Cnf::with_vars(bits);
    cnf.add_comment(format!("inconsistent parity system: {bits} bits (UNSAT)"));
    let mut equations: Vec<(Vec<usize>, bool)> = Vec::new();
    for _ in 0..bits + 2 {
        let mut subset: Vec<usize> = (0..bits).filter(|_| rng.gen()).collect();
        while subset.len() < 2 {
            let extra = rng.gen_range(0..bits);
            if !subset.contains(&extra) {
                subset.push(extra);
            }
        }
        let y = subset.iter().fold(false, |acc, &i| acc ^ secret[i]);
        equations.push((subset, y));
    }
    // The inconsistent equation: XOR of equations 0 and 1, RHS flipped.
    let mut combined = vec![false; bits];
    let mut rhs = true; // flipped
    for k in [0usize, 1] {
        for &i in &equations[k].0 {
            combined[i] ^= true;
        }
        rhs ^= equations[k].1;
    }
    let combo: Vec<usize> = (0..bits).filter(|&i| combined[i]).collect();
    if combo.is_empty() {
        // Degenerate (identical subsets): 0 = 1 directly.
        equations.push((vec![0, 0], true)); // becomes empty after cancel; handled below
    } else {
        equations.push((combo, rhs));
    }
    for (subset, y) in &equations {
        // Cancel duplicated indices (x ⊕ x = 0).
        let mut uniq: Vec<usize> = Vec::new();
        for &i in subset {
            if let Some(pos) = uniq.iter().position(|&u| u == i) {
                uniq.remove(pos);
            } else {
                uniq.push(i);
            }
        }
        let lits: Vec<Lit> = uniq.iter().map(|&i| Lit::pos(Var::new(i as u32))).collect();
        xor_constraint(&mut cnf, &lits, *y);
    }
    BenchInstance::new(format!("par{bits}u_{seed}"), cnf, Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin::{Solver, SolverConfig};

    #[test]
    fn xor_constraint_small_cases() {
        // s0 ⊕ s1 = 1 over 2 vars.
        let mut cnf = Cnf::with_vars(2);
        xor_constraint(
            &mut cnf,
            &[Lit::pos(Var::new(0)), Lit::pos(Var::new(1))],
            true,
        );
        let m = cnf.solve_by_enumeration().unwrap();
        let a = m.satisfies(Lit::pos(Var::new(0)));
        let b = m.satisfies(Lit::pos(Var::new(1)));
        assert!(a ^ b);
    }

    #[test]
    fn chain_encoding_preserves_parity_semantics() {
        // ⊕ of 5 vars = 0: every model has even weight on the first 5 vars.
        let mut cnf = Cnf::with_vars(5);
        let lits: Vec<Lit> = (0..5).map(|i| Lit::pos(Var::new(i))).collect();
        xor_constraint(&mut cnf, &lits, false);
        // Enumerate all models (aux vars included ⇒ use projection).
        let mut models = 0;
        for bits in 0u32..32 {
            let mut probe = cnf.clone();
            for i in 0..5u32 {
                probe.add_clause([Lit::new(Var::new(i), bits >> i & 1 == 0)]);
            }
            if probe.solve_by_enumeration().is_some() {
                models += 1;
                assert_eq!((bits.count_ones()) % 2, 0, "odd-parity model {bits:b}");
            }
        }
        assert_eq!(models, 16, "exactly the 16 even-weight assignments");
    }

    #[test]
    fn learning_instances_are_sat() {
        for seed in 0..3 {
            let inst = parity_learning(8, 16, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            let status = s.solve();
            let model = status.model().expect("parity learning must be SAT");
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn inconsistent_systems_are_unsat() {
        for seed in 0..3 {
            let inst = parity_unsat(8, seed);
            let mut s = Solver::new(&inst.cnf, SolverConfig::berkmin());
            assert!(s.solve().is_unsat(), "seed {seed}");
        }
    }
}
