//! Bounded fixed-seed smoke run of the differential harness, as a plain
//! test: several hundred generated cases across every generation mode must
//! execute with zero discrepancies and zero uncertified answers. CI runs a
//! larger sweep through the `berkmin-fuzz` binary; this test keeps the
//! harness itself honest under `cargo test`.

use berkmin_fuzz::{gen_case, run_case_catching, Case};

#[test]
fn fixed_seed_sweep_is_clean() {
    let mut solves = 0usize;
    for seed in 0..400u64 {
        let case = gen_case(seed);
        match run_case_catching(&case) {
            Ok(report) => {
                solves += report.solves;
                assert_eq!(
                    report.uncertified,
                    0,
                    "seed {seed}: uncertified answers\n{}",
                    case.to_script()
                );
            }
            Err(detail) => panic!("seed {seed}: {detail}\n{}", case.to_script()),
        }
    }
    assert!(
        solves >= 400,
        "every case solves at least once, got {solves}"
    );
}

#[test]
fn written_repro_scripts_replay() {
    // What the binary writes on a discrepancy must parse and re-run — the
    // repro format itself is part of the debugging contract.
    for seed in [0u64, 1, 2, 3, 4, 8, 16, 40] {
        let case = gen_case(seed);
        let script = format!("c repro header comment\n{}", case.to_script());
        let parsed = Case::parse_script(&script).expect("repro must parse");
        assert_eq!(
            parsed, case,
            "seed {seed}: script round-trip changed the case"
        );
        run_case_catching(&parsed).expect("repro of a clean case stays clean");
    }
}
