//! Command-line front end for the differential fuzz harness.
//!
//! ```text
//! berkmin-fuzz run [--cases N] [--seed S] [--out DIR]
//!     Run N seeded cases (default 500 from seed 0). Every discrepancy is
//!     shrunk and written to DIR (default fuzz-repros/) as a replayable
//!     op script plus the final formula in DIMACS. Exits 1 if any case
//!     failed or any answer went uncertified.
//!
//! berkmin-fuzz replay FILE
//!     Re-run one op script (e.g. a written repro). Exits 0 if the case
//!     passes, 1 if it still fails.
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use berkmin_fuzz::{gen_case, run_case_catching, shrink_case, Case};

fn usage() -> ExitCode {
    eprintln!(
        "usage: berkmin-fuzz run [--cases N] [--seed S] [--out DIR]\n\
         \x20      berkmin-fuzz replay FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut cases = 500u64;
    let mut seed = 0u64;
    let mut out = PathBuf::from("fuzz-repros");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--cases" => match val("--cases").and_then(|v| v.parse().ok()) {
                Some(n) => cases = n,
                None => return usage(),
            },
            "--seed" => match val("--seed").and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--out" => match val("--out") {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // The paranoid audits report through panics; keep the console clean
    // while the harness converts them into shrunken repro files.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut solves = 0usize;
    let mut uncertified = 0usize;
    let mut failures: Vec<(u64, String)> = Vec::new();
    for s in seed..seed.saturating_add(cases) {
        let case = gen_case(s);
        match run_case_catching(&case) {
            Ok(report) => {
                solves += report.solves;
                uncertified += report.uncertified;
            }
            Err(detail) => {
                let minimal = shrink_case(&case);
                // Shrinking can land on a different (smaller) failure;
                // report the message the minimal case actually produces.
                let detail = run_case_catching(&minimal).err().unwrap_or(detail);
                if let Err(e) = write_repro(&out, s, &minimal, &detail) {
                    eprintln!("seed {s}: could not write repro: {e}");
                }
                failures.push((s, detail));
            }
        }
    }

    std::panic::set_hook(prev_hook);

    for (s, detail) in &failures {
        eprintln!("seed {s}: {detail}");
        eprintln!("  repro: {}", out.join(format!("repro-{s}.ops")).display());
    }
    println!(
        "fuzz: {cases} cases from seed {seed}, {solves} solve calls, \
         {} discrepancies, {uncertified} uncertified answers",
        failures.len()
    );
    if failures.is_empty() && uncertified == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_repro(out: &PathBuf, seed: u64, minimal: &Case, detail: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let mut script = format!("c berkmin-fuzz repro, seed {seed}\n");
    for line in detail.lines() {
        script.push_str(&format!("c {line}\n"));
    }
    script.push_str(&minimal.to_script());
    std::fs::write(out.join(format!("repro-{seed}.ops")), script)?;
    std::fs::write(
        out.join(format!("repro-{seed}.cnf")),
        minimal.final_formula_dimacs(),
    )
}

fn replay(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let case = match Case::parse_script(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_case_catching(&case) {
        Ok(report) => {
            println!(
                "replay: ok — {} solve calls, {} uncertified",
                report.solves, report.uncertified
            );
            ExitCode::SUCCESS
        }
        Err(detail) => {
            eprintln!("replay: still failing — {detail}");
            ExitCode::FAILURE
        }
    }
}
