//! Seeded fuzz-case generation.
//!
//! A single `u64` seed deterministically selects a generation mode and all
//! of its randomness, so any run is reproducible from its seed range. The
//! modes cover one-shot random/planted/unsatisfiable formulas from the
//! `berkmin-gens` crate, pigeonhole instances under tight budgets, fully
//! random incremental op soups, and a fixed corpus of degenerate inputs
//! (empty formula, explicit empty clause, reserve-only sessions,
//! duplicate and contradictory assumptions, tautologies).

use berkmin_cnf::{Lit, Var};
use berkmin_gens::{hole, ksat};

use crate::ops::{Case, Op};

/// xorshift64* — tiny, deterministic, and independent of the solver's RNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9E3779B97F4A7C15 | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn lit(&mut self, vars: u64) -> Lit {
        Lit::new(Var::new(self.below(vars) as u32), self.below(2) == 1)
    }
}

/// The pigeonhole clauses PHP(holes+1 → holes), as plain literal vectors.
pub fn pigeonhole_clauses(holes: usize) -> Vec<Vec<Lit>> {
    hole::pigeonhole(holes)
        .cnf
        .clauses()
        .iter()
        .map(|c| c.lits().to_vec())
        .collect()
}

fn adds_of(clauses: Vec<Vec<Lit>>) -> Vec<Op> {
    clauses.into_iter().map(Op::Add).collect()
}

/// The fixed degenerate-input corpus; `pick` cycles through it.
fn degenerate(pick: u64) -> Case {
    let scripts: &[&str] = &[
        // The p cnf 0 0 analog: zero vars, zero clauses.
        "solve\n",
        // Reserved variables but no constraints: the model must cover them.
        "reserve 5\nsolve\n",
        // An explicit empty clause, solved twice (re-solve after refutation).
        "add\nsolve\nsolve\n",
        // Contradictory units — absolute UNSAT through level-0 propagation.
        "add 1\nadd -1\nsolve\n",
        // Assumption on a reserved-but-unconstrained variable.
        "reserve 3\nassume -2\nsolve\n",
        // The same assumption staged twice.
        "add 1 2\nassume 1\nassume 1\nsolve\nsolve\n",
        // Contradictory assumptions on an unconstrained variable.
        "add 1 2\nassume 3\nassume -3\nsolve\nsolve\n",
        // Clauses added after the formula is already refuted.
        "add\nadd 1\nsolve\nadd 2\nsolve\n",
        // A zero-conflict budget, then the budget lifted.
        "add 1 2\nadd -1 2\nadd 1 -2\nadd -1 -2\nbudget 0\nsolve\nbudget inf\nsolve\n",
        // Tautological and duplicate-literal clauses.
        "add 1 -1\nadd 2 2\nadd -2 -2\nsolve\n",
    ];
    Case::parse_script(scripts[(pick % scripts.len() as u64) as usize])
        .expect("corpus scripts parse")
}

/// A one-shot case: all clauses, then a single solve.
fn one_shot(clauses: Vec<Vec<Lit>>) -> Case {
    let mut ops = adds_of(clauses);
    ops.push(Op::Solve);
    Case { ops }
}

/// A random incremental session: interleaved adds, assumptions, budgets,
/// reserves and solves over a small variable pool.
fn op_soup(rng: &mut Rng) -> Case {
    let vars = 4 + rng.below(9); // 4..=12
    let len = 6 + rng.below(31) as usize; // 6..=36 ops
    let mut ops = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let roll = rng.below(100);
        let op = if roll < 50 {
            // A random clause of 1–4 literals; variables may repeat, so
            // duplicate literals and tautologies occur naturally.
            let clen = 1 + rng.below(4) as usize;
            Op::Add((0..clen).map(|_| rng.lit(vars)).collect())
        } else if roll < 52 {
            Op::Add(Vec::new()) // the empty clause, occasionally
        } else if roll < 70 {
            Op::Assume(rng.lit(vars))
        } else if roll < 84 {
            Op::Solve
        } else if roll < 92 {
            let b = rng.below(4);
            Op::Budget(if b == 0 { None } else { Some(rng.below(60)) })
        } else {
            Op::Reserve(rng.below(vars + 4) as usize)
        };
        ops.push(op);
    }
    ops.push(Op::Solve);
    Case { ops }
}

/// Generates the deterministic fuzz case for `seed`.
pub fn gen_case(seed: u64) -> Case {
    let mut rng = Rng::new(seed);
    match seed % 8 {
        0 => degenerate(seed / 8),
        1 => {
            let k = 2 + (rng.below(2) as usize);
            let n = k.max(3) + rng.below(9) as usize;
            let m = 1 + rng.below(4 * n as u64) as usize;
            one_shot(clause_vecs(ksat::random_ksat(n, m, k, rng.next())))
        }
        2 => {
            // Planted: satisfiable by construction — SAT certification path.
            let n = 4 + rng.below(8) as usize;
            let m = 2 + rng.below(3 * n as u64) as usize;
            one_shot(clause_vecs(ksat::planted_ksat(n, m, 3, rng.next())))
        }
        3 => {
            // XOR chains: unsatisfiable by construction — DRAT path.
            let n = 3 + rng.below(5) as usize;
            one_shot(clause_vecs(ksat::xor_unsat(n, n + 1, rng.next())))
        }
        4 => {
            // Pigeonhole under a tight budget, then unlimited: exercises
            // budget aborts and re-solves on the same learnt database.
            let holes = 2 + (rng.below(3) as usize);
            let mut ops = vec![Op::Budget(Some(rng.below(30)))];
            ops.extend(adds_of(pigeonhole_clauses(holes)));
            ops.push(Op::Solve);
            ops.push(Op::Budget(None));
            ops.push(Op::Solve);
            Case { ops }
        }
        _ => op_soup(&mut rng),
    }
}

fn clause_vecs(instance: berkmin_gens::BenchInstance) -> Vec<Vec<Lit>> {
    instance
        .cnf
        .clauses()
        .iter()
        .map(|c| c.lits().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(gen_case(seed), gen_case(seed), "seed {seed}");
        }
    }

    #[test]
    fn every_mode_ends_with_a_solve() {
        for seed in 0..64 {
            let case = gen_case(seed);
            assert!(
                case.ops.iter().any(|op| matches!(op, Op::Solve)),
                "seed {seed} generated a case with no solve: {case:?}"
            );
        }
    }

    #[test]
    fn degenerate_corpus_covers_the_edge_cases() {
        let all: Vec<Case> = (0..10).map(degenerate).collect();
        assert!(all.iter().any(|c| c.ops == vec![Op::Solve]));
        assert!(all.iter().any(|c| c
            .ops
            .iter()
            .any(|op| matches!(op, Op::Add(l) if l.is_empty()))));
        assert!(all
            .iter()
            .any(|c| c.ops.iter().any(|op| matches!(op, Op::Reserve(_)))));
        assert!(all.iter().any(|c| c
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Assume(_)))
            .count()
            >= 2));
    }
}
