//! ddmin-lite shrinking of failing cases.
//!
//! Given a case on which some predicate holds (by default: "the
//! differential run fails"), greedily remove whole ops, then individual
//! literals from `add` ops, re-testing after every candidate edit, until a
//! fixed point. The result is the minimal op script that still reproduces
//! the discrepancy — small enough to read, replay and turn into a
//! regression test.

use crate::exec::run_case_catching;
use crate::ops::{Case, Op};

/// Shrinks `case` while `still_fails` keeps returning `true`.
///
/// Returns `case` unchanged if the predicate does not hold on it (nothing
/// to shrink). The predicate must be deterministic; it is re-invoked
/// O(ops² + literals²) times in the worst case, which is fine at fuzz
/// scale (tens of ops).
pub fn shrink_with(case: &Case, still_fails: &mut dyn FnMut(&Case) -> bool) -> Case {
    let mut cur = case.clone();
    if !still_fails(&cur) {
        return cur;
    }
    loop {
        let mut progressed = false;

        // Pass 1: drop whole ops, front to back.
        let mut i = 0;
        while i < cur.ops.len() {
            let mut cand = cur.clone();
            cand.ops.remove(i);
            if still_fails(&cand) {
                cur = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: drop single literals from add ops.
        let mut i = 0;
        while i < cur.ops.len() {
            let mut j = 0;
            while let Op::Add(lits) = &cur.ops[i] {
                if j >= lits.len() {
                    break;
                }
                let mut cand = cur.clone();
                let Op::Add(lits) = &mut cand.ops[i] else {
                    unreachable!()
                };
                lits.remove(j);
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                } else {
                    j += 1;
                }
            }
            i += 1;
        }

        if !progressed {
            return cur;
        }
    }
}

/// Shrinks a case that fails the differential run to a minimal failing one.
pub fn shrink_case(case: &Case) -> Case {
    shrink_with(case, &mut |c| run_case_catching(c).is_err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_cnf::Lit;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn passing_cases_are_returned_unchanged() {
        let case = Case::parse_script("add 1 2\nsolve\n").unwrap();
        assert_eq!(shrink_case(&case), case);
    }

    #[test]
    fn shrinks_to_the_minimal_witness_of_a_predicate() {
        // Predicate: "some add op mentions literal 5". The minimum is a
        // single one-literal add.
        let case =
            Case::parse_script("reserve 9\nadd 1 2\nassume 3\nadd 4 5 -6\nsolve\nadd 5 7\nsolve\n")
                .unwrap();
        let mut pred = |c: &Case| {
            c.ops
                .iter()
                .any(|op| matches!(op, Op::Add(l) if l.contains(&lit(5))))
        };
        let small = shrink_with(&case, &mut pred);
        assert_eq!(small.ops, vec![Op::Add(vec![lit(5)])]);
    }

    #[test]
    fn shrinking_respects_op_order_dependencies() {
        // Predicate: "a solve comes after an empty-clause add" — shrinking
        // must keep both ops and their relative order.
        let case = Case::parse_script("add 1\nadd\nassume 2\nsolve\nsolve\n").unwrap();
        let mut pred = |c: &Case| {
            let empty_at = c
                .ops
                .iter()
                .position(|op| matches!(op, Op::Add(l) if l.is_empty()));
            match empty_at {
                Some(i) => c.ops[i..].iter().any(|op| matches!(op, Op::Solve)),
                None => false,
            }
        };
        let small = shrink_with(&case, &mut pred);
        assert_eq!(small.ops, vec![Op::Add(vec![]), Op::Solve]);
    }
}
