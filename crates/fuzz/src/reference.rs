//! A deliberately naive reference solver: recursive DPLL with full-scan
//! unit propagation and no learning, no heuristics, no watched literals.
//!
//! It shares *zero* code with the production engines (it does not even use
//! their clause representation), which is the point: an agreement between
//! BerkMin and this solver is evidence, not an echo.

use berkmin_cnf::{LBool, Lit};

/// Search-node budget for [`dpll`]; `None` is returned when it runs out.
/// Fuzz cases stay below ~20 variables, so this is never hit in practice.
pub const NODE_LIMIT: u64 = 2_000_000;

/// Decides the formula (with `assumptions` pre-assigned) by scratch DPLL.
///
/// Returns `Some(true)` if satisfiable, `Some(false)` if unsatisfiable and
/// `None` if the node budget ran out. Tautologies, duplicate literals,
/// duplicate/contradictory assumptions and the empty clause are all
/// handled by construction.
pub fn dpll(num_vars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> Option<bool> {
    let mut assigns = vec![LBool::Undef; num_vars];
    for &a in assumptions {
        match value(&assigns, a) {
            LBool::False => return Some(false), // contradictory assumptions
            LBool::True => {}                   // duplicate assumption
            LBool::Undef => assign(&mut assigns, a),
        }
    }
    let mut nodes = 0u64;
    search(&mut assigns, clauses, &mut nodes)
}

fn value(assigns: &[LBool], lit: Lit) -> LBool {
    let v = assigns[lit.var().index()];
    if lit.is_negative() {
        match v {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    } else {
        v
    }
}

fn assign(assigns: &mut [LBool], lit: Lit) {
    assigns[lit.var().index()] = if lit.is_negative() {
        LBool::False
    } else {
        LBool::True
    };
}

/// Full-scan unit propagation to fixpoint. Returns `false` on conflict.
fn propagate(assigns: &mut [LBool], clauses: &[Vec<Lit>]) -> bool {
    loop {
        let mut changed = false;
        for clause in clauses {
            let mut unassigned = None;
            let mut satisfied = false;
            let mut num_unassigned = 0usize;
            for &l in clause {
                match value(assigns, l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::Undef => {
                        num_unassigned += 1;
                        unassigned = Some(l);
                    }
                    LBool::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match num_unassigned {
                0 => return false, // every literal false (or the clause is empty)
                1 => {
                    assign(assigns, unassigned.unwrap());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return true;
        }
    }
}

fn search(assigns: &mut Vec<LBool>, clauses: &[Vec<Lit>], nodes: &mut u64) -> Option<bool> {
    *nodes += 1;
    if *nodes > NODE_LIMIT {
        return None;
    }
    let saved = assigns.clone();
    if !propagate(assigns, clauses) {
        *assigns = saved;
        return Some(false);
    }
    let Some(v) = assigns.iter().position(|b| b.is_undef()) else {
        return Some(true); // total assignment, no conflict: a model
    };
    for negated in [false, true] {
        let snapshot = assigns.clone();
        assigns[v] = if negated { LBool::False } else { LBool::True };
        match search(assigns, clauses, nodes) {
            Some(true) => return Some(true),
            Some(false) => *assigns = snapshot,
            None => {
                *assigns = saved;
                return None;
            }
        }
    }
    *assigns = saved;
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use berkmin_cnf::{Clause, Cnf};

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(dpll(0, &[], &[]), Some(true));
        assert_eq!(dpll(0, &[vec![]], &[]), Some(false));
        assert_eq!(dpll(1, &[vec![lit(1)], vec![lit(-1)]], &[]), Some(false));
        assert_eq!(dpll(2, &[vec![lit(1), lit(2)]], &[lit(-1)]), Some(true));
        assert_eq!(dpll(1, &[], &[lit(1), lit(1)]), Some(true));
        assert_eq!(dpll(1, &[], &[lit(1), lit(-1)]), Some(false));
    }

    #[test]
    fn agrees_with_enumeration_on_random_formulas() {
        // Cross-check DPLL against the cnf crate's brute-force enumeration
        // on a pile of tiny random formulas.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = 1 + (rng() % 8) as usize;
            let m = (rng() % 14) as usize;
            let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(m);
            let mut cnf = Cnf::with_vars(n);
            for _ in 0..m {
                let len = 1 + (rng() % 3) as usize;
                let c: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = (rng() % n as u64) as u32;
                        Lit::new(berkmin_cnf::Var::new(v), rng() % 2 == 1)
                    })
                    .collect();
                cnf.add_clause(Clause::from_lits(c.clone()));
                clauses.push(c);
            }
            let expected = cnf.solve_by_enumeration().is_some();
            assert_eq!(
                dpll(n, &clauses, &[]),
                Some(expected),
                "disagreement on {clauses:?}"
            );
        }
    }
}
