//! The incremental-session op model and its textual script format.
//!
//! A script is line-oriented; blank lines and `c ...` comment lines are
//! skipped. The five op forms mirror the incremental solver API:
//!
//! ```text
//! reserve 6         c reserve_vars(6)
//! add 1 -2 3        c add_clause([x1, ¬x2, x3]); `add` alone is the empty clause
//! assume -4         c stage one assumption for the next solve
//! budget 20         c per-call conflict budget; `budget inf` removes it
//! solve             c run the staged solve call
//! ```

use std::fmt::Write as _;

use berkmin_cnf::Lit;

/// One incremental solver operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `reserve_vars(n)` on every engine.
    Reserve(usize),
    /// `add_clause(lits)`; an empty vector is the empty clause.
    Add(Vec<Lit>),
    /// Stage one assumption for the next `solve`.
    Assume(Lit),
    /// Install a per-call conflict budget; `None` removes any budget.
    Budget(Option<u64>),
    /// Run one solve call and certify its answer.
    Solve,
}

/// A fuzz case: an ordered op sequence replayed on every engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Case {
    /// The operations, executed in order.
    pub ops: Vec<Op>,
}

/// A script line that could not be parsed, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScriptError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScriptError {}

impl Case {
    /// Serializes the case as a replayable op script.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                Op::Reserve(n) => {
                    let _ = writeln!(out, "reserve {n}");
                }
                Op::Add(lits) => {
                    out.push_str("add");
                    for l in lits {
                        let _ = write!(out, " {}", l.to_dimacs());
                    }
                    out.push('\n');
                }
                Op::Assume(l) => {
                    let _ = writeln!(out, "assume {}", l.to_dimacs());
                }
                Op::Budget(Some(n)) => {
                    let _ = writeln!(out, "budget {n}");
                }
                Op::Budget(None) => out.push_str("budget inf\n"),
                Op::Solve => out.push_str("solve\n"),
            }
        }
        out
    }

    /// Parses a script produced by [`Case::to_script`] (or written by hand).
    pub fn parse_script(text: &str) -> Result<Case, ParseScriptError> {
        let err = |line: usize, message: String| ParseScriptError { line, message };
        let mut ops = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let s = raw.trim();
            if s.is_empty() || s.starts_with('c') {
                continue;
            }
            let mut words = s.split_ascii_whitespace();
            let head = words.next().unwrap();
            let op = match head {
                "reserve" => {
                    let n = words
                        .next()
                        .ok_or_else(|| err(line, "reserve needs a count".into()))?;
                    let n: usize = n
                        .parse()
                        .map_err(|_| err(line, format!("bad reserve count {n:?}")))?;
                    Op::Reserve(n)
                }
                "add" => {
                    let mut lits = Vec::new();
                    for w in words.by_ref() {
                        let n: i32 = w
                            .parse()
                            .map_err(|_| err(line, format!("bad literal {w:?}")))?;
                        if n == 0 {
                            break; // tolerate a trailing DIMACS-style 0
                        }
                        lits.push(Lit::from_dimacs(n));
                    }
                    Op::Add(lits)
                }
                "assume" => {
                    let w = words
                        .next()
                        .ok_or_else(|| err(line, "assume needs a literal".into()))?;
                    let n: i32 = w
                        .parse()
                        .map_err(|_| err(line, format!("bad literal {w:?}")))?;
                    if n == 0 {
                        return Err(err(line, "assume 0 is not a literal".into()));
                    }
                    Op::Assume(Lit::from_dimacs(n))
                }
                "budget" => {
                    let w = words
                        .next()
                        .ok_or_else(|| err(line, "budget needs a count or `inf`".into()))?;
                    if w == "inf" {
                        Op::Budget(None)
                    } else {
                        let n: u64 = w
                            .parse()
                            .map_err(|_| err(line, format!("bad budget {w:?}")))?;
                        Op::Budget(Some(n))
                    }
                }
                "solve" => Op::Solve,
                other => return Err(err(line, format!("unknown op {other:?}"))),
            };
            if words.next().is_some() && !matches!(op, Op::Add(_)) {
                return Err(err(line, "trailing tokens after op".into()));
            }
            ops.push(op);
        }
        Ok(Case { ops })
    }

    /// All clauses added over the whole case, in order.
    pub fn clauses(&self) -> Vec<Vec<Lit>> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Add(lits) => Some(lits.clone()),
                _ => None,
            })
            .collect()
    }

    /// Highest variable count the case ever touches (reserves, clauses and
    /// assumptions included).
    pub fn num_vars(&self) -> usize {
        let mut n = 0usize;
        for op in &self.ops {
            match op {
                Op::Reserve(k) => n = n.max(*k),
                Op::Add(lits) => {
                    for l in lits {
                        n = n.max(l.var().index() + 1);
                    }
                }
                Op::Assume(l) => n = n.max(l.var().index() + 1),
                _ => {}
            }
        }
        n
    }

    /// The final accumulated formula in DIMACS, for repro files.
    pub fn final_formula_dimacs(&self) -> String {
        let clauses = self.clauses();
        let mut out = format!("p cnf {} {}\n", self.num_vars(), clauses.len());
        for c in &clauses {
            for l in c {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            out.push_str("0\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i32) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn script_roundtrips() {
        let case = Case {
            ops: vec![
                Op::Reserve(6),
                Op::Add(vec![lit(1), lit(-2), lit(3)]),
                Op::Add(vec![]),
                Op::Assume(lit(-4)),
                Op::Budget(Some(20)),
                Op::Solve,
                Op::Budget(None),
                Op::Solve,
            ],
        };
        let text = case.to_script();
        assert_eq!(Case::parse_script(&text).unwrap(), case);
    }

    #[test]
    fn comments_blanks_and_trailing_zero_are_tolerated() {
        let text = "c a comment\n\nadd 1 -2 0\nsolve\n";
        let case = Case::parse_script(text).unwrap();
        assert_eq!(case.ops, vec![Op::Add(vec![lit(1), lit(-2)]), Op::Solve]);
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        for (text, line) in [
            ("frobnicate\n", 1),
            ("add 1\nassume 0\n", 2),
            ("reserve\n", 1),
            ("solve extra\n", 1),
            ("budget -3\n", 1),
        ] {
            let err = Case::parse_script(text).unwrap_err();
            assert_eq!(err.line, line, "for {text:?}: {err}");
        }
    }

    #[test]
    fn num_vars_spans_reserves_clauses_and_assumptions() {
        let case = Case {
            ops: vec![Op::Reserve(3), Op::Add(vec![lit(5)]), Op::Assume(lit(-9))],
        };
        assert_eq!(case.num_vars(), 9);
        let dimacs = case.final_formula_dimacs();
        assert!(dimacs.starts_with("p cnf 9 1\n"), "{dimacs}");
    }
}
